// Fused X² kernel bench + correctness gates (mirrors how micro_core
// gated the PR-2 layout change):
//
//   1. Scalar gate (fatal): the fused scalar path must be BIT-identical
//      to the legacy FillCounts + Evaluate scratch round-trip on the
//      gating corpus — every range, every k, every model.
//   2. SIMD gate (fatal when SIMD is available): exhaustive scans must
//      select the identical best substring, with X² within 1e-12
//      relative of scalar on every evaluated range.
//   3. Perf trajectory: the MSS inner-loop microbench (pin a start block,
//      stream endpoint blocks) fused vs legacy, per k. Target >= 1.5x
//      for k <= 8. Timings land in BENCH_x2_kernel.json.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"
#include "io/table_writer.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

seq::Sequence MakeString(int k, int64_t n) {
  seq::Rng rng(515151 + k + n);
  return seq::GenerateNull(k, n, rng);
}

seq::MultinomialModel MakeSkewedModel(int k) {
  std::vector<double> probs(static_cast<size_t>(k));
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    probs[static_cast<size_t>(c)] = 1.0 + 0.37 * c;
    total += probs[static_cast<size_t>(c)];
  }
  for (double& p : probs) p /= total;
  auto model = seq::MultinomialModel::Make(std::move(probs));
  if (!model.ok()) std::abort();
  return std::move(model).value();
}

/// Best-of-3 wall clock: the speedup gates compare two timings from the
/// same run, and a single sample on a loaded shared runner can wobble a
/// few percent — taking each path's minimum keeps the ratio a property of
/// the code, not of scheduler noise.
double MinTimeMs(const std::function<void()>& fn) {
  double best = bench::TimeMs(fn);
  for (int rep = 1; rep < 3; ++rep) {
    double ms = bench::TimeMs(fn);
    if (ms < best) best = ms;
  }
  return best;
}

/// Deterministic (start, end) query stream; xorshift so the access
/// pattern defeats the prefetcher the way a skip scan does.
std::vector<std::pair<int64_t, int64_t>> MakeRanges(int64_t n, size_t count) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(count);
  uint64_t state = 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < count; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int64_t a = static_cast<int64_t>(state % static_cast<uint64_t>(n + 1));
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int64_t b = static_cast<int64_t>(state % static_cast<uint64_t>(n + 1));
    if (a > b) std::swap(a, b);
    ranges.emplace_back(a, b);
  }
  return ranges;
}

/// Gate 1: fused scalar == legacy pair, bit for bit, across alphabets and
/// both uniform and skewed models.
bool RunScalarIdentityGate() {
  int64_t mismatches = 0;
  const int64_t n = 4096;
  for (int k : {2, 3, 4, 8, 26}) {
    seq::Sequence s = MakeString(k, n);
    seq::PrefixCounts counts(s);
    for (bool skewed : {false, true}) {
      core::ChiSquareContext ctx(skewed ? MakeSkewedModel(k)
                                        : seq::MultinomialModel::Uniform(k),
                                 core::X2Dispatch::kScalar);
      core::X2Kernel kernel(ctx, core::X2Dispatch::kScalar);
      std::vector<int64_t> scratch(static_cast<size_t>(k));
      for (const auto& [start, end] : MakeRanges(n, 20000)) {
        counts.FillCounts(start, end, scratch);
        double legacy = ctx.Evaluate(scratch, end - start);
        double fused = kernel.EvaluateRange(counts, start, end);
        if (legacy != fused) ++mismatches;
      }
    }
  }
  std::printf("scalar gate (fused vs FillCounts+Evaluate): %s\n",
              mismatches == 0 ? "bit-identical" : "MISMATCH — BUG");
  return mismatches == 0;
}

/// Gate 2: SIMD selects the identical best substring under an exhaustive
/// first-wins argmax scan, and every range agrees to 1e-12 relative.
bool RunSimdGate() {
  if (!core::SimdAvailable()) {
    std::printf("simd gate: skipped (SIMD unavailable on this build/CPU)\n");
    return true;
  }
  bool ok = true;
  const int64_t n = 384;
  for (int k : {2, 4, 8, 26}) {
    seq::Sequence s = MakeString(k, n);
    seq::PrefixCounts counts(s);
    core::ChiSquareContext ctx(MakeSkewedModel(k));
    core::X2Kernel scalar(ctx, core::X2Dispatch::kScalar);
    core::X2Kernel simd(ctx, core::X2Dispatch::kSimd);
    int64_t bs_a = 0, be_a = 0, bs_b = 0, be_b = 0;
    double best_a = -1.0, best_b = -1.0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t* lo = counts.BlockAt(i);
      for (int64_t end = i + 1; end <= n; ++end) {
        const int64_t* hi = counts.BlockAt(end);
        double a = scalar.EvaluateBlocks(lo, hi, end - i);
        double b = simd.EvaluateBlocks(lo, hi, end - i);
        if (std::fabs(a - b) > 1e-12 * (1.0 + std::fabs(a))) ok = false;
        if (a > best_a) {
          best_a = a;
          bs_a = i;
          be_a = end;
        }
        if (b > best_b) {
          best_b = b;
          bs_b = i;
          be_b = end;
        }
      }
    }
    if (bs_a != bs_b || be_a != be_b) ok = false;
  }
  std::printf("simd gate (argmax identity + 1e-12 relative): %s\n",
              ok ? "pass" : "MISMATCH — BUG");
  return ok;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "fused X² range kernel — scalar/SIMD gates + MSS inner-loop speedup",
      "EvaluateBlocks (x2_kernel.h) vs the legacy FillCounts+Evaluate "
      "scratch round-trip; timings land in BENCH_x2_kernel.json");
  bench::JsonBench json("x2_kernel");

  const bool scalar_ok = RunScalarIdentityGate();
  json.AddGate("scalar_bit_identical", scalar_ok);
  const bool simd_ok = RunSimdGate();
  json.AddGate("simd_argmax_identical_1e12", simd_ok);
  std::printf("simd kernel: %s\n",
              core::SimdAvailable() ? "available (avx2)" : "unavailable");
  if (!scalar_ok || !simd_ok) {
    json.Write();
    return 1;
  }

  io::TableWriter table({"bench", "time", "speedup"});
  bool perf_ok = true;

  // MSS inner-loop microbench: pin a start block, stream every endpoint
  // block — the paper Algorithm 1 inner loop with skips disabled so both
  // paths evaluate the identical candidate set. Legacy pays the k-wide
  // store into scratch plus the reload; fused reduces in one pass.
  const int64_t n = bench::FastMode() ? (1 << 14) : (1 << 16);
  const int64_t starts_stride = n / 48;
  for (int k : {2, 4, 8, 26}) {
    seq::Sequence s = MakeString(k, n);
    seq::PrefixCounts counts(s);
    core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
    core::X2Kernel kernel(ctx);  // Auto dispatch: SIMD for k >= 4.
    std::vector<int64_t> scratch(static_cast<size_t>(k));

    double sink_legacy = 0.0, sink_fused = 0.0;
    double legacy_ms = MinTimeMs([&] {
      sink_legacy = 0.0;
      for (int64_t i = 0; i < n; i += starts_stride) {
        for (int64_t end = i + 1; end <= n; ++end) {
          counts.FillCounts(i, end, scratch);
          sink_legacy += ctx.Evaluate(scratch, end - i);
        }
      }
    });
    double fused_ms = MinTimeMs([&] {
      sink_fused = 0.0;
      for (int64_t i = 0; i < n; i += starts_stride) {
        const int64_t* lo = counts.BlockAt(i);
        const int64_t* hi = lo;
        for (int64_t end = i + 1; end <= n; ++end) {
          hi += k;
          sink_fused += kernel.EvaluateBlocks(lo, hi, end - i);
        }
      }
    });
    // The two sweeps cover the same candidates; their sums must agree
    // (scalar: bit-identical, SIMD: 1e-12) — also keeps the sinks alive.
    if (std::fabs(sink_legacy - sink_fused) >
        1e-9 * (1.0 + std::fabs(sink_legacy))) {
      std::printf("sink mismatch at k=%d — BUG\n", k);
      perf_ok = false;
    }

    double speedup = legacy_ms / fused_ms;
    std::printf(
        "mss inner loop k=%-2d (%s): legacy %s, fused %s, %.2fx\n", k,
        kernel.simd_active() ? "simd" : "scalar",
        bench::FormatMs(legacy_ms).c_str(), bench::FormatMs(fused_ms).c_str(),
        speedup);
    table.AddRow({StrCat("mss_inner_k", k, "_legacy"),
                  bench::FormatMs(legacy_ms), "-"});
    table.AddRow({StrCat("mss_inner_k", k, "_fused"),
                  bench::FormatMs(fused_ms), StrFormat("%.2fx", speedup)});
    json.AddResult(StrCat("mss_inner_k", k, "_legacy"), legacy_ms);
    json.AddResult(StrCat("mss_inner_k", k, "_fused"), fused_ms, speedup);
    if (k <= 8) {
      json.AddGate(StrCat("fused_speedup_target_1_5x_k", k),
                   speedup >= 1.5);
      if (speedup < 1.5) perf_ok = false;
    }
  }

  // Batched endpoint streaming (the ARLM/EvaluateEnds shape) for the
  // trajectory file: one pinned start, every later position an endpoint.
  {
    const int k = 4;
    seq::Sequence s = MakeString(k, n);
    seq::PrefixCounts counts(s);
    core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
    core::X2Kernel kernel(ctx);
    std::vector<int64_t> ends;
    for (int64_t e = 1; e <= n; ++e) ends.push_back(e);
    std::vector<double> out(ends.size());
    const int reps = bench::FastMode() ? 20 : 200;
    double batched_ms = bench::TimeMs([&] {
      for (int rep = 0; rep < reps; ++rep) {
        kernel.EvaluateEnds(counts, 0, ends, out);
      }
    });
    table.AddRow({StrCat("evaluate_ends_k4_x", reps),
                  bench::FormatMs(batched_ms), "-"});
    json.AddResult(StrCat("evaluate_ends_k4_x", reps), batched_ms);
  }

  std::printf("\n%s", table.Render().c_str());
  if (!json.Write()) return 1;
  if (!perf_ok) {
    std::printf("FUSED SPEEDUP TARGET MISSED (>= 1.5x for k <= 8)\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
