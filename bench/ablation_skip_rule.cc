// Ablation A1 (DESIGN.md §3): how much work does each skip rule save?
//
// Compares, on null and skewed strings:
//   none        — no skipping (trivial iteration count n(n+1)/2)
//   paper-1char — the paper's literal single-character rule (argmax Y/p)
//   exact-min   — our min-over-all-characters fixed point (production rule)
//
// For uniform models the two rules coincide (the argmax is x-independent);
// for skewed models the exact rule is the sound one and this table shows
// the cost/benefit.

#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "core/chain_cover.h"
#include "io/table_writer.h"
#include "sigsub.h"

namespace {

using namespace sigsub;

// MSS scan instrumented to use the paper's single-character skip rule.
// Exactness caveat (why this lives in the ablation bench, not the library):
// with a skewed P, single-character skipping can overshoot and miss the
// optimum — the table reports both the work and the X² each rule finds.
struct PaperRuleScan {
  int64_t examined = 0;
  double best_x2 = 0.0;
};

PaperRuleScan ScanWithPaperRule(const seq::Sequence& s,
                                const seq::PrefixCounts& counts,
                                const core::ChiSquareContext& ctx) {
  const int64_t n = s.size();
  std::vector<int64_t> scratch(ctx.alphabet_size());
  PaperRuleScan out;
  for (int64_t i = n - 1; i >= 0; --i) {
    int64_t end = i + 1;
    while (end <= n) {
      counts.FillCounts(i, end, scratch);
      double x2 = ctx.Evaluate(scratch, end - i);
      ++out.examined;
      if (x2 > out.best_x2) out.best_x2 = x2;
      int64_t skip = core::PaperSingleCharacterSkip(ctx, scratch, end - i, x2,
                                                    out.best_x2);
      end += skip + 1;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation A1 — skip-rule variants",
                     "iteration counts for no-skip / paper single-character "
                     "rule / exact min-over-characters rule");

  std::vector<int64_t> sizes = {4000, 16000, 64000};
  if (bench::FastMode()) sizes = {2000, 8000};

  io::TableWriter table({"model", "n", "iter none", "iter paper-1char",
                         "iter exact-min", "X2 paper-1char", "X2 exact-min",
                         "paper missed?"});
  for (bool skewed : {false, true}) {
    for (int64_t n : sizes) {
      seq::Rng rng(11 + n);
      seq::MultinomialModel model =
          skewed ? seq::MultinomialModel::Make({0.05, 0.15, 0.8}).value()
                 : seq::MultinomialModel::Uniform(3);
      seq::Sequence s = seq::GenerateMultinomial(model, n, rng);
      seq::PrefixCounts counts(s);
      core::ChiSquareContext ctx(model);

      int64_t none = core::TrivialScanPositions(n);
      PaperRuleScan paper = ScanWithPaperRule(s, counts, ctx);
      auto exact = core::FindMss(counts, ctx);

      bool missed =
          paper.best_x2 < exact.best.chi_square - 1e-9 * exact.best.chi_square;
      table.AddRow({skewed ? "skewed(.05,.15,.8)" : "uniform",
                    std::to_string(n), std::to_string(none),
                    std::to_string(paper.examined),
                    std::to_string(exact.stats.positions_examined),
                    StrFormat("%.4f", paper.best_x2),
                    StrFormat("%.4f", exact.best.chi_square),
                    missed ? "YES" : "no"});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected: both rules collapse the quadratic scan and agree "
              "under the uniform model; under skew the single-character "
              "rule can over-skip — fewer iterations but a possible miss — "
              "which is why the library uses the exact min-over-characters "
              "fixed point; see DESIGN.md §1.1)\n");
  return 0;
}
