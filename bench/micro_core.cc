// google-benchmark microbenchmarks for the hot kernels: X² evaluation,
// prefix-count fills, skip solving, and the end-to-end scans.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/chain_cover.h"
#include "sigsub.h"

namespace {

using namespace sigsub;

seq::Sequence MakeString(int k, int64_t n) {
  seq::Rng rng(424242 + k + n);
  return seq::GenerateNull(k, n, rng);
}

void BM_ChiSquareEvaluate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
  std::vector<int64_t> counts(k, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Evaluate(counts, 100 * k));
  }
}
BENCHMARK(BM_ChiSquareEvaluate)->Arg(2)->Arg(5)->Arg(20);

void BM_IncrementalExtend(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
  seq::Sequence s = MakeString(k, 4096);
  core::ChiSquareContext::Incremental inc(ctx);
  int64_t i = 0;
  for (auto _ : state) {
    if (i == s.size()) {
      inc.Reset();
      i = 0;
    }
    inc.Extend(s[i++]);
    benchmark::DoNotOptimize(inc.chi_square());
  }
}
BENCHMARK(BM_IncrementalExtend)->Arg(2)->Arg(20);

void BM_PrefixCountsBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  seq::Sequence s = MakeString(4, n);
  for (auto _ : state) {
    seq::PrefixCounts counts(s);
    benchmark::DoNotOptimize(counts.sequence_size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PrefixCountsBuild)->Range(1 << 10, 1 << 16)->Complexity();

void BM_SkipSolver(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
  core::SkipSolver solver(ctx);
  std::vector<int64_t> counts(k, 50);
  double x2 = ctx.Evaluate(counts, 50 * k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.MaxSafeExtension(counts, 50 * k, x2, 25.0));
  }
}
BENCHMARK(BM_SkipSolver)->Arg(2)->Arg(5)->Arg(20);

void BM_FindMss(benchmark::State& state) {
  const int64_t n = state.range(0);
  seq::Sequence s = MakeString(2, n);
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  seq::PrefixCounts counts(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FindMss(counts, ctx));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FindMss)->Range(1 << 10, 1 << 16)->Complexity();

void BM_NaiveFindMss(benchmark::State& state) {
  const int64_t n = state.range(0);
  seq::Sequence s = MakeString(2, n);
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::NaiveFindMss(s, ctx));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveFindMss)->Range(1 << 10, 1 << 13)->Complexity();

void BM_FindTopT(benchmark::State& state) {
  const int64_t t = state.range(0);
  seq::Sequence s = MakeString(2, 1 << 14);
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(2));
  seq::PrefixCounts counts(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FindTopT(counts, ctx, t));
  }
}
BENCHMARK(BM_FindTopT)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
