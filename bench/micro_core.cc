// Microbenchmarks for the hot kernels — X² evaluation, prefix-count
// fills, skip solving, and the end-to-end scans — with two jobs beyond
// timing:
//
//   1. Layout gate: the flat position-major seq::PrefixCounts
//      (counts[pos·k + c]) must produce bit-identical count vectors and
//      bit-identical X² values to the previous layout (k separate
//      row-major vectors), reimplemented here as the reference. The gate
//      is fatal: a mismatch exits nonzero.
//   2. Perf trajectory: every timing lands in BENCH_core.json, including
//      the FillCounts-dominated scan where the flat layout's target is
//      >= 1.5x over the row-major reference.

#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "core/chain_cover.h"
#include "io/table_writer.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

/// The pre-refactor PrefixCounts layout, kept verbatim as the gate
/// reference: k separate rows of n+1 entries, so one FillCounts pays k
/// strided loads.
class RowMajorPrefixCounts {
 public:
  explicit RowMajorPrefixCounts(const seq::Sequence& sequence)
      : alphabet_size_(sequence.alphabet_size()), n_(sequence.size()) {
    counts_.resize(static_cast<size_t>(alphabet_size_));
    for (int c = 0; c < alphabet_size_; ++c) {
      counts_[static_cast<size_t>(c)].assign(static_cast<size_t>(n_) + 1, 0);
    }
    std::span<const uint8_t> symbols = sequence.symbols();
    for (int64_t i = 0; i < n_; ++i) {
      for (int c = 0; c < alphabet_size_; ++c) {
        counts_[static_cast<size_t>(c)][static_cast<size_t>(i) + 1] =
            counts_[static_cast<size_t>(c)][static_cast<size_t>(i)];
      }
      ++counts_[symbols[i]][static_cast<size_t>(i) + 1];
    }
  }

  void FillCounts(int64_t start, int64_t end, std::span<int64_t> out) const {
    for (int c = 0; c < alphabet_size_; ++c) {
      out[c] = counts_[static_cast<size_t>(c)][static_cast<size_t>(end)] -
               counts_[static_cast<size_t>(c)][static_cast<size_t>(start)];
    }
  }

 private:
  int alphabet_size_;
  int64_t n_;
  std::vector<std::vector<int64_t>> counts_;
};

seq::Sequence MakeString(int k, int64_t n) {
  seq::Rng rng(424242 + k + n);
  return seq::GenerateNull(k, n, rng);
}

/// Deterministic (start, end) query stream over [0, n]; xorshift so the
/// access pattern defeats the prefetcher the way a skip scan does.
std::vector<std::pair<int64_t, int64_t>> MakeRanges(int64_t n, size_t count) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(count);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < count; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int64_t a = static_cast<int64_t>(state % static_cast<uint64_t>(n + 1));
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    int64_t b = static_cast<int64_t>(state % static_cast<uint64_t>(n + 1));
    if (a > b) std::swap(a, b);
    ranges.emplace_back(a, b);
  }
  return ranges;
}

/// Bit-identity of the two layouts: every count vector and every X² value
/// must match exactly — FindMss & friends consume counts only through
/// FillCounts + Evaluate, so fill identity implies scan identity.
bool RunLayoutGate() {
  int64_t mismatches = 0;
  for (int k : {2, 4, 20}) {
    seq::Sequence s = MakeString(k, 4096);
    seq::PrefixCounts flat(s);
    RowMajorPrefixCounts reference(s);
    core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
    std::vector<int64_t> a(k), b(k);
    for (const auto& [start, end] : MakeRanges(s.size(), 20000)) {
      flat.FillCounts(start, end, a);
      reference.FillCounts(start, end, b);
      if (a != b) ++mismatches;
      if (ctx.Evaluate(a, end - start) != ctx.Evaluate(b, end - start)) {
        ++mismatches;
      }
    }
    // The scan itself, both built from the same sequence, for good
    // measure (exercises the flat build path end to end).
    core::MssResult scan = core::FindMss(flat, ctx);
    core::MssResult again = core::FindMss(seq::PrefixCounts(s), ctx);
    if (scan.best.chi_square != again.best.chi_square) ++mismatches;
  }
  std::printf("layout gate (flat vs row-major): %s\n",
              mismatches == 0 ? "bit-identical" : "MISMATCH — BUG");
  return mismatches == 0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "core microbenchmarks — flat PrefixCounts layout gate + hot kernels",
      "counts[pos*k + c] vs the former k row-major vectors; timings land "
      "in BENCH_core.json");
  bench::JsonBench json("core");

  const bool gate_ok = RunLayoutGate();
  json.AddGate("layout_bit_identical", gate_ok);
  if (!gate_ok) {
    json.Write();
    return 1;
  }

  io::TableWriter table({"bench", "time", "speedup"});
  auto record = [&](const std::string& name, double ms) {
    table.AddRow({name, bench::FormatMs(ms), "-"});
    json.AddResult(name, ms);
  };

  // ---------------------------------------------------------- fill scan
  // The FillCounts-dominated microbench: a large-alphabet count structure
  // far bigger than L2, hit with random ranges. The old layout pays k
  // strided misses per query; the flat layout two contiguous k-wide
  // loads. Target >= 1.5x.
  {
    const int k = 16;
    const int64_t n = bench::FastMode() ? (1 << 16) : (1 << 19);
    const size_t queries = bench::FastMode() ? 200000 : 1000000;
    seq::Sequence s = MakeString(k, n);
    seq::PrefixCounts flat(s);
    RowMajorPrefixCounts reference(s);
    auto ranges = MakeRanges(n, queries);
    std::vector<int64_t> scratch(k);
    int64_t sink = 0;
    auto sweep = [&](auto& counts) {
      for (const auto& [start, end] : ranges) {
        counts.FillCounts(start, end, scratch);
        sink += scratch[0] + scratch[k - 1];
      }
    };
    double row_ms = bench::TimeMs([&] { sweep(reference); });
    double flat_ms = bench::TimeMs([&] { sweep(flat); });
    double speedup = row_ms / flat_ms;
    std::printf("fill scan (k=%d, n=%lld, %zu queries): row-major %s, "
                "flat %s, %.2fx (sink %lld)\n",
                k, static_cast<long long>(n), queries,
                bench::FormatMs(row_ms).c_str(),
                bench::FormatMs(flat_ms).c_str(), speedup,
                static_cast<long long>(sink));
    table.AddRow({"fill_scan_row_major_k16", bench::FormatMs(row_ms), "-"});
    table.AddRow({"fill_scan_flat_k16", bench::FormatMs(flat_ms),
                  StrFormat("%.2fx", speedup)});
    json.AddResult("fill_scan_row_major_k16", row_ms);
    json.AddResult("fill_scan_flat_k16", flat_ms, speedup);
    json.AddGate("fill_scan_speedup_target_1_5x", speedup >= 1.5);
  }

  // ------------------------------------------------------- build + scans
  {
    const int64_t n = bench::FastMode() ? (1 << 15) : (1 << 17);
    seq::Sequence s4 = MakeString(4, n);
    double build_ms = bench::TimeMs([&] {
      for (int rep = 0; rep < 8; ++rep) {
        seq::PrefixCounts counts(s4);
        if (counts.sequence_size() != n) std::abort();
      }
    });
    record("prefix_build_k4_x8", build_ms);

    seq::Sequence s2 = MakeString(2, n);
    core::ChiSquareContext ctx2(seq::MultinomialModel::Uniform(2));
    seq::PrefixCounts counts2(s2);
    double mss_ms =
        bench::TimeMs([&] { core::FindMss(counts2, ctx2); });
    record("find_mss_k2", mss_ms);
    double topt_ms =
        bench::TimeMs([&] { core::FindTopT(counts2, ctx2, 100); });
    record("find_top_t_100_k2", topt_ms);
    double parallel_ms = bench::TimeMs(
        [&] { core::FindMssParallel(counts2, ctx2, /*num_threads=*/0); });
    record("find_mss_parallel_hw", parallel_ms);
  }

  // ------------------------------------------------------- tight kernels
  {
    const int k = 20;
    core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(k));
    std::vector<int64_t> counts(k, 100);
    const int reps = bench::FastMode() ? 2000000 : 20000000;
    double eval_ms = bench::TimeMs([&] {
      double acc = 0.0;
      for (int i = 0; i < reps; ++i) acc += ctx.Evaluate(counts, 100 * k);
      if (acc < 0.0) std::abort();
    });
    record(StrCat("chi_square_evaluate_k20_x", reps), eval_ms);

    core::SkipSolver solver(ctx);
    std::vector<int64_t> skip_counts(k, 50);
    double x2 = ctx.Evaluate(skip_counts, 50 * k);
    const int skip_reps = bench::FastMode() ? 200000 : 2000000;
    double skip_ms = bench::TimeMs([&] {
      int64_t acc = 0;
      for (int i = 0; i < skip_reps; ++i) {
        acc += solver.MaxSafeExtension(skip_counts, 50 * k, x2, 25.0);
      }
      if (acc < 0) std::abort();
    });
    record(StrCat("skip_solver_k20_x", skip_reps), skip_ms);
  }

  std::printf("\n%s", table.Render().c_str());
  if (!json.Write()) return 1;
  return json.AllGatesPass() ? 0 : 1;
}
