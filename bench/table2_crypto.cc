// Table 2 (cryptology application, Section 7.4): X²_max of binary streams
// from a defective RNG that repeats the previous symbol with probability p,
// for n ∈ {1000, 5000, 10000, 20000} × p ∈ {0.50, 0.55, 0.60, 0.80}.
//
// Paper's reading: X²_max is minimal at p = 0.5 and increases with p, so
// X²_max against the 2 ln n benchmark detects hidden serial correlation.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"
#include "stats/descriptive.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Table 2 — X²_max vs n and same-symbol probability p",
      "biased binary Markov streams scored under the uniform null");

  std::vector<int64_t> sizes = {1000, 5000, 10000, 20000};
  std::vector<double> ps = {0.50, 0.55, 0.60, 0.80};
  int trials = bench::FastMode() ? 3 : 10;
  auto model = seq::MultinomialModel::Uniform(2);

  io::TableWriter table(
      {"X2max", "p = 0.50", "p = 0.55", "p = 0.60", "p = 0.80"});
  for (int64_t n : sizes) {
    std::vector<std::string> row{StrFormat("n = %lld",
                                           static_cast<long long>(n))};
    for (double p : ps) {
      std::vector<double> values;
      for (int trial = 0; trial < trials; ++trial) {
        seq::Rng rng(2222 + n + static_cast<uint64_t>(p * 100) * 17 + trial);
        seq::Sequence s = seq::GenerateBiasedBinary(p, n, rng);
        auto mss = core::FindMss(s, model);
        values.push_back(mss->best.chi_square);
      }
      row.push_back(StrFormat("%.2f", stats::Mean(values)));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: rows increase with p; p = 0.50 column "
              "tracks the 2 ln n benchmark: ");
  for (int64_t n : sizes) std::printf("%.1f ", 2.0 * std::log(n));
  std::printf(")\n");
  return 0;
}
