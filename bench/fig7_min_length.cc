// Figure 7: iterations for finding the MSS among substrings longer than Γ₀
// (paper: n = 10^5, k = 2; ln Γ₀ on the x-axis from ~10 up to ln n).
//
// Iterations decrease slowly as Γ₀ grows (each scan row is shorter AND
// skips grow with l), then plunge toward 0 as Γ₀ → n.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Figure 7 — iterations vs minimum length Gamma0",
      "MSS among substrings of length > Gamma0 (min_length = Gamma0 + 1)");

  const int64_t n = bench::FastMode() ? 20000 : 100000;
  seq::Rng rng(707);
  seq::Sequence s = seq::GenerateNull(2, n, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  seq::PrefixCounts counts(s);
  core::ChiSquareContext ctx(model);

  // Sweep Γ₀ logarithmically toward n, mirroring the paper's ln Γ₀ axis.
  std::vector<int64_t> gammas;
  for (double f : {0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 0.99}) {
    gammas.push_back(static_cast<int64_t>(n * f));
  }
  io::TableWriter table({"Gamma0", "ln Gamma0", "iter(ours)",
                         "ln iter(ours)", "iter(trivial)", "X2max"});
  for (int64_t gamma0 : gammas) {
    auto result = core::FindMssMinLength(counts, ctx, gamma0 + 1);
    double iter = static_cast<double>(result.stats.positions_examined);
    // Trivial scan restricted to length > Γ₀ examines (n-Γ₀)(n-Γ₀+1)/2.
    int64_t rem = n - gamma0;
    double trivial = static_cast<double>(rem) * (rem + 1) / 2.0;
    table.AddRow({std::to_string(gamma0),
                  StrFormat("%.2f", std::log(static_cast<double>(gamma0))),
                  StrFormat("%.0f", iter), StrFormat("%.2f", std::log(iter)),
                  StrFormat("%.0f", trivial),
                  StrFormat("%.2f", result.best.chi_square)});
  }
  std::printf("n = %lld, k = 2\n%s", static_cast<long long>(n),
              table.Render().c_str());
  std::printf("(paper: slow decrease, then rapid approach to 0 as Gamma0 "
              "tends to n)\n");
  return 0;
}
