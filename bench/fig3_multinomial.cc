// Figure 3: X²_max and iteration count for heterogeneous multinomial
// strings, varying the probability p0 of the first character.
//
//   S1: n = 10^4, k = 3, P = {p0, 0.5 − p0, 0.5}
//   S2: n = 10^4, k = 5, P = {p0, 0.5 − p0, 0.1, 0.2, 0.2}
//
// Paper's observation: p0 changes X²_max but has no significant effect on
// the number of iterations.

#include <cstdio>
#include <functional>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"
#include "stats/descriptive.h"

namespace {

using namespace sigsub;

void RunSeries(const char* name, int64_t n,
               const std::function<std::vector<double>(double)>& probs_of,
               const std::vector<double>& p0_values, int trials) {
  io::TableWriter table(
      {"p0", "E[X2max]", "iterations", "iter/10^4"});
  for (double p0 : p0_values) {
    auto model = seq::MultinomialModel::Make(probs_of(p0)).value();
    std::vector<double> x2s, iters;
    for (int trial = 0; trial < trials; ++trial) {
      seq::Rng rng(5000 + static_cast<uint64_t>(p0 * 1000) + trial);
      seq::Sequence s = seq::GenerateMultinomial(model, n, rng);
      auto mss = core::FindMss(s, model);
      x2s.push_back(mss->best.chi_square);
      iters.push_back(static_cast<double>(mss->stats.positions_examined));
    }
    double mean_iter = stats::Mean(iters);
    table.AddRow({StrFormat("%.2f", p0),
                  StrFormat("%.2f", stats::Mean(x2s)),
                  StrFormat("%.0f", mean_iter),
                  StrFormat("%.1f", mean_iter / 1e4)});
  }
  std::printf("\n%s:\n%s", name, table.Render().c_str());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3 — X²_max and iterations vs p0 for multinomial strings",
      "S1: n=10^4, k=3, P={p0, .5-p0, .5};  "
      "S2: n=10^4, k=5, P={p0, .5-p0, .1, .2, .2}");

  const int64_t n = 10000;
  std::vector<double> p0_values = {0.05, 0.10, 0.15, 0.20, 0.25};
  int trials = bench::FastMode() ? 2 : 10;

  RunSeries("S1 (k = 3)", n,
            [](double p0) {
              return std::vector<double>{p0, 0.5 - p0, 0.5};
            },
            p0_values, trials);
  RunSeries("S2 (k = 5)", n,
            [](double p0) {
              return std::vector<double>{p0, 0.5 - p0, 0.1, 0.2, 0.2};
            },
            p0_values, trials);
  std::printf(
      "\n(paper: X²_max varies with p0; iterations remain roughly flat)\n");
  return 0;
}
