// Table 4 (Section 7.5.1): per-algorithm comparison on the sports string —
// which X² each algorithm finds and how long it takes.
//
// Paper: Trivial/Our/ARLM all find the optimal 1924-1933 patch (X² 38.76);
// AGMM is fastest but returns the second-best patch (X² 26.99).

#include <cstdio>
#include <string>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Table 4 — algorithm comparison on the sports series",
      "seeded synthetic rivalry series (stand-in for Yankees vs Red Sox)");

  io::RivalrySeries series = io::RivalrySeries::Default();
  double p = series.EmpiricalWinRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  const seq::Sequence& s = series.outcomes();
  seq::PrefixCounts counts(s);
  core::ChiSquareContext ctx(model);

  io::TableWriter table({"Algorithm", "X2 val", "Start", "End", "Time"});
  auto add_row = [&](const std::string& name, const core::MssResult& result,
                     double ms) {
    table.AddRow({name, StrFormat("%.2f", result.best.chi_square),
                  series.dates().date(result.best.start).ToString(),
                  series.dates().date(result.best.end - 1).ToString(),
                  bench::FormatMs(ms)});
  };

  core::MssResult result;
  double ms;
  ms = bench::TimeMs([&] { result = core::NaiveFindMss(s, ctx); });
  add_row("Trivial", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMss(counts, ctx); });
  add_row("Our", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMssBlocked(s, counts, ctx); });
  add_row("Blocked", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMssArlm(s, counts, ctx); });
  add_row("ARLM", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMssAgmm(s, counts, ctx); });
  add_row("AGMM", result, ms);

  std::printf("%s", table.Render().c_str());
  std::printf("(paper shape: exact algorithms agree on the optimum; AGMM "
              "is fastest but may return a suboptimal patch)\n");
  return 0;
}
