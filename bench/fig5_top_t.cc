// Figure 5 (a/b): time to find the top-t set.
//
// (a) time vs n for MSS (t = 1) and t = 10, 100, 2000: all scale ~n^1.5.
// (b) time vs t for n = 500, 2000, 10000: flat-ish until t approaches the
//     number of substrings with distinct high scores, then the advantage
//     of skipping erodes (slope bends toward the trivial scan).

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader("Figure 5a/5b — time for finding the top-t set",
                     "null strings, k = 2; wall-clock microseconds");

  auto model = seq::MultinomialModel::Uniform(2);

  // --- Figure 5a: time vs n for several t. ---
  {
    std::vector<int64_t> sizes = {1024,  2048,  4096,  8192,
                                  16384, 32768, 65536, 131072};
    if (bench::FastMode()) sizes = {1024, 4096, 16384};
    io::TableWriter table({"n", "MSS", "Top-10", "Top-100", "Top-2000"});
    std::vector<double> ns, mss_us;
    for (int64_t n : sizes) {
      seq::Rng rng(31337 + n);
      seq::Sequence s = seq::GenerateNull(2, n, rng);
      seq::PrefixCounts counts(s);
      core::ChiSquareContext ctx(model);
      std::vector<std::string> row{std::to_string(n)};
      bool first = true;
      for (int64_t t : {1, 10, 100, 2000}) {
        double ms = bench::TimeMs(
            [&] { core::FindTopT(counts, ctx, t); });
        row.push_back(StrFormat("%.0fus", ms * 1000.0));
        if (first) {
          ns.push_back(static_cast<double>(n));
          mss_us.push_back(ms * 1000.0 + 1.0);
          first = false;
        }
      }
      table.AddRow(row);
    }
    std::printf("\nFigure 5a (time vs n):\n%s", table.Render().c_str());
    bench::PrintLogLogSlope("MSS time, expect ~1.5", ns, mss_us);
  }

  // --- Figure 5b: time vs t. ---
  {
    std::vector<int64_t> ts = {1, 4, 16, 64, 256, 1024, 4096};
    if (bench::FastMode()) ts = {1, 16, 256};
    std::vector<int64_t> sizes = {500, 2000, 10000};
    io::TableWriter table({"t", "n=500", "n=2000", "n=10000"});
    for (int64_t t : ts) {
      std::vector<std::string> row{std::to_string(t)};
      for (int64_t n : sizes) {
        seq::Rng rng(999 + n);
        seq::Sequence s = seq::GenerateNull(2, n, rng);
        seq::PrefixCounts counts(s);
        core::ChiSquareContext ctx(model);
        double ms = bench::TimeMs([&] { core::FindTopT(counts, ctx, t); });
        row.push_back(StrFormat("%.0fus", ms * 1000.0));
      }
      table.AddRow(row);
    }
    std::printf("\nFigure 5b (time vs t):\n%s", table.Render().c_str());
    std::printf("(paper: ~n^1.5 growth; slope in t bends upward once t "
                "approaches ω(n))\n");
  }
  return 0;
}
