// engine::Engine batch execution vs naive per-job library calls.
//
// Workload: a corpus of M sequences, J jobs per sequence (one of each
// problem kernel). Three executions of the same job list:
//
//   naive        — each job issued as an independent FindMss-style call,
//                  which rebuilds PrefixCounts for its sequence (what a
//                  caller without the engine would write today);
//   engine cold  — one ExecuteBatch on a fresh engine: PrefixCounts and
//                  ChiSquareContext built once per distinct sequence/model
//                  and shared across the jobs (empty cache, all misses);
//   engine warm  — the same batch again on the same engine: every job is
//                  an LRU cache hit, no kernel runs at all.
//
// The bench asserts the engine's X² values are bit-identical to the naive
// calls before reporting timings, and reports single-thread numbers so
// the cold-row speedup isolates context reuse (a multi-thread row shows
// the additional across-jobs scaling).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

/// One of each kernel per record.
std::vector<engine::JobSpec> MakeJobs(const engine::Corpus& corpus) {
  std::vector<engine::JobSpec> jobs;
  for (int64_t i = 0; i < corpus.size(); ++i) {
    for (engine::JobKind kind :
         {engine::JobKind::kMss, engine::JobKind::kTopT,
          engine::JobKind::kTopDisjoint, engine::JobKind::kThreshold,
          engine::JobKind::kMinLength}) {
      engine::JobSpec spec;
      spec.kind = kind;
      spec.sequence_index = i;
      spec.params.t = 5;
      spec.params.min_length = 50;
      spec.params.alpha0 = 20.0;
      spec.params.max_matches = 0;  // Count-only, like the batch CLI.
      jobs.push_back(spec);
    }
  }
  return jobs;
}

/// The no-engine baseline: every job pays the validating entry point,
/// which rebuilds the sequence's PrefixCounts. Returns each job's best X²
/// for the equivalence check.
std::vector<double> RunNaive(const engine::Corpus& corpus,
                             const seq::MultinomialModel& model,
                             const std::vector<engine::JobSpec>& jobs) {
  std::vector<double> best;
  best.reserve(jobs.size());
  for (const engine::JobSpec& spec : jobs) {
    const seq::Sequence& s = corpus.sequence(spec.sequence_index);
    switch (spec.kind) {
      case engine::JobKind::kMss:
        best.push_back(core::FindMss(s, model)->best.chi_square);
        break;
      case engine::JobKind::kTopT:
        best.push_back(
            core::FindTopT(s, model, spec.params.t)->top.front().chi_square);
        break;
      case engine::JobKind::kTopDisjoint: {
        core::TopDisjointOptions options;
        options.t = spec.params.t;
        options.min_length = spec.params.min_length;
        best.push_back(
            core::FindTopDisjoint(s, model, options)->front().chi_square);
        break;
      }
      case engine::JobKind::kThreshold: {
        core::ThresholdOptions options;
        options.max_matches = spec.params.max_matches;
        auto result =
            core::FindAboveThreshold(s, model, spec.params.alpha0, options);
        // `best` is only valid when something matched (scan_types.h);
        // represent the no-match case as 0.0 explicitly, which is also
        // what the engine's cached payload carries.
        best.push_back(result->match_count > 0 ? result->best.chi_square
                                               : 0.0);
        break;
      }
      case engine::JobKind::kMinLength:
        best.push_back(core::FindMssMinLength(s, model, spec.params.min_length)
                           ->best.chi_square);
        break;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "engine batch — context reuse + result cache vs naive calls",
      "corpus of planted-anomaly strings, k = 4; one job of each kind "
      "per record; timings land in BENCH_engine.json");
  bench::JsonBench json("engine");

  const int64_t records = bench::FastMode() ? 8 : 32;
  const int64_t n = bench::FastMode() ? 4000 : 20000;
  const int k = 4;

  // Null background with one planted low-entropy patch per record.
  seq::Rng rng(20120731);
  std::vector<std::string> texts;
  seq::Alphabet alphabet = seq::Alphabet::Canonical(k);
  for (int64_t i = 0; i < records; ++i) {
    seq::Sequence s = seq::GenerateNull(k, n, rng);
    std::string text = s.ToString(alphabet);
    int64_t at = (i * 997) % (n - n / 10);
    text.replace(static_cast<size_t>(at), static_cast<size_t>(n / 20),
                 std::string(static_cast<size_t>(n / 20), 'a'));
    texts.push_back(text);
  }
  auto corpus = engine::Corpus::FromStrings(texts, alphabet.characters());
  if (!corpus.ok()) {
    std::printf("corpus error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<engine::JobSpec> jobs = MakeJobs(*corpus);
  auto model = seq::MultinomialModel::Uniform(k);
  std::printf("corpus: %lld records of n = %lld, %zu jobs\n\n",
              static_cast<long long>(records), static_cast<long long>(n),
              jobs.size());

  std::vector<double> naive_best;
  double naive_ms =
      bench::TimeMs([&] { naive_best = RunNaive(*corpus, model, jobs); });

  engine::Engine serial({.num_threads = 1, .cache_capacity = 4096});
  std::vector<engine::JobResult> cold_results;
  double cold_ms = bench::TimeMs([&] {
    cold_results = std::move(serial.ExecuteBatch(*corpus, jobs)).value();
  });
  std::vector<engine::JobResult> warm_results;
  double warm_ms = bench::TimeMs([&] {
    warm_results = std::move(serial.ExecuteBatch(*corpus, jobs)).value();
  });

  engine::Engine parallel({.num_threads = 0, .cache_capacity = 4096});
  std::vector<engine::JobResult> parallel_results;
  double parallel_ms = bench::TimeMs([&] {
    parallel_results = std::move(parallel.ExecuteBatch(*corpus, jobs)).value();
  });
  // On a single-core host ThreadPool(0) resolves to one worker, so the
  // "parallel" row is a second sequential run — that is exactly what a
  // committed BENCH_engine.json once reported as a mysterious 1.02x.
  // Say so explicitly, and only gate multi-thread scaling when there is
  // more than one worker to scale across.
  const bool multi_core = parallel.num_threads() >= 2;
  if (!multi_core) {
    std::printf(
        "single-core host: the %d-thread engine row measures scheduling "
        "overhead only; multi-thread speedup gate skipped\n",
        parallel.num_threads());
  }

  // Equivalence gate: engine output must be bit-identical to the naive
  // calls (same kernels, same summation order), cold and warm alike.
  int64_t mismatches = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (cold_results[i].best.chi_square != naive_best[i]) ++mismatches;
    if (warm_results[i].best.chi_square != naive_best[i]) ++mismatches;
    if (parallel_results[i].best.chi_square != naive_best[i]) ++mismatches;
  }
  std::printf("X² bit-identical to naive calls: %s\n\n",
              mismatches == 0 ? "yes" : "NO — BUG");
  json.AddGate("batch_bit_identical_to_naive", mismatches == 0);
  if (mismatches != 0) {
    json.Write();
    return 1;
  }

  engine::CacheStats stats = serial.cache_stats();
  std::printf("serial engine cache: %lld hits / %lld lookups\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.lookups()));

  io::TableWriter table({"mode", "time", "jobs/s", "speedup"});
  auto add = [&](const std::string& mode, double ms, size_t job_count,
                 double baseline_ms) {
    table.AddRow({mode, bench::FormatMs(ms),
                  StrFormat("%.0f", 1000.0 * job_count / ms),
                  StrFormat("%.2fx", baseline_ms / ms)});
  };
  add("naive per-job calls", naive_ms, jobs.size(), naive_ms);
  add("engine cold (context reuse, 1 thread)", cold_ms, jobs.size(),
      naive_ms);
  add(StrCat("engine cold (", parallel.num_threads(), " thread",
             parallel.num_threads() == 1 ? ", single-core host" : "s", ")"),
      parallel_ms, jobs.size(), naive_ms);
  add("engine warm (cache hits)", warm_ms, jobs.size(), naive_ms);
  std::printf("\n%s", table.Render().c_str());
  json.AddResult("naive_per_job", naive_ms);
  json.AddResult("engine_cold_1_thread", cold_ms, naive_ms / cold_ms);
  json.AddResult("engine_cold_parallel", parallel_ms, naive_ms / parallel_ms);
  json.AddScalar("engine_parallel_workers", "count",
                 static_cast<double>(parallel.num_threads()));
  json.AddResult("engine_warm_cache", warm_ms, naive_ms / warm_ms);
  if (multi_core) {
    // A real multi-thread batch must beat the 1-thread cold run by a
    // comfortable margin (the 40-job batch offers plenty of across-job
    // parallelism; 1.3x is conservative for >= 2 workers on shared CI
    // runners).
    double scaling = cold_ms / parallel_ms;
    std::printf("multi-thread scaling over 1 thread: %.2fx (floor 1.3x: "
                "%s)\n",
                scaling, scaling >= 1.3 ? "pass" : "FAIL");
    json.AddResult("engine_parallel_vs_1_thread", parallel_ms, scaling);
    json.AddGate("parallel_speedup_over_1_thread", scaling >= 1.3);
  }

  // ------------------------------------------------------------------
  // api-layer dispatch overhead. Two measurements:
  //
  //   1. The same 40-job batch submitted as legacy JobSpecs (lowered
  //      internally) and as pre-lowered api::QuerySpecs — identical
  //      kernels, reported as an informational ratio (a direct ratio
  //      gate at 2% would need cross-run timing stability better than
  //      2%, which shared runners do not offer).
  //   2. The gate: a dispatch-dominated probe — many one-record MSS
  //      queries over tiny distinct records, so per-query time is
  //      essentially the query layer itself (validation, canonical-bytes
  //      fingerprinting, grouping, payload shaping) plus a negligible
  //      kernel. That per-query dispatch cost must stay under 2% of the
  //      real batch's per-query time. The two sides differ by orders of
  //      magnitude, so the gate trips on a structural regression (an
  //      accidentally O(n) or allocation-heavy dispatch path), not on
  //      scheduler noise.
  std::vector<api::QuerySpec> query_specs;
  query_specs.reserve(jobs.size());
  for (const engine::JobSpec& spec : jobs) {
    query_specs.push_back(engine::ToQuerySpec(spec));
  }
  engine::Engine jobspec_engine({.num_threads = 1, .cache_capacity = 0});
  engine::Engine query_engine({.num_threads = 1, .cache_capacity = 0});
  double jobspec_ms = 1e300, query_ms = 1e300;
  std::vector<engine::JobResult> jobspec_results;
  std::vector<api::QueryResult> query_results;
  for (int rep = 0; rep < 5; ++rep) {
    jobspec_ms = std::min(jobspec_ms, bench::TimeMs([&] {
      jobspec_results =
          std::move(jobspec_engine.ExecuteBatch(*corpus, jobs)).value();
    }));
    query_ms = std::min(query_ms, bench::TimeMs([&] {
      query_results =
          std::move(query_engine.ExecuteQueries(*corpus, query_specs))
              .value();
    }));
  }
  int64_t api_mismatches = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (query_results[i].best().chi_square != naive_best[i]) {
      ++api_mismatches;
    }
    if (jobspec_results[i].best.chi_square != naive_best[i]) {
      ++api_mismatches;
    }
  }
  std::printf(
      "\napi dispatch: JobSpec path %s, QuerySpec path %s (%.3fx, "
      "informational; bit-identical: %s)\n",
      bench::FormatMs(jobspec_ms).c_str(), bench::FormatMs(query_ms).c_str(),
      query_ms / jobspec_ms, api_mismatches == 0 ? "yes" : "NO — BUG");
  json.AddResult("api_jobspec_path", jobspec_ms);
  json.AddResult("api_query_path", query_ms, jobspec_ms / query_ms);
  json.AddGate("api_dispatch_bit_identical", api_mismatches == 0);

  const int64_t probe_records = 512;
  std::vector<std::string> probe_texts;
  probe_texts.reserve(static_cast<size_t>(probe_records));
  for (int64_t i = 0; i < probe_records; ++i) {
    seq::Sequence tiny = seq::GenerateNull(k, 16, rng);
    probe_texts.push_back(tiny.ToString(alphabet));
  }
  auto probe_corpus =
      engine::Corpus::FromStrings(probe_texts, alphabet.characters());
  if (!probe_corpus.ok()) {
    std::printf("corpus error: %s\n",
                probe_corpus.status().ToString().c_str());
    return 1;
  }
  std::vector<api::QuerySpec> probe_specs(
      static_cast<size_t>(probe_corpus->size()));
  for (int64_t i = 0; i < probe_corpus->size(); ++i) {
    probe_specs[static_cast<size_t>(i)].sequence_index = i;
  }
  engine::Engine probe_engine({.num_threads = 1, .cache_capacity = 0});
  double probe_ms = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    probe_ms = std::min(probe_ms, bench::TimeMs([&] {
      (void)probe_engine.ExecuteQueries(*probe_corpus, probe_specs).value();
    }));
  }
  const double dispatch_per_query_ms =
      probe_ms / static_cast<double>(probe_records);
  const double batch_per_query_ms =
      jobspec_ms / static_cast<double>(jobs.size());
  const bool overhead_ok =
      dispatch_per_query_ms <= 0.02 * batch_per_query_ms;
  std::printf(
      "api dispatch cost: %.1fus/query (probe of %lld tiny records) vs "
      "%.2fms/query real batch — %.2f%% (<2%% gate: %s)\n",
      1000.0 * dispatch_per_query_ms,
      static_cast<long long>(probe_records), batch_per_query_ms,
      100.0 * dispatch_per_query_ms / batch_per_query_ms,
      overhead_ok ? "pass" : "FAIL");
  json.AddResult("api_dispatch_probe", probe_ms);
  json.AddGate("api_dispatch_overhead_under_2pct", overhead_ok);

  // ------------------------------------------------------------------
  // Point-query regime: many cheap parameterized queries per sequence
  // (minlen floors close to n — "score the most anomalous near-full
  // window"). Here each naive call's O(k·n) PrefixCounts rebuild is the
  // dominant cost, which is exactly what context reuse removes: the
  // engine pays the build once per record however many queries land on
  // it.
  std::vector<engine::JobSpec> point_jobs;
  for (int64_t i = 0; i < corpus->size(); ++i) {
    for (int64_t back : {2, 4, 6, 8, 12, 16, 24, 32}) {
      engine::JobSpec spec;
      spec.kind = engine::JobKind::kMinLength;
      spec.sequence_index = i;
      spec.params.min_length = n - back;
      point_jobs.push_back(spec);
    }
  }
  std::vector<double> point_naive_best;
  double point_naive_ms = bench::TimeMs(
      [&] { point_naive_best = RunNaive(*corpus, model, point_jobs); });
  engine::Engine point_engine({.num_threads = 1, .cache_capacity = 4096});
  std::vector<engine::JobResult> point_results;
  double point_cold_ms = bench::TimeMs([&] {
    point_results =
        std::move(point_engine.ExecuteBatch(*corpus, point_jobs)).value();
  });
  int64_t point_mismatches = 0;
  for (size_t i = 0; i < point_jobs.size(); ++i) {
    if (point_results[i].best.chi_square != point_naive_best[i]) {
      ++point_mismatches;
    }
  }
  std::printf(
      "\npoint queries (%zu minlen jobs, floors near n): bit-identical: "
      "%s\n\n",
      point_jobs.size(), point_mismatches == 0 ? "yes" : "NO — BUG");
  json.AddGate("point_query_bit_identical", point_mismatches == 0);
  if (point_mismatches != 0) {
    json.Write();
    return 1;
  }

  io::TableWriter point_table({"mode", "time", "jobs/s", "speedup"});
  auto point_add = [&](const std::string& mode, double ms) {
    point_table.AddRow({mode, bench::FormatMs(ms),
                        StrFormat("%.0f", 1000.0 * point_jobs.size() / ms),
                        StrFormat("%.2fx", point_naive_ms / ms)});
  };
  point_add("naive per-job calls", point_naive_ms);
  point_add("engine cold (context reuse, 1 thread)", point_cold_ms);
  std::printf("%s", point_table.Render().c_str());
  json.AddResult("point_naive_per_job", point_naive_ms);
  json.AddResult("point_engine_cold_1_thread", point_cold_ms,
                 point_naive_ms / point_cold_ms);

  // ------------------------------------------------------------------
  // In-record sharding regime: ONE multi-megabyte record, one MSS job —
  // the case where a per-job engine pins a single worker however many
  // threads it has. Above the --shard-min threshold the engine splits
  // the record into strided core::MssShardScan shards across its pool.
  // Gate: the sharded X² is bit-identical to the sequential kernel's.
  const int64_t big_n = bench::FastMode() ? 300000 : 4000000;
  seq::Sequence big = seq::GenerateNull(k, big_n, rng);
  std::string big_text = big.ToString(alphabet);
  big_text.replace(static_cast<size_t>(big_n / 2),
                   static_cast<size_t>(big_n / 100),
                   std::string(static_cast<size_t>(big_n / 100), 'a'));
  auto big_corpus = engine::Corpus::FromStrings({big_text},
                                                alphabet.characters());
  if (!big_corpus.ok()) {
    std::printf("corpus error: %s\n",
                big_corpus.status().ToString().c_str());
    return 1;
  }
  auto direct = core::FindMss(big_corpus->sequence(0), model);
  engine::Engine pinned({.num_threads = 0,
                         .cache_capacity = 0,
                         .shard_min_sequence = 0});
  engine::Engine shard_engine({.num_threads = 0,
                               .cache_capacity = 0,
                               .shard_min_sequence = 1});
  std::vector<engine::JobResult> pinned_results, shard_results;
  double pinned_ms = bench::TimeMs([&] {
    pinned_results =
        std::move(pinned.ExecuteUniform(*big_corpus, engine::JobKind::kMss))
            .value();
  });
  double shard_ms = bench::TimeMs([&] {
    shard_results =
        std::move(
            shard_engine.ExecuteUniform(*big_corpus, engine::JobKind::kMss))
            .value();
  });
  bool shard_identical =
      pinned_results[0].best.chi_square == direct->best.chi_square &&
      shard_results[0].best.chi_square == direct->best.chi_square;
  std::printf(
      "\none %lld-symbol record, 1 MSS job (%d workers): sharded X² "
      "bit-identical: %s\n",
      static_cast<long long>(big_n), shard_engine.num_threads(),
      shard_identical ? "yes" : "NO — BUG");
  json.AddGate("sharded_bit_identical", shard_identical);

  io::TableWriter shard_table({"mode", "time", "speedup"});
  shard_table.AddRow({"engine, record pins one worker",
                      bench::FormatMs(pinned_ms), "1.00x"});
  shard_table.AddRow(
      {StrCat("engine, in-record sharding (", shard_engine.num_threads(),
              " shards)"),
       bench::FormatMs(shard_ms),
       StrFormat("%.2fx", pinned_ms / shard_ms)});
  std::printf("%s", shard_table.Render().c_str());
  json.AddResult("one_record_pinned_worker", pinned_ms);
  json.AddResult("one_record_sharded", shard_ms, pinned_ms / shard_ms);

  if (!json.Write()) return 1;
  return json.AllGatesPass() ? 0 : 1;
}
