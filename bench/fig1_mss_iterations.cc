// Figure 1 (a/b): iterations of the MSS algorithm vs the trivial scan.
//
// (a) ln(iterations) vs ln(n) for k = 2: ours grows with slope ~1.5, the
//     trivial scan with slope 2.
// (b) the same sweep for k = 2, 3, 5, 10: alphabet size has no significant
//     effect on the iteration count.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Figure 1a/1b — iterations for finding the MSS",
      "null-model strings; iterations = substring ending positions "
      "examined");

  std::vector<int64_t> sizes = {512, 1024, 2048, 4096, 8192, 16384, 32768,
                                65536};
  if (bench::FastMode()) sizes = {512, 2048, 8192};

  // --- Figure 1a: ours vs trivial, k = 2. ---
  {
    io::TableWriter table({"n", "ln n", "iter(ours)", "ln iter(ours)",
                           "iter(trivial)", "ln iter(trivial)"});
    std::vector<double> ns, iters;
    for (int64_t n : sizes) {
      // Average over a few seeds, like the paper's averaged runs.
      const int kTrials = 5;
      double total_iter = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        seq::Rng rng(1000 + 31 * trial + n);
        seq::Sequence s = seq::GenerateNull(2, n, rng);
        auto mss = core::FindMss(s, seq::MultinomialModel::Uniform(2));
        total_iter += static_cast<double>(mss->stats.positions_examined);
      }
      double iter = total_iter / kTrials;
      double trivial = static_cast<double>(core::TrivialScanPositions(n));
      table.AddRow({std::to_string(n), StrFormat("%.2f", std::log(n)),
                    StrFormat("%.0f", iter),
                    StrFormat("%.2f", std::log(iter)),
                    StrFormat("%.0f", trivial),
                    StrFormat("%.2f", std::log(trivial))});
      ns.push_back(static_cast<double>(n));
      iters.push_back(iter);
    }
    std::printf("\nFigure 1a (k = 2):\n%s", table.Render().c_str());
    bench::PrintLogLogSlope("ours, expect ~1.5", ns, iters);
    bench::PrintLogLogSlope(
        "trivial, expect 2.0", ns,
        [&] {
          std::vector<double> t;
          for (double n : ns)
            t.push_back(static_cast<double>(
                core::TrivialScanPositions(static_cast<int64_t>(n))));
          return t;
        }());
  }

  // --- Figure 1b: varying alphabet size. ---
  {
    std::printf("\nFigure 1b (iterations vs n for several k):\n");
    io::TableWriter table({"n", "k=2", "k=3", "k=5", "k=10"});
    for (int64_t n : sizes) {
      std::vector<std::string> row{std::to_string(n)};
      for (int k : {2, 3, 5, 10}) {
        seq::Rng rng(2000 + k + n);
        seq::Sequence s = seq::GenerateNull(k, n, rng);
        auto mss = core::FindMss(s, seq::MultinomialModel::Uniform(k));
        row.push_back(std::to_string(mss->stats.positions_examined));
      }
      table.AddRow(row);
    }
    std::printf("%s", table.Render().c_str());
    std::printf("(expected: columns nearly equal — k has no significant "
                "effect)\n");
  }
  return 0;
}
