#ifndef SIGSUB_BENCH_COMMON_HARNESS_H_
#define SIGSUB_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/str_util.h"

namespace sigsub {
namespace bench {

/// True when SIGSUB_BENCH_FAST=1 is set: benches shrink their sweeps for a
/// quick smoke pass. The recorded outputs in EXPERIMENTS.md use the full
/// paper-scale parameters (the default).
bool FastMode();

/// Prints the standard header for a bench binary: which paper result it
/// regenerates and the workload description.
void PrintHeader(const std::string& paper_result,
                 const std::string& description);

/// Wall-clock milliseconds of `fn` (single run; the scans themselves are
/// deterministic and long enough that one run is stable).
double TimeMs(const std::function<void()>& fn);

/// Milliseconds pretty-printer: "0.53ms" / "1.24s".
std::string FormatMs(double ms);

/// Fits ln(y) = slope·ln(x) + c and prints "slope(label) = ...". Returns
/// the slope; used for the paper's log-log scaling claims (Figs 1, 2, 5).
double PrintLogLogSlope(const std::string& label,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys);

/// Accumulates benchmark measurements and gate outcomes, then writes them
/// as one machine-readable JSON file (BENCH_<name>.json) so successive
/// runs of a bench form a comparable perf trajectory. Results are rows of
/// {name, ms[, speedup]}; gates are named booleans (bit-identity checks,
/// perf targets). The file also records whether the run was a
/// SIGSUB_BENCH_FAST smoke pass, since smoke timings are not comparable
/// to full-scale ones, and a {"name": "machine", "hardware_concurrency"}
/// row so bench_diff can warn when a run and the committed baseline came
/// from machines with different core counts.
class JsonBench {
 public:
  /// `name` is the suite label: "core" writes BENCH_core.json (in the
  /// current directory) by default.
  explicit JsonBench(std::string name);

  void AddResult(const std::string& result_name, double ms);
  void AddResult(const std::string& result_name, double ms, double speedup);
  /// A non-timing metric row {name, <key>: value} (e.g. a throughput in
  /// Msymbols/s), kept alongside the timing rows in "results".
  void AddScalar(const std::string& result_name, const std::string& key,
                 double value);
  void AddGate(const std::string& gate_name, bool pass);

  /// True iff every recorded gate passed.
  bool AllGatesPass() const;

  /// Writes BENCH_<name>.json; returns false (after printing the error)
  /// if the file cannot be written.
  bool Write() const;
  bool WriteTo(const std::string& path) const;

 private:
  struct Row {
    std::string name;
    std::string key;  // JSON key of `value`: "ms" for timings.
    double value;
    double speedup;  // NaN when not applicable.
  };
  std::string name_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, bool>> gates_;
};

}  // namespace bench
}  // namespace sigsub

#endif  // SIGSUB_BENCH_COMMON_HARNESS_H_
