#ifndef SIGSUB_BENCH_COMMON_HARNESS_H_
#define SIGSUB_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace sigsub {
namespace bench {

/// True when SIGSUB_BENCH_FAST=1 is set: benches shrink their sweeps for a
/// quick smoke pass. The recorded outputs in EXPERIMENTS.md use the full
/// paper-scale parameters (the default).
bool FastMode();

/// Prints the standard header for a bench binary: which paper result it
/// regenerates and the workload description.
void PrintHeader(const std::string& paper_result,
                 const std::string& description);

/// Wall-clock milliseconds of `fn` (single run; the scans themselves are
/// deterministic and long enough that one run is stable).
double TimeMs(const std::function<void()>& fn);

/// Milliseconds pretty-printer: "0.53ms" / "1.24s".
std::string FormatMs(double ms);

/// Fits ln(y) = slope·ln(x) + c and prints "slope(label) = ...". Returns
/// the slope; used for the paper's log-log scaling claims (Figs 1, 2, 5).
double PrintLogLogSlope(const std::string& label,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys);

}  // namespace bench
}  // namespace sigsub

#endif  // SIGSUB_BENCH_COMMON_HARNESS_H_
