#include "common/harness.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/str_util.h"
#include "stats/descriptive.h"

namespace sigsub {
namespace bench {

bool FastMode() {
  const char* env = std::getenv("SIGSUB_BENCH_FAST");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

void PrintHeader(const std::string& paper_result,
                 const std::string& description) {
  std::printf("==================================================\n");
  std::printf("%s\n", paper_result.c_str());
  std::printf("%s\n", description.c_str());
  if (FastMode()) {
    std::printf("[SIGSUB_BENCH_FAST=1: reduced-scale smoke run]\n");
  }
  std::printf("==================================================\n");
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

std::string FormatMs(double ms) {
  if (ms >= 1000.0) return StrFormat("%.2fs", ms / 1000.0);
  if (ms >= 1.0) return StrFormat("%.2fms", ms);
  return StrFormat("%.3fms", ms);
}

JsonBench::JsonBench(std::string name) : name_(std::move(name)) {}

void JsonBench::AddResult(const std::string& result_name, double ms) {
  rows_.push_back(Row{result_name, "ms", ms, std::nan("")});
}

void JsonBench::AddResult(const std::string& result_name, double ms,
                          double speedup) {
  rows_.push_back(Row{result_name, "ms", ms, speedup});
}

void JsonBench::AddScalar(const std::string& result_name,
                          const std::string& key, double value) {
  rows_.push_back(Row{result_name, key, value, std::nan("")});
}

void JsonBench::AddGate(const std::string& gate_name, bool pass) {
  gates_.emplace_back(gate_name, pass);
}

bool JsonBench::AllGatesPass() const {
  for (const auto& [unused, pass] : gates_) {
    if (!pass) return false;
  }
  return true;
}

bool JsonBench::Write() const { return WriteTo("BENCH_" + name_ + ".json"); }

bool JsonBench::WriteTo(const std::string& path) const {
  std::string out = "{\n";
  out += StrCat("  \"bench\": \"", name_, "\",\n");
  out += StrCat("  \"fast_mode\": ", FastMode() ? "true" : "false", ",\n");
  out += "  \"results\": [\n";
  for (const Row& row : rows_) {
    out += StrCat("    {\"name\": \"", row.name, "\", \"", row.key,
                  "\": ", StrFormat("%.6f", row.value));
    if (!std::isnan(row.speedup)) {
      out += StrCat(", \"speedup\": ", StrFormat("%.4f", row.speedup));
    }
    out += "},\n";
  }
  // Every BENCH file records the machine's logical core count so
  // tools/bench_diff.py can flag cross-machine comparisons — speedups are
  // relative, but contention-sensitive ones still shift with core count.
  out += StrCat("    {\"name\": \"machine\", \"hardware_concurrency\": ",
                std::thread::hardware_concurrency(), "}\n");
  out += "  ],\n  \"gates\": {\n";
  for (size_t i = 0; i < gates_.size(); ++i) {
    out += StrCat("    \"", gates_[i].first, "\": ",
                  gates_[i].second ? "true" : "false",
                  i + 1 < gates_.size() ? ",\n" : "\n");
  }
  out += "  }\n}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

double PrintLogLogSlope(const std::string& label,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  stats::LinearFit fit = stats::FitLine(lx, ly);
  std::printf("log-log slope (%s): %.3f   (r² = %.4f)\n", label.c_str(),
              fit.slope, fit.r_squared);
  return fit.slope;
}

}  // namespace bench
}  // namespace sigsub
