#include "common/harness.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"
#include "stats/descriptive.h"

namespace sigsub {
namespace bench {

bool FastMode() {
  const char* env = std::getenv("SIGSUB_BENCH_FAST");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

void PrintHeader(const std::string& paper_result,
                 const std::string& description) {
  std::printf("==================================================\n");
  std::printf("%s\n", paper_result.c_str());
  std::printf("%s\n", description.c_str());
  if (FastMode()) {
    std::printf("[SIGSUB_BENCH_FAST=1: reduced-scale smoke run]\n");
  }
  std::printf("==================================================\n");
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

std::string FormatMs(double ms) {
  if (ms >= 1000.0) return StrFormat("%.2fs", ms / 1000.0);
  if (ms >= 1.0) return StrFormat("%.2fms", ms);
  return StrFormat("%.3fms", ms);
}

double PrintLogLogSlope(const std::string& label,
                        const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  stats::LinearFit fit = stats::FitLine(lx, ly);
  std::printf("log-log slope (%s): %.3f   (r² = %.4f)\n", label.c_str(),
              fit.slope, fit.r_squared);
  return fit.slope;
}

}  // namespace bench
}  // namespace sigsub
