// Extension bench (paper Section 8 future work, implemented in this
// library; not a paper table/figure):
//   (1) Markov-null scoring — transition anomalies invisible to the
//       multinomial statistic;
//   (2) two-dimensional MSS — planted-rectangle recovery and the column
//       skip's work savings;
//   (3) windowed (length-bounded) MSS — scan cost vs window size.

#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader("Extensions — Markov null, 2-D grids, windowed MSS",
                     "paper §8 future-work directions implemented as "
                     "library extensions");

  // --- (1) Markov vs multinomial statistic on a transition anomaly. ---
  {
    const int64_t segment = bench::FastMode() ? 1500 : 4000;
    seq::Rng rng(81);
    seq::Sequence s(2);
    seq::Sequence a = seq::GenerateBiasedBinary(0.5, segment, rng);
    seq::Sequence b = seq::GenerateBiasedBinary(0.03, 250, rng);
    seq::Sequence c = seq::GenerateBiasedBinary(0.5, segment, rng);
    for (int64_t i = 0; i < a.size(); ++i) s.Append(a[i]);
    for (int64_t i = 0; i < b.size(); ++i) s.Append(b[i]);
    for (int64_t i = 0; i < c.size(); ++i) s.Append(c[i]);

    auto multinomial = core::FindMss(s, seq::MultinomialModel::Uniform(2));
    auto markov =
        core::FindMssMarkov(s, seq::MarkovModel::BiasedBinary(0.5), 16);
    std::printf("\n(1) alternation burst planted at [%lld, %lld):\n",
                static_cast<long long>(segment),
                static_cast<long long>(segment + 250));
    io::TableWriter table({"statistic", "X2max", "window"});
    table.AddRow({"multinomial X2",
                  StrFormat("%.2f", multinomial->best.chi_square),
                  StrFormat("[%lld, %lld)",
                            static_cast<long long>(multinomial->best.start),
                            static_cast<long long>(multinomial->best.end))});
    table.AddRow({"Markov X2",
                  StrFormat("%.2f", markov->best.chi_square),
                  StrFormat("[%lld, %lld)",
                            static_cast<long long>(markov->best.start),
                            static_cast<long long>(markov->best.end))});
    std::printf("%s", table.Render().c_str());
    std::printf("(expected: Markov statistic pinpoints the burst; "
                "multinomial statistic is nearly blind to it)\n");
  }

  // --- (2) 2-D MSS: recovery and work vs naive enumeration. ---
  {
    const int64_t rows = bench::FastMode() ? 24 : 48;
    const int64_t cols = bench::FastMode() ? 60 : 160;
    seq::Rng rng(82);
    auto model = seq::MultinomialModel::Uniform(2);
    auto grid = seq::Grid::GenerateWithPlantedRect(
        model, rows, cols, rows / 4, rows / 2, cols / 4, cols / 2,
        {0.9, 0.1}, rng);
    core::Mss2dResult fast;
    double fast_ms = bench::TimeMs([&] {
      fast = core::FindMss2d(grid.value(), model).value();
    });
    core::Mss2dResult naive;
    double naive_ms = bench::TimeMs([&] {
      naive = core::NaiveFindMss2d(grid.value(), model).value();
    });
    std::printf("\n(2) %lldx%lld grid, planted rect [%lld,%lld)x[%lld,%lld):\n",
                static_cast<long long>(rows), static_cast<long long>(cols),
                static_cast<long long>(rows / 4),
                static_cast<long long>(rows / 2),
                static_cast<long long>(cols / 4),
                static_cast<long long>(cols / 2));
    io::TableWriter table(
        {"method", "X2max", "rect", "rect evals", "time"});
    auto rect_str = [](const core::Rectangle& r) {
      return StrFormat("[%lld,%lld)x[%lld,%lld)",
                       static_cast<long long>(r.row0),
                       static_cast<long long>(r.row1),
                       static_cast<long long>(r.col0),
                       static_cast<long long>(r.col1));
    };
    table.AddRow({"skip-scan", StrFormat("%.2f", fast.best.chi_square),
                  rect_str(fast.best),
                  std::to_string(fast.stats.positions_examined),
                  bench::FormatMs(fast_ms)});
    table.AddRow({"naive", StrFormat("%.2f", naive.best.chi_square),
                  rect_str(naive.best),
                  std::to_string(naive.stats.positions_examined),
                  bench::FormatMs(naive_ms)});
    std::printf("%s", table.Render().c_str());
    std::printf("(expected: identical X2max; skip-scan evaluates a small "
                "fraction of the rectangles)\n");
  }

  // --- (3) Windowed MSS: work vs window size. ---
  {
    const int64_t n = bench::FastMode() ? 20000 : 100000;
    seq::Rng rng(83);
    seq::Sequence s = seq::GenerateNull(2, n, rng);
    auto model = seq::MultinomialModel::Uniform(2);
    seq::PrefixCounts counts(s);
    core::ChiSquareContext ctx(model);
    std::printf("\n(3) windowed MSS on a null string (n = %lld):\n",
                static_cast<long long>(n));
    io::TableWriter table({"max window w", "examined", "X2max"});
    for (int64_t w : std::vector<int64_t>{16, 64, 256, 1024, 4096, n}) {
      auto result = core::FindMssLengthBounded(counts, ctx, 1, w);
      table.AddRow({std::to_string(w),
                    std::to_string(result.stats.positions_examined),
                    StrFormat("%.2f", result.best.chi_square)});
    }
    std::printf("%s", table.Render().c_str());
    std::printf("(expected: work grows sub-linearly in w once skips "
                "activate; X2max saturates at the unconstrained value)\n");
  }
  return 0;
}
