// Figure 6: iterations for finding all substrings with X² > α₀, as α₀
// sweeps upward (paper: n = 10^5, k = 2).
//
// The trivial algorithm always needs n(n+1)/2 iterations. Ours matches that
// near α₀ = 0 and drops sharply once α₀ exceeds typical substring scores,
// then decays like 1/sqrt(α₀).

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Figure 6 — iterations vs threshold alpha0",
      "all substrings with X² > alpha0; counting mode (matches not stored)");

  // The paper uses n = 10^5; the full sweep's small-alpha0 points are
  // Θ(n²) and dominate the runtime, so the default uses n = 30000 and the
  // fast mode n = 8000. The trivial column is exact either way.
  const int64_t n = bench::FastMode() ? 8000 : 30000;
  seq::Rng rng(606);
  seq::Sequence s = seq::GenerateNull(2, n, rng);
  auto model = seq::MultinomialModel::Uniform(2);
  seq::PrefixCounts counts(s);
  core::ChiSquareContext ctx(model);

  std::vector<double> alphas = {0.0, 1.0, 2.0, 5.0, 10.0, 15.0,
                                20.0, 30.0, 40.0, 50.0};
  io::TableWriter table({"alpha0", "iter(ours)", "ln iter(ours)",
                         "iter(trivial)", "matches"});
  double trivial = static_cast<double>(core::TrivialScanPositions(n));
  for (double alpha0 : alphas) {
    core::ThresholdOptions options;
    options.max_matches = 0;  // Count only; the match set can be Θ(n²).
    auto result = core::FindAboveThreshold(counts, ctx, alpha0, options);
    double iter = static_cast<double>(result.stats.positions_examined);
    table.AddRow({StrFormat("%.0f", alpha0), StrFormat("%.0f", iter),
                  StrFormat("%.2f", std::log(iter)),
                  StrFormat("%.0f", trivial),
                  std::to_string(result.match_count)});
  }
  std::printf("n = %lld, k = 2\n%s", static_cast<long long>(n),
              table.Render().c_str());
  std::printf("(paper: sharp drop from O(n²) until alpha0 ~ X²_max, then "
              "gradual ~1/sqrt(alpha0) decay)\n");
  return 0;
}
