// Ablation A2 (DESIGN.md §3): Pearson X² vs the likelihood-ratio G²
// statistic (paper Section 1 discusses both; X² is adopted because it
// converges to χ²(k−1) from below, reducing type-I errors).
//
// This bench quantifies, per (n, k): the agreement between the two
// statistics on the MSS the X²-scan finds, and the empirical distribution
// of X²_max versus the χ² asymptotics used for p-values.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"
#include "stats/descriptive.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader("Ablation A2 — X² vs likelihood-ratio G² statistic",
                     "agreement of the two goodness-of-fit statistics on "
                     "null strings");

  int trials = bench::FastMode() ? 5 : 20;
  io::TableWriter table({"n", "k", "E[X2max]", "E[G2@MSS]", "mean |Δ|/X2",
                         "E[p-value]"});
  for (int64_t n : {2000, 10000}) {
    for (int k : {2, 4}) {
      auto model = seq::MultinomialModel::Uniform(k);
      std::vector<double> x2s, g2s, rel_deltas, pvals;
      for (int trial = 0; trial < trials; ++trial) {
        seq::Rng rng(333 + n + k * 7 + trial);
        seq::Sequence s = seq::GenerateNull(k, n, rng);
        auto mss = core::FindMss(s, model);
        auto scored =
            core::ScoreSubstring(s, model, mss->best.start, mss->best.end);
        x2s.push_back(mss->best.chi_square);
        g2s.push_back(scored->g2);
        rel_deltas.push_back(std::fabs(scored->g2 - mss->best.chi_square) /
                             mss->best.chi_square);
        pvals.push_back(scored->p_value);
      }
      table.AddRow({std::to_string(n), std::to_string(k),
                    StrFormat("%.2f", stats::Mean(x2s)),
                    StrFormat("%.2f", stats::Mean(g2s)),
                    StrFormat("%.3f", stats::Mean(rel_deltas)),
                    StrFormat("%.2e", stats::Mean(pvals))});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected: G² tracks X² within a few percent at the MSS; "
              "both statistics would select essentially the same regions)\n");
  return 0;
}
