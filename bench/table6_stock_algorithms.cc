// Table 6 (Section 7.5.2): per-algorithm comparison on the Dow Jones and
// S&P 500 strings — the X² of the period found, its dates, the price
// change, and the time taken.
//
// Paper: Trivial/Our/ARLM identical optima (Dow 25.22 / S&P 22.21); Our
// ~10-15x faster than Trivial and ~4x faster than ARLM; AGMM fastest but
// far from optimal (S&P: 13.44, "not even close to the top few").

#include <cstdio>
#include <string>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

namespace {

using namespace sigsub;

void Compare(const io::MarketSeries& series, io::TableWriter& table) {
  double p = series.EmpiricalUpRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  const seq::Sequence& s = series.updown();
  seq::PrefixCounts counts(s);
  core::ChiSquareContext ctx(model);

  auto add_row = [&](const std::string& name, const core::MssResult& result,
                     double ms) {
    table.AddRow(
        {name, series.name(), StrFormat("%.2f", result.best.chi_square),
         series.dates().date(result.best.start).ToString(),
         series.dates().date(result.best.end - 1).ToString(),
         io::FormatSignedPercent(series.PriceChangeInRange(
             result.best.start, result.best.end)),
         bench::FormatMs(ms)});
  };

  core::MssResult result;
  double ms;
  ms = bench::TimeMs([&] { result = core::NaiveFindMss(s, ctx); });
  add_row("Trivial", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMss(counts, ctx); });
  add_row("Our", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMssArlm(s, counts, ctx); });
  add_row("ARLM", result, ms);
  ms = bench::TimeMs([&] { result = core::FindMssAgmm(s, counts, ctx); });
  add_row("AGMM", result, ms);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 6 — algorithm comparison on stock return strings",
      "seeded synthetic stand-ins for Dow Jones and S&P 500");

  io::TableWriter table(
      {"Algo", "Sec.", "X2", "Start", "End", "Change", "Time"});
  Compare(io::MarketSeries::DowJones(), table);
  Compare(io::MarketSeries::SP500(), table);
  std::printf("%s", table.Render().c_str());
  std::printf("(paper shape: exact algorithms agree; Our clearly faster "
              "than Trivial/ARLM at these sizes; AGMM fastest but can land "
              "far from the optimum)\n");
  return 0;
}
