// Figure 2 + Section 8 conclusion: X²_max of a null-model string grows as
// ~2 ln n (slope ~2 when plotted against ln n). This benchmark also backs
// the cryptology application's use of 2 ln n as the randomness benchmark.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"
#include "stats/descriptive.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader("Figure 2 — X²_max vs string length (k = 2)",
                     "E[X²_max] over null strings; paper reports slope ~2 "
                     "against ln n");

  std::vector<int64_t> sizes = {128,  256,  512,   1024,  2048,
                                4096, 8192, 16384, 32768, 65536};
  int trials = 20;
  if (bench::FastMode()) {
    sizes = {128, 512, 2048, 8192};
    trials = 5;
  }

  io::TableWriter table({"n", "ln n", "E[X2max]", "stddev", "2 ln n"});
  std::vector<double> ln_n, mean_x2;
  auto model = seq::MultinomialModel::Uniform(2);
  for (int64_t n : sizes) {
    std::vector<double> values;
    for (int trial = 0; trial < trials; ++trial) {
      seq::Rng rng(42 + 977 * trial + n);
      seq::Sequence s = seq::GenerateNull(2, n, rng);
      auto mss = core::FindMss(s, model);
      values.push_back(mss->best.chi_square);
    }
    double mean = stats::Mean(values);
    table.AddRow({std::to_string(n), StrFormat("%.2f", std::log(n)),
                  StrFormat("%.2f", mean),
                  StrFormat("%.2f", stats::StdDev(values)),
                  StrFormat("%.2f", 2.0 * std::log(n))});
    ln_n.push_back(std::log(static_cast<double>(n)));
    mean_x2.push_back(mean);
  }
  std::printf("%s", table.Render().c_str());

  stats::LinearFit fit = stats::FitLine(ln_n, mean_x2);
  std::printf("linear fit E[X2max] = %.2f * ln(n) + %.2f   (r² = %.4f)\n",
              fit.slope, fit.intercept, fit.r_squared);
  std::printf("(paper: slope ~2)\n");
  return 0;
}
