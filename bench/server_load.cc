// sigsubd under load: loopback protocol round trips against the daemon.
//
// Workload: a binary corpus with planted runs served by a Server on an
// ephemeral loopback port (engine_threads = 1, so the numbers isolate
// protocol + batching overhead, not kernel parallelism). Three phases
// over the same mixed query list (mss / topt / threshold round-robin
// across records):
//
//   sync       — one client, one request in flight: send, wait, read.
//                Per-request latencies give qps, p50 and p99.
//   pipelined  — the same requests sent in windows of 32 without waiting;
//                the I/O thread admits the window and the executor runs
//                each slice as ONE Engine::ExecuteQueries batch. The
//                tracked metric is the speedup over sync: it measures the
//                admission-queue + batch-execution design, and holds on a
//                single core because it removes per-request wait states,
//                not because of parallelism.
//   concurrent — 8 threaded clients (7 query clients + 1 stream client
//                appending chunks and raising calibrated alarms) hammer
//                the daemon at once; the gate is zero malformed or error
//                replies — admission control may only shed with its
//                distinct codes, and none should fire at these depths.
//
// A final drain pass pipelines a burst from 4 clients, calls
// RequestDrain() mid-flight, and gates that every admitted request still
// got its reply (the zero-dropped-in-flight drain contract), with
// post-drain sends refused.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

engine::Corpus MakeCorpus(int records, int length) {
  seq::Rng rng(20120807);
  std::vector<std::string> texts;
  for (int i = 0; i < records; ++i) {
    seq::Sequence s = seq::GenerateNull(2, length, rng);
    std::string text = s.ToString(seq::Alphabet::Binary());
    text.replace(static_cast<size_t>(50 + 13 * (i % 40)), 30,
                 std::string(30, '1'));
    texts.push_back(std::move(text));
  }
  return engine::Corpus::FromStrings(texts, "01").value();
}

/// The mixed request list: three kernels round-robin over the records.
std::vector<std::string> MakeRequests(int count, int records) {
  std::vector<std::string> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int seq = i % records;
    switch (i % 3) {
      case 0:
        requests.push_back(StrCat("QUERY mss:seq=", seq));
        break;
      case 1:
        requests.push_back(StrCat("QUERY topt:seq=", seq, ",t=5"));
        break;
      default:
        requests.push_back(StrCat("QUERY threshold:seq=", seq, ",alpha0=20"));
        break;
    }
  }
  return requests;
}

bool IsOk(const std::string& reply) { return reply.rfind("OK ", 0) == 0; }

}  // namespace

int main() {
  bench::PrintHeader(
      "sigsubd server load (new subsystem; no paper figure)",
      "loopback protocol round trips: sync vs pipelined vs 8 concurrent "
      "clients, plus the graceful-drain zero-drop gate");
  bench::JsonBench json("server");

  const bool fast = bench::FastMode();
  const int kRecords = fast ? 8 : 32;
  const int kLength = fast ? 1000 : 2000;
  const int kRequests = fast ? 240 : 1920;
  const int kWindow = 32;

  engine::Corpus corpus = MakeCorpus(kRecords, kLength);
  server::ServerOptions options;
  options.max_queue = 1024;
  options.max_inflight_per_client = 64;
  options.drain_timeout_ms = 60000;
  server::Server daemon(corpus, options);
  if (!daemon.Start().ok()) {
    std::printf("FATAL: server failed to start\n");
    return 1;
  }
  const std::vector<std::string> requests = MakeRequests(kRequests, kRecords);

  auto connect = [&] {
    return server::LineClient::Connect("127.0.0.1", daemon.port(), 5000);
  };

  // --- sync: one request in flight, per-request latencies. -------------
  std::vector<double> latencies;
  latencies.reserve(requests.size());
  bool sync_all_ok = true;
  double sync_ms = 0.0;
  {
    auto client = connect().value();
    sync_ms = bench::TimeMs([&] {
      for (const std::string& request : requests) {
        const double ms = bench::TimeMs([&] {
          (void)client.SendLine(request);
          auto reply = client.ReadLine(10000);
          sync_all_ok = sync_all_ok && reply.ok() && IsOk(*reply);
        });
        latencies.push_back(ms);
      }
    });
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = latencies[latencies.size() / 2];
  const double p99 = latencies[latencies.size() * 99 / 100];
  const double sync_qps =
      static_cast<double>(requests.size()) / (sync_ms / 1000.0);

  // --- pipelined: windows of kWindow in flight. ------------------------
  bool pipe_all_ok = true;
  double pipe_ms = 0.0;
  {
    auto client = connect().value();
    pipe_ms = bench::TimeMs([&] {
      for (size_t base = 0; base < requests.size();
           base += static_cast<size_t>(kWindow)) {
        const size_t end =
            std::min(requests.size(), base + static_cast<size_t>(kWindow));
        for (size_t i = base; i < end; ++i) {
          (void)client.SendLine(requests[i]);
        }
        for (size_t i = base; i < end; ++i) {
          auto reply = client.ReadLine(10000);
          pipe_all_ok = pipe_all_ok && reply.ok() && IsOk(*reply);
        }
      }
    });
  }
  const double pipe_qps =
      static_cast<double>(requests.size()) / (pipe_ms / 1000.0);
  const double pipeline_speedup = sync_ms / pipe_ms;

  // --- concurrent: 7 query clients + 1 stream client. ------------------
  const int kClients = 8;
  const int kPerClient = fast ? 30 : 120;
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> replies{0};
  double concurrent_ms = bench::TimeMs([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client_or = connect();
        if (!client_or.ok()) {
          errors.fetch_add(1);
          return;
        }
        auto client = std::move(client_or).value();
        if (c == kClients - 1) {
          // The stream client: create, append null chunks, snapshot.
          const std::string name = "bench";
          (void)client.SendLine(StrCat("STREAM.CREATE ", name,
                                       " probs=0.5;0.5 alpha=0.00001"));
          auto created = client.ReadLine(10000);
          if (!created.ok() || !IsOk(*created)) {
            errors.fetch_add(1);
            return;
          }
          replies.fetch_add(1);
          seq::Rng rng(7);
          for (int i = 0; i < kPerClient; ++i) {
            std::string chunk;
            for (int j = 0; j < 256; ++j) {
              chunk += rng.NextDouble() < 0.5 ? '0' : '1';
            }
            (void)client.SendLine(StrCat("STREAM.APPEND ", name, " ", chunk));
            auto reply = client.ReadLine(10000);
            if (reply.ok() && IsOk(*reply)) {
              replies.fetch_add(1);
            } else {
              errors.fetch_add(1);
            }
          }
          return;
        }
        for (int i = 0; i < kPerClient; ++i) {
          (void)client.SendLine(
              requests[static_cast<size_t>(c * kPerClient + i) %
                       requests.size()]);
          auto reply = client.ReadLine(10000);
          if (reply.ok() && IsOk(*reply)) {
            replies.fetch_add(1);
          } else {
            errors.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  });
  const int64_t expected_replies = kClients * kPerClient + 1;
  const bool concurrent_ok =
      errors.load() == 0 && replies.load() == expected_replies;

  // --- drain: burst in flight, RequestDrain, zero drops. ---------------
  const int kDrainClients = 4;
  const int kDrainBurst = 32;
  std::vector<server::LineClient> drain_clients;
  bool drain_ok = true;
  for (int c = 0; c < kDrainClients; ++c) {
    auto client = connect();
    if (!client.ok()) {
      drain_ok = false;
      break;
    }
    drain_clients.push_back(std::move(client).value());
  }
  const int64_t admitted_before = daemon.stats().requests_admitted;
  int64_t drain_ok_replies = 0;
  int64_t drain_shed_replies = 0;
  if (drain_ok) {
    for (auto& client : drain_clients) {
      for (int i = 0; i < kDrainBurst; ++i) {
        (void)client.SendLine(requests[static_cast<size_t>(i)]);
      }
    }
    daemon.RequestDrain();  // Mid-flight, like a SIGTERM.
    // The zero-drop contract: every request written before the signal
    // gets a well-formed reply — OK if it was admitted, ERR EDRAIN if the
    // drain beat it to admission. Silent drops and connection resets are
    // the failure mode this gate exists to catch.
    for (auto& client : drain_clients) {
      for (int i = 0; i < kDrainBurst; ++i) {
        auto reply = client.ReadLine(30000);
        if (!reply.ok()) {
          drain_ok = false;
        } else if (IsOk(*reply)) {
          ++drain_ok_replies;
        } else if (reply->rfind("ERR EDRAIN ", 0) == 0) {
          ++drain_shed_replies;
        } else {
          drain_ok = false;
        }
      }
    }
  }
  daemon.Join();
  server::ServerStats stats = daemon.stats();
  // Replies must reconcile exactly with the server's own accounting.
  drain_ok = drain_ok &&
             drain_ok_replies == stats.requests_admitted - admitted_before &&
             drain_shed_replies == stats.shed_drain;

  // --- restart recovery: journal replay throughput after a crash. ------
  // Builds a journal-only state directory (what a SIGKILL leaves behind:
  // no fresh snapshot) holding kStreams live streams with appended
  // history, then times StateStore::Open replaying it into a fresh
  // StreamManager. The gate is bit-identical recovery against the
  // manager that produced the journal.
  const int kStreams = fast ? 16 : 64;
  const int kChunksPerStream = 4;
  const int kChunkSymbols = 256;
  double recovery_ms = 0.0;
  bool recovery_identical = false;
  int64_t recovered_records = 0;
  {
    char tmpl[] = "/tmp/sigsub_bench_recovery_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::printf("FATAL: mkdtemp failed\n");
      return 1;
    }
    const std::string state_dir = tmpl;
    engine::StreamManager original;
    {
      persist::RecoveryStats cold;
      auto store = persist::StateStore::Open(
          state_dir, {.fsync_policy = persist::FsyncPolicy::kNone},
          &original, nullptr, &cold);
      if (!store.ok()) {
        std::printf("FATAL: state store open failed\n");
        return 1;
      }
      core::StreamingDetector::Options detector_options;
      detector_options.max_window = 128;
      detector_options.alpha = 1e-5;
      seq::Rng rng(11);
      for (int s = 0; s < kStreams; ++s) {
        const std::string name = StrCat("s", s);
        (void)store->RecordCreate(name, {0.5, 0.5}, detector_options);
        (void)original.CreateStream(name, {0.5, 0.5}, detector_options);
        for (int c = 0; c < kChunksPerStream; ++c) {
          std::vector<uint8_t> chunk;
          chunk.reserve(kChunkSymbols);
          for (int j = 0; j < kChunkSymbols; ++j) {
            chunk.push_back(rng.NextDouble() < 0.5 ? 0 : 1);
          }
          (void)store->RecordAppend(name, chunk);
          (void)original.Append(name, chunk);
        }
      }
    }

    engine::StreamManager recovered;
    persist::RecoveryStats recovery;
    recovery_ms = bench::TimeMs([&] {
      auto store = persist::StateStore::Open(
          state_dir, {.fsync_policy = persist::FsyncPolicy::kNone},
          &recovered, nullptr, &recovery);
      if (!store.ok()) recovery_ms = -1.0;
    });
    recovered_records = recovery.journal_records_applied;

    // Bit-identical: every exported field of every stream must match.
    auto exported = original.ExportStreams();
    auto replayed = recovered.ExportStreams();
    recovery_identical =
        recovery_ms >= 0.0 && replayed.size() == exported.size();
    for (size_t i = 0; recovery_identical && i < exported.size(); ++i) {
      recovery_identical =
          replayed[i].name == exported[i].name &&
          replayed[i].probs == exported[i].probs &&
          replayed[i].state.position == exported[i].state.position &&
          replayed[i].state.counts == exported[i].state.counts &&
          replayed[i].state.recent == exported[i].state.recent &&
          replayed[i].state.in_alarm == exported[i].state.in_alarm &&
          replayed[i].state.alarms_raised == exported[i].state.alarms_raised;
    }

    ::unlink(persist::StateStore::JournalPath(state_dir).c_str());
    ::unlink(persist::StateStore::SnapshotPath(state_dir).c_str());
    ::unlink(persist::StateStore::CachePath(state_dir).c_str());
    ::rmdir(state_dir.c_str());
  }
  const double recovery_streams_per_sec =
      recovery_ms > 0.0
          ? static_cast<double>(kStreams) / (recovery_ms / 1000.0)
          : 0.0;

  io::TableWriter table({"phase", "time", "qps", "notes"});
  table.AddRow({"sync", bench::FormatMs(sync_ms),
                StrFormat("%.0f", sync_qps),
                StrFormat("p50 %.3fms p99 %.3fms", p50, p99)});
  table.AddRow({"pipelined", bench::FormatMs(pipe_ms),
                StrFormat("%.0f", pipe_qps),
                StrFormat("%.2fx over sync", pipeline_speedup)});
  table.AddRow({"8 clients", bench::FormatMs(concurrent_ms),
                StrFormat("%.0f", static_cast<double>(expected_replies) /
                                      (concurrent_ms / 1000.0)),
                StrCat(errors.load(), " errors")});
  table.AddRow({"restart recovery", bench::FormatMs(recovery_ms),
                StrFormat("%.0f streams/s", recovery_streams_per_sec),
                StrCat(kStreams, " streams, ", recovered_records,
                       " journal records")});
  std::printf("%s", table.Render().c_str());
  std::printf("\nserver counters: admitted=%lld shed_busy=%lld "
              "shed_quota=%lld shed_drain=%lld proto_errors=%lld\n",
              static_cast<long long>(stats.requests_admitted),
              static_cast<long long>(stats.shed_busy),
              static_cast<long long>(stats.shed_quota),
              static_cast<long long>(stats.shed_drain),
              static_cast<long long>(stats.protocol_errors));

  json.AddResult("server_sync", sync_ms);
  json.AddScalar("server_sync_qps", "qps", sync_qps);
  json.AddScalar("server_sync_p50", "latency_ms", p50);
  json.AddScalar("server_sync_p99", "latency_ms", p99);
  json.AddResult("server_pipelined", pipe_ms, pipeline_speedup);
  json.AddScalar("server_pipelined_qps", "qps", pipe_qps);
  json.AddResult("server_concurrent_8_clients", concurrent_ms);
  json.AddResult("server_restart_recovery", recovery_ms);
  json.AddScalar("server_recovery_streams_per_sec", "streams_per_sec",
                 recovery_streams_per_sec);

  // Gates. The pipelining floor is deliberately modest (1.2x): the win
  // comes from eliminating per-request wait states and batching slices,
  // which must survive even a one-core runner.
  json.AddGate("replies_well_formed", sync_all_ok && pipe_all_ok);
  json.AddGate("pipelining_speedup_1_2x", pipeline_speedup >= 1.2);
  json.AddGate("concurrent_zero_errors", concurrent_ok);
  json.AddGate("drain_no_drops", drain_ok);
  json.AddGate("recovery_bit_identical", recovery_identical);
  std::printf("pipelining speedup %.2fx (floor 1.2x: %s); concurrent "
              "errors %lld; drain drops: %s\n",
              pipeline_speedup, pipeline_speedup >= 1.2 ? "pass" : "FAIL",
              static_cast<long long>(errors.load()),
              drain_ok ? "none" : "LOST REPLIES");

  if (!json.Write()) return 1;
  return json.AllGatesPass() ? 0 : 1;
}
