// Streaming ingestion: chunked AppendChunk vs per-symbol paths.
//
// Workload: one long k = 4 stream (null background with planted bursts),
// monitored at max_window = 1024 under a calibrated alpha. Three ingest
// paths over the same symbols:
//
//   legacy per-symbol — a faithful replica of the pre-fused-kernel
//                       StreamingDetector::Append hot path: one
//                       vector<vector> counter row per scale, scored
//                       through the span-based ChiSquareContext::Evaluate
//                       (the reference evaluation path the fused kernels
//                       are gated against);
//   Append per-symbol — the current detector fed one symbol at a time
//                       (fused kernel, flat counter blocks);
//   AppendChunk       — the current detector fed 4096-symbol chunks
//                       (fused kernel + scale-major blocked pass +
//                       amortized ring maintenance).
//
// Before timing, the bench gates correctness: with the scalar dispatch
// pinned, the chunked ingest must be bit-identical to the legacy replica
// (same alarm count, same final per-scale X²), and chunked vs per-symbol
// Append must be bit-identical under the default dispatch. The tracked
// speedup (chunked over legacy per-symbol) lands in BENCH_streaming.json
// with the chunked throughput in Msymbols/s.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

/// Replica of the pre-fused StreamingDetector::Append (PR 2 shape):
/// O(k·log W) incremental window counters in one heap vector per scale,
/// evaluated through the span-based reference ChiSquareContext::Evaluate.
/// The alarm rule (thresholds + hysteresis) matches the current detector
/// so the two paths do identical alarm bookkeeping.
class LegacyPerSymbolDetector {
 public:
  LegacyPerSymbolDetector(const seq::MultinomialModel& model,
                          int64_t max_window,
                          std::span<const double> thresholds,
                          double rearm_fraction)
      : context_(model), max_window_(max_window) {
    for (int64_t scale = 1; scale < max_window; scale *= 2) {
      scales_.push_back(scale);
    }
    scales_.push_back(max_window);
    window_counts_.assign(scales_.size(),
                          std::vector<int64_t>(model.alphabet_size(), 0));
    recent_.assign(static_cast<size_t>(max_window) + 1, 0);
    thresholds_.assign(thresholds.begin(), thresholds.end());
    rearm_.resize(thresholds_.size());
    for (size_t si = 0; si < thresholds_.size(); ++si) {
      rearm_[si] = rearm_fraction * thresholds_[si];
    }
    in_alarm_.assign(scales_.size(), 0);
  }

  void Append(uint8_t symbol) {
    const int64_t ring = max_window_ + 1;
    recent_[static_cast<size_t>(position_ % ring)] = symbol;
    ++position_;
    for (size_t si = 0; si < scales_.size(); ++si) {
      const int64_t scale = scales_[si];
      std::vector<int64_t>& counts = window_counts_[si];
      ++counts[symbol];
      if (position_ > scale) {
        --counts[recent_[static_cast<size_t>((position_ - 1 - scale) %
                                             ring)]];
      } else if (scale > position_) {
        continue;
      }
      double x2 = context_.Evaluate(counts, scale);
      if (in_alarm_[si] && x2 < rearm_[si]) in_alarm_[si] = 0;
      if (!in_alarm_[si] && x2 > thresholds_[si]) {
        in_alarm_[si] = 1;
        ++alarms_raised_;
      }
    }
  }

  int64_t alarms_raised() const { return alarms_raised_; }

  std::vector<double> CurrentChiSquares() const {
    std::vector<double> out(scales_.size(), 0.0);
    for (size_t si = 0; si < scales_.size(); ++si) {
      out[si] = context_.Evaluate(window_counts_[si],
                                  std::min(position_, scales_[si]));
    }
    return out;
  }

 private:
  core::ChiSquareContext context_;
  int64_t max_window_;
  std::vector<int64_t> scales_;
  std::vector<double> thresholds_;
  std::vector<double> rearm_;
  std::vector<uint8_t> in_alarm_;
  std::vector<std::vector<int64_t>> window_counts_;
  std::vector<uint8_t> recent_;
  int64_t position_ = 0;
  int64_t alarms_raised_ = 0;
};

core::StreamingDetector::Options DetectorOptions(core::X2Dispatch dispatch) {
  core::StreamingDetector::Options options;
  options.max_window = 1024;
  options.alpha = 1e-6;
  options.x2_dispatch = dispatch;
  return options;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "streaming ingestion — chunked fused-kernel pass vs per-symbol paths",
      "k = 4 stream with planted bursts, max_window = 1024, alpha = 1e-6; "
      "timings land in BENCH_streaming.json");
  bench::JsonBench json("streaming");

  const int k = 4;
  const int64_t chunk = 4096;
  const int64_t n = bench::FastMode() ? 400000 : 4000000;

  // Null background with a burst every ~n/4 symbols so the alarm
  // bookkeeping (hysteresis state flips, alarm records) is exercised.
  seq::Rng rng(20260729);
  std::vector<seq::Regime> regimes;
  const std::vector<double> null_probs(4, 0.25);
  const std::vector<double> burst_probs{0.82, 0.06, 0.06, 0.06};
  for (int r = 0; r < 4; ++r) {
    regimes.push_back(seq::Regime{n / 4 - 2000, null_probs});
    regimes.push_back(seq::Regime{2000, burst_probs});
  }
  auto stream = seq::GenerateRegimes(k, regimes, rng);
  if (!stream.ok()) {
    std::printf("stream error: %s\n", stream.status().ToString().c_str());
    return 1;
  }
  std::span<const uint8_t> symbols = stream->symbols();
  auto model = seq::MultinomialModel::Uniform(k);
  std::printf("stream: %lld symbols, chunk = %lld\n\n",
              static_cast<long long>(symbols.size()),
              static_cast<long long>(chunk));

  auto ingest_chunked = [&](core::StreamingDetector& detector) {
    for (size_t offset = 0; offset < symbols.size();
         offset += static_cast<size_t>(chunk)) {
      size_t take = std::min(static_cast<size_t>(chunk),
                             symbols.size() - offset);
      detector.AppendChunk(symbols.subspan(offset, take));
    }
  };

  // ------------------------------------------------------------------
  // Correctness gates before any timing.
  // (1) Per-symbol Append (default dispatch = the scalar fixed-k fused
  //     kernel) vs the legacy replica: the fused scalar kernel is
  //     bit-identical to ChiSquareContext::Evaluate, so alarm counts and
  //     final per-scale X² must match exactly.
  auto append_detector =
      core::StreamingDetector::Make(model,
                                    DetectorOptions(core::X2Dispatch::kAuto))
          .value();
  LegacyPerSymbolDetector legacy_check(model, 1024,
                                       append_detector.scale_thresholds(),
                                       0.5);
  for (size_t i = 0; i < symbols.size(); ++i) {
    append_detector.Append(symbols[i]);
    legacy_check.Append(symbols[i]);
  }
  bool legacy_identical =
      append_detector.alarms_raised() == legacy_check.alarms_raised() &&
      append_detector.CurrentChiSquares() == legacy_check.CurrentChiSquares();
  std::printf("Append bit-identical to legacy per-symbol: %s (%lld alarms)\n",
              legacy_identical ? "yes" : "NO — BUG",
              static_cast<long long>(append_detector.alarms_raised()));
  json.AddGate("append_bit_identical_to_legacy", legacy_identical);

  // (2) Chunked vs per-symbol Append: identical alarm totals, and the
  //     counter state (hence CurrentChiSquares) bit-identical — the
  //     sliding running sum only changes the last bits of the per-
  //     position X² values, never the counters.
  auto chunk_detector =
      core::StreamingDetector::Make(model,
                                    DetectorOptions(core::X2Dispatch::kAuto))
          .value();
  ingest_chunked(chunk_detector);
  bool chunk_identical =
      chunk_detector.alarms_raised() == append_detector.alarms_raised() &&
      chunk_detector.CurrentChiSquares() ==
          append_detector.CurrentChiSquares();
  std::printf("chunked matches per-symbol Append (alarms + final state): "
              "%s\n\n",
              chunk_identical ? "yes" : "NO — BUG");
  json.AddGate("chunked_matches_append", chunk_identical);
  if (!legacy_identical || !chunk_identical) {
    json.Write();
    return 1;
  }

  // ------------------------------------------------------------------
  // Timings: best of three full ingests per path (fresh detector each
  // repetition — the detector is stateful), which keeps the tracked
  // speedup stable on noisy shared/single-core hosts.
  const int kReps = 3;
  auto best_of = [&](auto make_run) {
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      double ms = make_run();
      if (rep == 0 || ms < best) best = ms;
    }
    return best;
  };

  double legacy_ms = best_of([&] {
    LegacyPerSymbolDetector legacy_timed(model, 1024,
                                         append_detector.scale_thresholds(),
                                         0.5);
    return bench::TimeMs([&] {
      for (size_t i = 0; i < symbols.size(); ++i)
        legacy_timed.Append(symbols[i]);
    });
  });

  double append_ms = best_of([&] {
    auto append_timed =
        core::StreamingDetector::Make(model,
                                      DetectorOptions(core::X2Dispatch::kAuto))
            .value();
    return bench::TimeMs([&] {
      for (size_t i = 0; i < symbols.size(); ++i)
        append_timed.Append(symbols[i]);
    });
  });

  double chunk_ms = best_of([&] {
    auto chunk_timed =
        core::StreamingDetector::Make(model,
                                      DetectorOptions(core::X2Dispatch::kAuto))
            .value();
    return bench::TimeMs([&] { ingest_chunked(chunk_timed); });
  });

  const double msym = static_cast<double>(symbols.size()) / 1e6;
  io::TableWriter table({"path", "time", "Msym/s", "speedup"});
  auto add = [&](const std::string& path, double ms) {
    table.AddRow({path, bench::FormatMs(ms),
                  StrFormat("%.1f", msym / (ms / 1000.0)),
                  StrFormat("%.2fx", legacy_ms / ms)});
  };
  add("legacy per-symbol (span Evaluate)", legacy_ms);
  add("Append per-symbol (fused kernel)", append_ms);
  add(StrCat("AppendChunk(", chunk, ")"), chunk_ms);
  std::printf("%s", table.Render().c_str());

  json.AddResult("streaming_legacy_per_symbol", legacy_ms);
  json.AddResult("streaming_append_per_symbol", append_ms,
                 legacy_ms / append_ms);
  json.AddResult("streaming_chunked", chunk_ms, legacy_ms / chunk_ms);
  json.AddScalar("streaming_chunked_throughput", "msymbols_per_sec",
                 msym / (chunk_ms / 1000.0));

  // The tracked floor: chunked ingest must hold at least 2x over the
  // per-symbol legacy path (tools/bench_baseline.json tracks the full
  // measured speedup with the usual 15% tolerance).
  bool speedup_ok = legacy_ms / chunk_ms >= 2.0;
  std::printf("\nchunked speedup over legacy per-symbol: %.2fx (floor 2x: "
              "%s)\n",
              legacy_ms / chunk_ms, speedup_ok ? "pass" : "FAIL");
  json.AddGate("chunked_speedup_2x_over_legacy", speedup_ok);

  if (!json.Write()) return 1;
  return json.AllGatesPass() ? 0 : 1;
}
