// All-substrings suffix scan bench (ROADMAP item 2) — three questions,
// mirroring how x2_kernel gated the fused-kernel change:
//
//   1. Identity gate (fatal): SuffixScan::Scan / ScanMarkov must report
//      class sets BIT-identical to the brute-force references
//      (NaiveAllSubstringsScan*) on the gating records — every reported
//      substring's representative, count, X², and p-value, across
//      alphabets, uniform/skewed/Markov nulls, and both the maximal-only
//      and bounded enumerate-everything contracts.
//   2. Memory gate (fatal): mining a >= 100 MB record through the mapped
//      suffix index must peak below HALF the resident set of the
//      interval-scan per-position layout (a PrefixCounts for the same
//      record: 8·k bytes per position). Each side runs in a forked child
//      so getrusage(RUSAGE_SELF).ru_maxrss is that path's own high water,
//      not an accumulation over the whole bench.
//   3. Throughput: build + scan Msymbols/s on the big record. Timings and
//      the memory_reduction metric land in BENCH_suffix_scan.json.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/harness.h"
#include "core/suffix_scan.h"
#include "io/mmap_corpus.h"
#include "io/table_writer.h"
#include "seq/prefix_counts.h"
#include "sigsub.h"

using namespace sigsub;

namespace {

constexpr char kCorpusPath[] = "BENCH_suffix_scan.corpus.tmp";
constexpr char kAlphabet[] = "0123";
constexpr int kBigK = 4;

seq::Sequence MakeString(int k, int64_t n) {
  seq::Rng rng(20120731 + k + n);
  return seq::GenerateNull(k, n, rng);
}

seq::MultinomialModel MakeSkewedModel(int k) {
  std::vector<double> probs(static_cast<size_t>(k));
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    probs[static_cast<size_t>(c)] = 1.0 + 0.37 * c;
    total += probs[static_cast<size_t>(c)];
  }
  for (double& p : probs) p /= total;
  auto model = seq::MultinomialModel::Make(std::move(probs));
  if (!model.ok()) std::abort();
  return std::move(model).value();
}

/// Strict equality between the suffix path and a reference: both sides
/// promise the same deterministic total order, the same smallest-index
/// representative, and scoring through the same kernel — so every field
/// must match bit for bit, not approximately.
bool SameResults(const core::SuffixScanResult& a,
                 const core::SuffixScanResult& b) {
  if (a.match_count != b.match_count) return false;
  if (a.classes.size() != b.classes.size()) return false;
  for (size_t i = 0; i < a.classes.size(); ++i) {
    const core::SubstringClass& x = a.classes[i];
    const core::SubstringClass& y = b.classes[i];
    if (x.substring.start != y.substring.start ||
        x.substring.end != y.substring.end ||
        x.substring.chi_square != y.substring.chi_square ||
        x.count != y.count || x.p_value != y.p_value) {
      return false;
    }
  }
  return true;
}

/// Gate 1: suffix path == brute force on every contract that matters.
bool RunIdentityGate() {
  // The brute force holds every distinct substring as a map key — O(n²)
  // string bytes — so the gating record stays modest by design.
  const int64_t n = bench::FastMode() ? 512 : 1024;
  std::vector<core::SuffixScanOptions> contracts;
  {
    core::SuffixScanOptions maximal;  // The default reporting contract.
    maximal.top_n = 0;
    maximal.min_count = 2;
    contracts.push_back(maximal);
    core::SuffixScanOptions bounded;  // Enumerate-everything, capped.
    bounded.top_n = 0;
    bounded.maximal_only = false;
    bounded.max_length = 6;
    contracts.push_back(bounded);
    core::SuffixScanOptions cut;  // Top-N tie-break determinism.
    cut.top_n = 25;
    cut.min_length = 2;
    cut.min_count = 3;
    contracts.push_back(cut);
  }

  int64_t mismatches = 0;
  for (int k : {2, 4}) {
    seq::Sequence s = MakeString(k, n);
    auto scan = core::SuffixScan::Build(s.symbols(), k);
    if (!scan.ok()) std::abort();
    for (bool skewed : {false, true}) {
      core::ChiSquareContext ctx(skewed ? MakeSkewedModel(k)
                                        : seq::MultinomialModel::Uniform(k));
      for (const core::SuffixScanOptions& options : contracts) {
        auto fast = scan.value().Scan(ctx, options);
        auto slow = core::NaiveAllSubstringsScan(s, ctx, options);
        if (!fast.ok() || !slow.ok() ||
            !SameResults(fast.value(), slow.value())) {
          ++mismatches;
        }
      }
    }
    auto markov = core::MarkovChiSquare::Make(seq::MarkovModel::PaperFamily(k));
    if (!markov.ok()) std::abort();
    for (const core::SuffixScanOptions& options : contracts) {
      auto fast = scan.value().ScanMarkov(markov.value(), options);
      auto slow = core::NaiveAllSubstringsScanMarkov(s, markov.value(), options);
      if (!fast.ok() || !slow.ok() ||
          !SameResults(fast.value(), slow.value())) {
        ++mismatches;
      }
    }
  }
  std::printf("identity gate (suffix vs brute force, %d contracts): %s\n",
              static_cast<int>(3 * (2 + 1) * 2),
              mismatches == 0 ? "bit-identical" : "MISMATCH — BUG");
  return mismatches == 0;
}

/// Writes an n-symbol uniform random record as text ('0'..'3') so both
/// memory children and the throughput pass read the identical bytes from
/// the page cache. Chunked so the writer itself stays small.
bool WriteBigRecord(int64_t n) {
  std::FILE* file = std::fopen(kCorpusPath, "wb");
  if (file == nullptr) return false;
  seq::Rng rng(987654321);
  std::vector<char> chunk(1 << 20);
  int64_t written = 0;
  while (written < n) {
    int64_t take = std::min<int64_t>(static_cast<int64_t>(chunk.size()),
                                     n - written);
    for (int64_t i = 0; i < take; ++i) {
      chunk[static_cast<size_t>(i)] =
          kAlphabet[rng.NextBounded(static_cast<uint64_t>(kBigK))];
    }
    if (std::fwrite(chunk.data(), 1, static_cast<size_t>(take), file) !=
        static_cast<size_t>(take)) {
      std::fclose(file);
      return false;
    }
    written += take;
  }
  std::fclose(file);
  return true;
}

/// Runs `work` in a forked child and returns the child's own peak RSS in
/// bytes (-1 on any failure). The sink returned by `work` rides back over
/// the pipe so the measured allocations cannot be optimized away.
int64_t ChildPeakRssBytes(const std::function<int64_t()>& work) {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    close(fds[0]);
    int64_t sink = work();
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    int64_t payload[2] = {usage.ru_maxrss * 1024, sink};  // KB -> bytes.
    ssize_t unused = write(fds[1], payload, sizeof(payload));
    (void)unused;
    _exit(0);
  }
  close(fds[1]);
  int64_t payload[2] = {-1, 0};
  ssize_t got = read(fds[0], payload, sizeof(payload));
  close(fds[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid || got != sizeof(payload) ||
      !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return -1;
  }
  return payload[0];
}

core::SuffixScanOptions BigRecordOptions() {
  core::SuffixScanOptions options;
  options.top_n = 10;
  options.min_length = 2;
  options.min_count = 2;
  return options;
}

/// The suffix path end to end, the way the CLI --mmap path runs it: map
/// the file, build SA+LCP over the raw bytes, scan. Returns a sink.
int64_t SuffixChild() {
  auto mapped = io::MappedFile::Open(kCorpusPath);
  if (!mapped.ok()) return -1;
  mapped.value().AdviseSequential();
  auto decode = io::MakeDecodeTable(kAlphabet);
  auto scan =
      core::SuffixScan::BuildMapped(mapped.value().bytes(), decode, kBigK);
  if (!scan.ok()) return -1;
  core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(kBigK));
  auto result = scan.value().Scan(ctx, BigRecordOptions());
  if (!result.ok()) return -1;
  return result.value().match_count +
         static_cast<int64_t>(result.value().classes.size());
}

/// The interval-scan per-position layout for the same record: a full
/// PrefixCounts ((n+1)·k·8 bytes), built by the chunk-streamed loader so
/// no decoded copy inflates the number — this is purely what the layout
/// itself costs, before any scanning.
int64_t PositionLayoutChild() {
  auto mapped = io::MappedFile::Open(kCorpusPath);
  if (!mapped.ok()) return -1;
  mapped.value().AdviseSequential();
  auto decode = io::MakeDecodeTable(kAlphabet);
  auto counts =
      seq::PrefixCounts::FromBytes(mapped.value().bytes(), decode, kBigK);
  if (!counts.ok()) return -1;
  int64_t n = counts.value().sequence_size();
  int64_t sink = 0;
  for (int c = 0; c < kBigK; ++c) sink += counts.value().PrefixCount(c, n);
  return sink;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "all-substrings suffix scan — identity gates, memory footprint, "
      "throughput",
      "SuffixScan (suffix_scan.h) vs NaiveAllSubstringsScan and vs the "
      "per-position PrefixCounts layout; results land in "
      "BENCH_suffix_scan.json");
  bench::JsonBench json("suffix_scan");
  io::TableWriter table({"bench", "value", "note"});

  // The big record: >= 100 MB at full scale (the paper's corpora fit in
  // RAM only because they never materialize the per-position layout at
  // this size — which is exactly the claim the gate checks). The memory
  // children fork FIRST, before the identity gate's brute-force table can
  // leave freed-but-unreturned heap pages in the parent — forked children
  // inherit the parent's resident set, and a bloated inheritance would
  // drown both measurements.
  const int64_t big_n = bench::FastMode() ? (int64_t{1} << 22)
                                          : int64_t{100} * 1000 * 1000;
  if (!WriteBigRecord(big_n)) {
    std::printf("cannot write %s\n", kCorpusPath);
    return 1;
  }
  std::printf("big record: %lld symbols, k=%d (%s)\n",
              static_cast<long long>(big_n), kBigK, kCorpusPath);

  // A forked child starts with the parent's resident pages already counted
  // in its ru_maxrss (COW shares are resident), so a no-op child measures
  // that inherited baseline; subtracting it leaves each path's own
  // allocations. Matters mostly for SIGSUB_BENCH_FAST, where the binary's
  // ~tens of MB would otherwise swamp a small record's footprint.
  const int64_t base_rss = ChildPeakRssBytes([]() -> int64_t { return 0; });
  const int64_t suffix_gross = ChildPeakRssBytes(SuffixChild);
  const int64_t layout_gross = ChildPeakRssBytes(PositionLayoutChild);
  const int64_t layout_bytes = (big_n + 1) * kBigK * 8;
  bool memory_ok = false;
  if (base_rss <= 0 || suffix_gross <= base_rss ||
      layout_gross <= base_rss) {
    std::printf("memory gate: child measurement FAILED\n");
  } else {
    const int64_t suffix_rss = suffix_gross - base_rss;
    const int64_t layout_rss = layout_gross - base_rss;
    double reduction = static_cast<double>(layout_rss) /
                       static_cast<double>(suffix_rss);
    memory_ok = suffix_rss * 2 < layout_rss;
    std::printf(
        "peak RSS (net of %.1f MB process baseline): suffix path %.1f MB, "
        "per-position layout %.1f MB (analytic %.1f MB) — %.2fx reduction, "
        "gate (< 0.5x): %s\n",
        base_rss / 1e6, suffix_rss / 1e6, layout_rss / 1e6,
        layout_bytes / 1e6, reduction, memory_ok ? "pass" : "FAIL");
    table.AddRow({"suffix_peak_rss", StrFormat("%.1f MB", suffix_rss / 1e6),
                  "SA+LCP+mapped record"});
    table.AddRow({"layout_peak_rss", StrFormat("%.1f MB", layout_rss / 1e6),
                  "PrefixCounts (n+1)*k*8"});
    json.AddScalar("suffix_peak_rss", "bytes",
                   static_cast<double>(suffix_rss));
    json.AddScalar("layout_peak_rss", "bytes",
                   static_cast<double>(layout_rss));
    json.AddScalar("memory_footprint", "memory_reduction", reduction);
  }
  json.AddGate("peak_rss_below_half_position_layout", memory_ok);

  // Throughput: the mapped build+scan, end to end, in-process.
  {
    auto mapped = io::MappedFile::Open(kCorpusPath);
    if (!mapped.ok()) {
      std::printf("cannot map %s\n", kCorpusPath);
      return 1;
    }
    mapped.value().AdviseSequential();
    auto decode = io::MakeDecodeTable(kAlphabet);
    core::ChiSquareContext ctx(seq::MultinomialModel::Uniform(kBigK));
    int64_t classes = 0;
    double build_ms = 0.0;
    double total_ms = bench::TimeMs([&] {
      Result<core::SuffixScan> scan{Status::Internal("unset")};
      build_ms = bench::TimeMs([&] {
        scan = core::SuffixScan::BuildMapped(mapped.value().bytes(), decode,
                                             kBigK);
      });
      if (!scan.ok()) std::abort();
      auto result = scan.value().Scan(ctx, BigRecordOptions());
      if (!result.ok()) std::abort();
      classes = result.value().stats.classes_enumerated;
    });
    double msym_per_sec = static_cast<double>(big_n) / (total_ms * 1000.0);
    std::printf(
        "throughput: build %s + scan -> total %s, %.2f Msym/s "
        "(%lld classes)\n",
        bench::FormatMs(build_ms).c_str(), bench::FormatMs(total_ms).c_str(),
        msym_per_sec, static_cast<long long>(classes));
    table.AddRow({"build_index", bench::FormatMs(build_ms), "SA-IS + Kasai"});
    table.AddRow({"build_plus_scan", bench::FormatMs(total_ms),
                  StrFormat("%.2f Msym/s", msym_per_sec)});
    json.AddResult("suffix_build_index", build_ms);
    json.AddResult("suffix_build_plus_scan", total_ms);
    json.AddScalar("throughput", "msym_per_sec", msym_per_sec);
  }
  std::remove(kCorpusPath);

  const bool identity_ok = RunIdentityGate();
  json.AddGate("suffix_vs_naive_bit_identical", identity_ok);

  std::printf("\n%s", table.Render().c_str());
  if (!json.Write()) return 1;
  if (!json.AllGatesPass()) {
    std::printf("GATE FAILED (bit-identity vs brute force, or suffix peak "
                "RSS not < 0.5x the per-position layout)\n");
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
