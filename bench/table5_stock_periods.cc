// Table 5 (stock application, Section 7.5.2): significant good and bad
// periods for the three securities — dates and price change.
//
// Data note (DESIGN.md §2.2): the paper used daily closes from
// finance.yahoo.com binarized to up/down; this repository substitutes
// seeded regime-switching simulators with the paper's series lengths and
// planted episodes shaped like the ones it reports. The "Change" column is
// reconstructed from the constant-daily-move price model.

#include <cstdio>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

namespace {

using namespace sigsub;

void Analyze(const io::MarketSeries& series, io::TableWriter& table) {
  double p = series.EmpiricalUpRate();
  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  core::TopDisjointOptions options;
  options.t = 4;
  options.min_length = 10;
  options.min_chi_square = stats::ChiSquareThresholdForPValue(1e-3, 2);
  auto periods = core::FindTopDisjoint(series.updown(), model, options);
  if (!periods.ok()) {
    std::fprintf(stderr, "%s\n", periods.status().ToString().c_str());
    return;
  }
  for (const auto& period : *periods) {
    int64_t ups = series.UpDaysInRange(period.start, period.end);
    bool good =
        static_cast<double>(ups) / static_cast<double>(period.length()) > p;
    table.AddRow({good ? "Good" : "Bad", series.name(),
                  series.dates().date(period.start).ToString(),
                  series.dates().date(period.end - 1).ToString(),
                  StrFormat("%.2f", period.chi_square),
                  io::FormatSignedPercent(
                      series.PriceChangeInRange(period.start, period.end))});
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 5 — significant periods for the securities",
      "seeded synthetic stand-ins for Dow Jones / S&P 500 / IBM");

  io::TableWriter table(
      {"Periods", "Security", "Start", "End", "X2", "Change"});
  Analyze(io::MarketSeries::DowJones(), table);
  Analyze(io::MarketSeries::SP500(), table);
  Analyze(io::MarketSeries::Ibm(), table);
  std::printf("%s", table.Render().c_str());

  std::printf("\nplanted ground truth:\n");
  for (const auto& series :
       {io::MarketSeries::DowJones(), io::MarketSeries::SP500(),
        io::MarketSeries::Ibm()}) {
    for (const auto& regime : series.config().regimes) {
      std::printf("  %-9s %-26s days=[%lld, +%lld) up_prob=%.3f\n",
                  series.name().c_str(), regime.label.c_str(),
                  static_cast<long long>(regime.start_day),
                  static_cast<long long>(regime.num_days), regime.up_prob);
    }
  }
  std::printf("(paper shape: depression/crash and bull-run eras surface as "
              "the top disjoint periods per security)\n");
  return 0;
}
