// Table 3 (sports application, Section 7.5.1): the five most significant
// dominance patches of the rivalry series — dates, X², games, wins, win%.
//
// Data note (DESIGN.md §2.2): the paper mined the real Yankees–Red Sox
// results from baseball-reference.com; this repository substitutes a seeded
// simulator that plants eras mirroring the paper's Table 3. The planted
// ground truth is printed alongside so recovery can be verified.

#include <cstdio>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Table 3 — top-5 significant patches, team A vs team B",
      "seeded synthetic rivalry series (stand-in for Yankees vs Red Sox)");

  io::RivalrySeries series = io::RivalrySeries::Default();
  double p = series.EmpiricalWinRate();
  std::printf("series: %lld games, empirical win rate %.2f%% (paper: "
              "54.27%%)\n\n",
              static_cast<long long>(series.outcomes().size()), 100.0 * p);

  std::printf("planted ground truth:\n");
  {
    io::TableWriter truth({"Era", "Games", "WinProb"});
    for (const auto& era : series.config().eras) {
      truth.AddRow({era.label, std::to_string(era.num_games),
                    StrFormat("%.3f", era.win_prob)});
    }
    std::printf("%s\n", truth.Render().c_str());
  }

  auto model = seq::MultinomialModel::Make({1.0 - p, p}).value();
  core::TopDisjointOptions options;
  options.t = 5;
  options.min_length = 10;
  auto patches = core::FindTopDisjoint(series.outcomes(), model, options);
  if (!patches.ok()) {
    std::fprintf(stderr, "%s\n", patches.status().ToString().c_str());
    return 1;
  }

  io::TableWriter table(
      {"Start", "End", "X2 val", "Games", "Wins", "Win%"});
  for (const auto& patch : *patches) {
    int64_t wins = series.WinsInRange(patch.start, patch.end);
    table.AddRow({series.dates().date(patch.start).ToString(),
                  series.dates().date(patch.end - 1).ToString(),
                  StrFormat("%.2f", patch.chi_square),
                  std::to_string(patch.length()), std::to_string(wins),
                  io::FormatPercent(static_cast<double>(wins) /
                                    static_cast<double>(patch.length()))});
  }
  std::printf("top-5 recovered patches:\n%s", table.Render().c_str());
  std::printf("(paper shape: a ~200-game 1924-1933 era at ~76%% dominates; "
              "short Red-Sox-dominant patches follow)\n");
  return 0;
}
