// Table 1: comparison with existing techniques on synthetic (null-model)
// binary strings — average X²_max found and average wall-clock time for
// Trivial, Our algorithm, ARLM, AGMM (plus the blocked-scan baseline of
// reference [2] for completeness).
//
// Paper (2.3 GHz dual-core, C): n = 20000 -> Trivial 8.54s / Our 0.5s /
// ARLM 1.9s / AGMM 0.01s, all but AGMM reporting identical X²_max.

#include <cstdio>
#include <string>
#include <vector>

#include "common/harness.h"
#include "io/table_writer.h"
#include "sigsub.h"
#include "stats/descriptive.h"

int main() {
  using namespace sigsub;
  bench::PrintHeader(
      "Table 1 — comparison with existing techniques (synthetic)",
      "null binary strings; averages over several seeds");

  std::vector<int64_t> sizes = {20000, 80000};
  int trials = 3;
  if (bench::FastMode()) {
    sizes = {5000, 20000};
    trials = 2;
  }
  auto model = seq::MultinomialModel::Uniform(2);

  io::TableWriter table({"Algo", "String Size", "Avg X2max", "Avg Time"});
  for (int64_t n : sizes) {
    struct Row {
      std::string name;
      std::vector<double> x2s;
      std::vector<double> times_ms;
    };
    std::vector<Row> rows = {{"Trivial", {}, {}},
                             {"Our", {}, {}},
                             {"Blocked", {}, {}},
                             {"ARLM", {}, {}},
                             {"AGMM", {}, {}}};
    for (int trial = 0; trial < trials; ++trial) {
      seq::Rng rng(8080 + n + 7 * trial);
      seq::Sequence s = seq::GenerateNull(2, n, rng);
      seq::PrefixCounts counts(s);
      core::ChiSquareContext ctx(model);

      core::MssResult result;
      rows[0].times_ms.push_back(
          bench::TimeMs([&] { result = core::NaiveFindMss(s, ctx); }));
      rows[0].x2s.push_back(result.best.chi_square);

      rows[1].times_ms.push_back(
          bench::TimeMs([&] { result = core::FindMss(counts, ctx); }));
      rows[1].x2s.push_back(result.best.chi_square);

      rows[2].times_ms.push_back(bench::TimeMs(
          [&] { result = core::FindMssBlocked(s, counts, ctx); }));
      rows[2].x2s.push_back(result.best.chi_square);

      rows[3].times_ms.push_back(bench::TimeMs(
          [&] { result = core::FindMssArlm(s, counts, ctx); }));
      rows[3].x2s.push_back(result.best.chi_square);

      rows[4].times_ms.push_back(bench::TimeMs(
          [&] { result = core::FindMssAgmm(s, counts, ctx); }));
      rows[4].x2s.push_back(result.best.chi_square);
    }
    for (const Row& row : rows) {
      table.AddRow({row.name, std::to_string(n),
                    StrFormat("%.2f", stats::Mean(row.x2s)),
                    bench::FormatMs(stats::Mean(row.times_ms))});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: Trivial/Our/Blocked identical X2max; ARLM "
              "equal or marginally lower; AGMM clearly lower; Our orders of "
              "magnitude faster than Trivial; AGMM fastest)\n");
  return 0;
}
