// Random-number-generator audit (paper Section 7.4): detect hidden
// correlation between adjacent symbols of a bit stream.
//
// An ideal binary RNG emits the same symbol again with probability exactly
// 0.5. A defective one repeats with probability p > 0.5. The audit compares
// the stream's X²_max against the ~2 ln n benchmark the paper derives for
// truly random strings — a defective generator's X²_max blows past it, and
// the MSS pinpoints *where* the correlated stretch lives even if only a
// portion of the stream is biased.

#include <cmath>
#include <cstdio>

#include "sigsub.h"

namespace {

void Audit(const char* label, const sigsub::seq::Sequence& stream) {
  using namespace sigsub;
  auto model = seq::MultinomialModel::Uniform(2);
  auto mss = core::FindMss(stream, model);
  if (!mss.ok()) {
    std::fprintf(stderr, "%s\n", mss.status().ToString().c_str());
    return;
  }
  double benchmark = 2.0 * std::log(static_cast<double>(stream.size()));
  // Verdict bands against the paper's 2 ln n benchmark for random strings:
  // a single stream at 1.35x is already unusual; 2x is a blatant defect.
  const char* verdict = "looks random";
  if (mss->best.chi_square > 2.0 * benchmark) {
    verdict = "SUSPICIOUS";
  } else if (mss->best.chi_square > 1.35 * benchmark) {
    verdict = "elevated";
  }
  std::printf("%-28s X²max = %8.2f  benchmark(2 ln n) = %6.2f  -> %s\n",
              label, mss->best.chi_square, benchmark, verdict);
  if (mss->best.chi_square > 1.35 * benchmark) {
    std::printf("%-28s worst window: [%lld, %lld)\n", "",
                static_cast<long long>(mss->best.start),
                static_cast<long long>(mss->best.end));
  }
}

}  // namespace

int main() {
  using namespace sigsub;
  const int64_t n = 50000;

  // A healthy generator.
  seq::Rng good_rng(1);
  Audit("healthy RNG", seq::GenerateBiasedBinary(0.5, n, good_rng));

  // Fully defective generators with increasing same-symbol bias
  // (the paper's Table 2 sweep).
  for (double p : {0.55, 0.60, 0.80}) {
    seq::Rng rng(static_cast<uint64_t>(p * 1000));
    char label[64];
    std::snprintf(label, sizeof(label), "defective RNG (p=%.2f)", p);
    Audit(label, seq::GenerateBiasedBinary(p, n, rng));
  }

  // The hard case the paper highlights: only a SUBSTRING of the stream is
  // biased (the generator degrades temporarily). Whole-stream tests dilute
  // the signal; the MSS finds the bad stretch directly.
  seq::Rng rng(99);
  seq::Sequence patchy(2);
  patchy.Reserve(n);
  {
    seq::Sequence a = seq::GenerateBiasedBinary(0.5, 30000, rng);
    seq::Sequence b = seq::GenerateBiasedBinary(0.9, 5000, rng);
    seq::Sequence c = seq::GenerateBiasedBinary(0.5, 15000, rng);
    for (int64_t i = 0; i < a.size(); ++i) patchy.Append(a[i]);
    for (int64_t i = 0; i < b.size(); ++i) patchy.Append(b[i]);
    for (int64_t i = 0; i < c.size(); ++i) patchy.Append(c[i]);
  }
  Audit("patchy RNG (bias in middle)", patchy);
  std::printf("(bias planted at [30000, 35000))\n");
  return 0;
}
