// Quickstart: generate a string with a hidden anomaly, then mine it
// through the library's query facade — a typed api::QuerySpec executed on
// the engine, plus the same query written in its serialized text form.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sigsub.h"

int main() {
  using namespace sigsub;

  // 1. A binary string: fair-coin background with a biased stretch planted
  //    in the middle (positions 4000-4300 are 80% ones).
  seq::Rng rng(/*seed=*/42);
  auto sequence = seq::GenerateRegimes(
      /*alphabet_size=*/2,
      {{4000, {0.5, 0.5}}, {300, {0.2, 0.8}}, {4000, {0.5, 0.5}}}, rng);
  if (!sequence.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sequence.status().ToString().c_str());
    return 1;
  }

  // 2. Wrap it as a one-record corpus — the unit the engine mines over.
  auto corpus = engine::Corpus::FromStrings(
      {sequence->ToString(seq::Alphabet::Binary())}, "01");
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  engine::Engine engine;

  // 3. Problem 1 — the most significant substring, as a typed query.
  //    (ModelSpec::Uniform() is the default null model; an explicit
  //    multinomial would be api::ModelSpec::Multinomial({0.5, 0.5}).)
  api::QuerySpec mss;
  mss.request = api::MssQuery{};

  // 4. Problem 2 — the top 3 substrings, written in the serialized form
  //    the CLI's `query` command accepts. ParseQuery and the typed
  //    structs build the exact same spec.
  auto top3 = api::ParseQuery("topt:seq=0,t=3,model=uniform");
  if (!top3.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 top3.status().ToString().c_str());
    return 1;
  }

  auto results = engine.ExecuteQueries(*corpus, {mss, *top3});
  if (!results.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  const core::Substring& best = (*results)[0].best();
  std::printf("MSS: [%lld, %lld)  length=%lld  X² = %.2f\n",
              static_cast<long long>(best.start),
              static_cast<long long>(best.end),
              static_cast<long long>(best.length()), best.chi_square);

  // 5. Its p-value under the χ²(k−1) asymptotics.
  std::printf("p-value = %.3g\n", core::SubstringPValue(best.chi_square, 2));

  // 6. How much work the skip-based scan saved versus the trivial O(n²)
  //    algorithm.
  long long trivial =
      static_cast<long long>(core::TrivialScanPositions(sequence->size()));
  long long examined =
      static_cast<long long>((*results)[0].stats().positions_examined);
  std::printf("examined %lld of %lld substr ending positions (%.1f%%)\n",
              examined, trivial,
              100.0 * static_cast<double>(examined) /
                  static_cast<double>(trivial));

  std::printf("top-3 substrings (query \"%s\"):\n",
              api::FormatQuery(*top3).c_str());
  for (const core::Substring& sub : (*results)[1].substrings()) {
    std::printf("  [%lld, %lld)  X² = %.2f\n",
                static_cast<long long>(sub.start),
                static_cast<long long>(sub.end), sub.chi_square);
  }
  return 0;
}
