// Quickstart: generate a string with a hidden anomaly, find the most
// significant substring (MSS), and report its significance.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sigsub.h"

int main() {
  using namespace sigsub;

  // 1. A binary string: fair-coin background with a biased stretch planted
  //    in the middle (positions 4000-4300 are 80% ones).
  seq::Rng rng(/*seed=*/42);
  auto sequence = seq::GenerateRegimes(
      /*alphabet_size=*/2,
      {{4000, {0.5, 0.5}}, {300, {0.2, 0.8}}, {4000, {0.5, 0.5}}}, rng);
  if (!sequence.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 sequence.status().ToString().c_str());
    return 1;
  }

  // 2. The null model the paper scores against: letters drawn i.i.d. from a
  //    fixed multinomial distribution (here: a fair coin).
  seq::MultinomialModel model = seq::MultinomialModel::Uniform(2);

  // 3. Problem 1 — the most significant substring.
  auto mss = core::FindMss(*sequence, model);
  if (!mss.ok()) {
    std::fprintf(stderr, "FindMss failed: %s\n",
                 mss.status().ToString().c_str());
    return 1;
  }
  std::printf("MSS: [%lld, %lld)  length=%lld  X² = %.2f\n",
              static_cast<long long>(mss->best.start),
              static_cast<long long>(mss->best.end),
              static_cast<long long>(mss->best.length()),
              mss->best.chi_square);

  // 4. Its p-value under the χ²(k−1) asymptotics.
  auto scored = core::ScoreResult(*sequence, model, *mss);
  if (scored.ok()) {
    std::printf("p-value = %.3g   (G² = %.2f)\n", scored->p_value,
                scored->g2);
  }

  // 5. How much work the skip-based scan saved versus the trivial O(n²)
  //    algorithm.
  long long trivial =
      static_cast<long long>(core::TrivialScanPositions(sequence->size()));
  std::printf("examined %lld of %lld substr ending positions (%.1f%%)\n",
              static_cast<long long>(mss->stats.positions_examined), trivial,
              100.0 * static_cast<double>(mss->stats.positions_examined) /
                  static_cast<double>(trivial));

  // 6. Problem 2 — the top 3 substrings by X².
  auto top = core::FindTopT(*sequence, model, 3);
  if (top.ok()) {
    std::printf("top-3 substrings:\n");
    for (const auto& sub : top->top) {
      std::printf("  [%lld, %lld)  X² = %.2f\n",
                  static_cast<long long>(sub.start),
                  static_cast<long long>(sub.end), sub.chi_square);
    }
  }
  return 0;
}
