// Market regime mining (paper Section 7.5.2): find the statistically
// significant bull/bear stretches of a daily up/down return series.
//
// Uses the synthetic market simulator (stand-in for the paper's Dow/S&P/IBM
// downloads; see DESIGN.md §2.2) and reports periods the way the paper's
// Table 5 does: dates, X², and price change.

#include <cstdio>

#include "common/str_util.h"
#include "sigsub.h"

namespace {

void AnalyzeSecurity(const sigsub::io::MarketSeries& series) {
  using namespace sigsub;

  double p_up = series.EmpiricalUpRate();
  auto model = seq::MultinomialModel::Make({1.0 - p_up, p_up}).value();

  core::TopDisjointOptions options;
  options.t = 4;
  options.min_length = 10;
  options.min_chi_square = stats::ChiSquareThresholdForPValue(1e-4, 2);
  auto periods = core::FindTopDisjoint(series.updown(), model, options);
  if (!periods.ok()) {
    std::fprintf(stderr, "%s\n", periods.status().ToString().c_str());
    return;
  }

  std::printf("\n%s (%lld trading days, empirical up ratio %.2f%%)\n",
              series.name().c_str(),
              static_cast<long long>(series.updown().size()),
              100.0 * p_up);
  io::TableWriter table({"Type", "Start", "End", "Days", "X2", "Change"});
  for (const auto& period : *periods) {
    double change = series.PriceChangeInRange(period.start, period.end);
    int64_t ups = series.UpDaysInRange(period.start, period.end);
    bool good = static_cast<double>(ups) / period.length() > p_up;
    table.AddRow({good ? "good" : "bad",
                  series.dates().date(period.start).ToString(),
                  series.dates().date(period.end - 1).ToString(),
                  std::to_string(period.length()),
                  StrFormat("%.2f", period.chi_square),
                  io::FormatSignedPercent(change)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  AnalyzeSecurity(sigsub::io::MarketSeries::DowJones());
  AnalyzeSecurity(sigsub::io::MarketSeries::SP500());
  AnalyzeSecurity(sigsub::io::MarketSeries::Ibm());
  return 0;
}
