// Batch mining a corpus through the query facade: build a small corpus of
// binary series, fan a heterogeneous set of api::QuerySpecs across the
// engine (including a kernel the legacy JobSpec surface never reached),
// and show the result cache absorbing a repeated batch.
//
// Build: cmake --build build --target example_batch_corpus

#include <cstdio>
#include <string>
#include <vector>

#include "sigsub.h"

using namespace sigsub;

int main() {
  // Six binary records, each with a planted run of ones.
  seq::Rng rng(7);
  std::vector<std::string> records;
  for (int i = 0; i < 6; ++i) {
    seq::Sequence s = seq::GenerateNull(2, 300, rng);
    std::string text = s.ToString(seq::Alphabet::Binary());
    text.replace(static_cast<size_t>(20 + 40 * i), 20, std::string(20, '1'));
    records.push_back(text);
  }
  auto corpus = engine::Corpus::FromStrings(records, "01");
  if (!corpus.ok()) {
    std::printf("corpus error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  engine::Engine engine({.num_threads = 2, .cache_capacity = 64});

  // Per record: the MSS, the top 3 substrings, and the best window of
  // length 8..32 (lenbound — reachable only through the query layer).
  std::vector<api::QuerySpec> queries;
  for (int64_t i = 0; i < corpus->size(); ++i) {
    api::QuerySpec mss;
    mss.sequence_index = i;
    queries.push_back(mss);
    api::QuerySpec topt;
    topt.sequence_index = i;
    topt.request = api::TopTQuery{3};
    queries.push_back(topt);
    api::QuerySpec windowed;
    windowed.sequence_index = i;
    windowed.request = api::LengthBoundedQuery{8, 32};
    queries.push_back(windowed);
  }

  auto results = engine.ExecuteQueries(*corpus, queries);
  if (!results.ok()) {
    std::printf("batch error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  for (const api::QueryResult& result : *results) {
    if (result.kind != api::QueryKind::kMss) continue;
    const core::Substring& best = result.best();
    std::printf("record %lld: MSS [%lld, %lld) X² = %.2f  p = %.3g\n",
                static_cast<long long>(result.sequence_index),
                static_cast<long long>(best.start),
                static_cast<long long>(best.end), best.chi_square,
                core::SubstringPValue(best.chi_square, 2));
  }

  // Replaying the batch hits the cache for every query — the key is the
  // canonical serialization (api::FormatQuery) of each spec, so the same
  // query re-parsed from text is the same cache entry.
  (void)engine.ExecuteQueries(*corpus, queries);
  engine::CacheStats stats = engine.cache_stats();
  std::printf("cache: %lld hits / %lld lookups\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.lookups()));
  return 0;
}
