// Batch mining a corpus with engine::Engine: build a small corpus of
// binary series, fan one MSS job and one top-t job per record across the
// engine, and show the result cache absorbing a repeated batch.
//
// Build: cmake --build build --target example_batch_corpus

#include <cstdio>
#include <string>
#include <vector>

#include "sigsub.h"

using namespace sigsub;

int main() {
  // Six binary records, each with a planted run of ones.
  seq::Rng rng(7);
  std::vector<std::string> records;
  for (int i = 0; i < 6; ++i) {
    seq::Sequence s = seq::GenerateNull(2, 300, rng);
    std::string text = s.ToString(seq::Alphabet::Binary());
    text.replace(static_cast<size_t>(20 + 40 * i), 20, std::string(20, '1'));
    records.push_back(text);
  }
  auto corpus = engine::Corpus::FromStrings(records, "01");
  if (!corpus.ok()) {
    std::printf("corpus error: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  engine::Engine engine({.num_threads = 2, .cache_capacity = 64});

  // One MSS and one top-3 job per record, uniform null model.
  std::vector<engine::JobSpec> jobs;
  for (int64_t i = 0; i < corpus->size(); ++i) {
    engine::JobSpec mss;
    mss.sequence_index = i;
    jobs.push_back(mss);
    engine::JobSpec topt;
    topt.kind = engine::JobKind::kTopT;
    topt.sequence_index = i;
    topt.params.t = 3;
    jobs.push_back(topt);
  }

  auto results = engine.ExecuteBatch(*corpus, jobs);
  if (!results.ok()) {
    std::printf("batch error: %s\n", results.status().ToString().c_str());
    return 1;
  }
  for (const engine::JobResult& result : *results) {
    if (result.kind != engine::JobKind::kMss) continue;
    std::printf("record %lld: MSS [%lld, %lld) X² = %.2f  p = %.3g\n",
                static_cast<long long>(result.sequence_index),
                static_cast<long long>(result.best.start),
                static_cast<long long>(result.best.end),
                result.best.chi_square,
                core::SubstringPValue(result.best.chi_square, 2));
  }

  // Replaying the batch hits the cache for every job.
  (void)engine.ExecuteBatch(*corpus, jobs);
  engine::CacheStats stats = engine.cache_stats();
  std::printf("cache: %lld hits / %lld lookups\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.lookups()));
  return 0;
}
