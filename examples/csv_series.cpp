// Analyze a user-supplied price series from a CSV file — the adoption path
// for running the paper's stock-return analysis (Section 7.5.2) on real
// downloaded data instead of the bundled simulators.
//
// Usage:
//   csv_series [file.csv [column]]
//
// The CSV is expected to hold one price level per row in the given column
// (default 1), with a header row. Without arguments, a demo CSV is written
// to a temp path and analyzed so the example is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/str_util.h"
#include "sigsub.h"

namespace {

using namespace sigsub;

// Writes a demo price series: a geometric random walk with a planted
// drawdown, so the detector has something to find.
std::string WriteDemoCsv() {
  std::string path = StrCat(std::getenv("TMPDIR") ? std::getenv("TMPDIR")
                                                  : "/tmp",
                            "/sigsub_demo_prices.csv");
  seq::Rng rng(20120827);  // VLDB 2012 conference date.
  std::string contents = "day,close\n";
  double price = 100.0;
  for (int day = 0; day < 4000; ++day) {
    bool in_crash = day >= 2500 && day < 2750;
    double up_prob = in_crash ? 0.30 : 0.52;
    price *= rng.NextBernoulli(up_prob) ? 1.01 : 0.99;
    contents += StrCat(day, ",", StrFormat("%.4f", price), "\n");
  }
  auto status = io::WriteTextFile(path, contents);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::printf("(no input given: wrote demo series with a crash planted at "
              "days [2500, 2750) to %s)\n\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : WriteDemoCsv();
  int column = argc > 2 ? std::atoi(argv[2]) : 1;

  auto levels = io::ReadCsvNumericColumn(path, column, /*has_header=*/true);
  if (!levels.ok()) {
    std::fprintf(stderr, "%s\n", levels.status().ToString().c_str());
    return 1;
  }
  auto updown = io::UpDownFromLevels(*levels);
  if (!updown.ok()) {
    std::fprintf(stderr, "%s\n", updown.status().ToString().c_str());
    return 1;
  }

  // Null model: the empirical up-day ratio, as the paper estimates it.
  int64_t ups = 0;
  for (int64_t i = 0; i < updown->size(); ++i) ups += (*updown)[i];
  double p_up = static_cast<double>(ups) / static_cast<double>(updown->size());
  auto model_result = seq::MultinomialModel::Make({1.0 - p_up, p_up});
  if (!model_result.ok()) {
    std::fprintf(stderr, "%s\n", model_result.status().ToString().c_str());
    return 1;
  }

  std::printf("series: %lld moves, up-ratio %.2f%%\n",
              static_cast<long long>(updown->size()), 100.0 * p_up);

  core::TopDisjointOptions options;
  options.t = 5;
  options.min_length = 10;
  options.min_chi_square = stats::ChiSquareThresholdForPValue(1e-4, 2);
  auto periods =
      core::FindTopDisjoint(*updown, model_result.value(), options);
  if (!periods.ok()) {
    std::fprintf(stderr, "%s\n", periods.status().ToString().c_str());
    return 1;
  }
  if (periods->empty()) {
    std::printf("no significant periods at p < 1e-4 — series is consistent "
                "with its own drift\n");
    return 0;
  }
  io::TableWriter table({"Rows", "X2", "p-value", "up-ratio"});
  for (const auto& period : *periods) {
    int64_t period_ups = 0;
    for (int64_t i = period.start; i < period.end; ++i) {
      period_ups += (*updown)[i];
    }
    table.AddRow(
        {StrFormat("[%lld, %lld)", static_cast<long long>(period.start),
                   static_cast<long long>(period.end)),
         StrFormat("%.2f", period.chi_square),
         StrFormat("%.3g", core::SubstringPValue(period.chi_square, 2)),
         io::FormatPercent(static_cast<double>(period_ups) /
                           static_cast<double>(period.length()))});
  }
  std::printf("significant periods (p < 1e-4, disjoint):\n%s",
              table.Render().c_str());
  return 0;
}
