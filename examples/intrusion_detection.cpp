// Intrusion detection over an event stream (paper Section 1 motivation,
// following the chi-square IDS line of Ye & Chen and Goonatilake et al.).
//
// A monitored system emits one of k event types per tick with a known
// steady-state profile. An attack window inflates the frequency of some
// event types. Problem 3 (all substrings with X² above a threshold chosen
// from a target false-positive rate) flags the attack windows.

#include <cstdio>
#include <vector>

#include "sigsub.h"

int main() {
  using namespace sigsub;

  // Steady-state event profile: {login, read, write, error, admin}.
  const std::vector<double> kProfile{0.30, 0.40, 0.20, 0.07, 0.03};
  // Attack: error and admin events surge (e.g. credential stuffing).
  const std::vector<double> kAttack{0.10, 0.15, 0.15, 0.35, 0.25};

  seq::Rng rng(7);
  auto stream = seq::GenerateRegimes(5,
                                     {{50000, kProfile},
                                      {400, kAttack},
                                      {30000, kProfile},
                                      {250, kAttack},
                                      {20000, kProfile}},
                                     rng);
  if (!stream.ok()) {
    std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
    return 1;
  }
  auto model = seq::MultinomialModel::Make(kProfile).value();

  // Threshold: Bonferroni-corrected significance over all ~n²/2 windows at
  // a 0.1% family-wise false-alarm budget.
  double n = static_cast<double>(stream->size());
  double per_window_alpha = 0.001 / (n * n / 2.0);
  double alpha0 = stats::ChiSquareThresholdForPValue(per_window_alpha, 5);
  std::printf("stream length: %.0f events, X² alarm threshold: %.1f\n", n,
              alpha0);

  core::ThresholdOptions options;
  options.max_matches = 100000;
  auto alarms = core::FindAboveThreshold(*stream, model, alpha0, options);
  if (!alarms.ok()) {
    std::fprintf(stderr, "%s\n", alarms.status().ToString().c_str());
    return 1;
  }
  std::printf("alarming windows: %lld (examined %lld of %lld candidates)\n",
              static_cast<long long>(alarms->match_count),
              static_cast<long long>(alarms->stats.positions_examined),
              static_cast<long long>(
                  core::TrivialScanPositions(stream->size())));

  // Collapse overlapping alarms into disjoint incidents for the report.
  core::TopDisjointOptions incidents;
  incidents.t = 10;
  incidents.min_length = 50;
  incidents.min_chi_square = alpha0;
  auto report = core::FindTopDisjoint(*stream, model, incidents);
  if (report.ok()) {
    std::printf("\nincident report (attacks planted at [50000, 50400) and "
                "[80400, 80650)):\n");
    for (const auto& incident : *report) {
      std::printf("  window [%6lld, %6lld)  X² = %7.1f  p = %.3g\n",
                  static_cast<long long>(incident.start),
                  static_cast<long long>(incident.end), incident.chi_square,
                  core::SubstringPValue(incident.chi_square, 5));
    }
  }
  return 0;
}
