// DNA compositional-anomaly detection (computational-biology motivation
// from the paper's introduction: over-represented regions in genomic
// sequences, e.g. GC-rich isochores or CpG islands).
//
// We synthesize a genome fragment whose background follows the genome-wide
// base composition, plant a GC-rich island, and use the MSS and top-t
// disjoint machinery to recover it.

#include <cstdio>
#include <string>

#include "sigsub.h"

int main() {
  using namespace sigsub;

  // Background composition (human-like): A/T-rich.
  const std::vector<double> kBackground{0.295, 0.205, 0.205, 0.295};
  // GC island: strongly G/C enriched.
  const std::vector<double> kIsland{0.13, 0.37, 0.37, 0.13};

  seq::Rng rng(20260610);
  auto genome = seq::GenerateRegimes(
      4,
      {{60000, kBackground}, {1500, kIsland}, {60000, kBackground}}, rng);
  if (!genome.ok()) {
    std::fprintf(stderr, "%s\n", genome.status().ToString().c_str());
    return 1;
  }

  // Score against the genome-wide null composition, as the paper scores
  // against the generative multinomial model.
  auto model_result = seq::MultinomialModel::Make(kBackground);
  if (!model_result.ok()) {
    std::fprintf(stderr, "%s\n", model_result.status().ToString().c_str());
    return 1;
  }
  const seq::MultinomialModel& model = model_result.value();

  auto mss = core::FindMss(*genome, model);
  if (!mss.ok()) {
    std::fprintf(stderr, "%s\n", mss.status().ToString().c_str());
    return 1;
  }

  auto alphabet = seq::Alphabet::FromCharacters("ACGT").value();
  std::printf("planted GC island:  [60000, 61500)\n");
  std::printf("recovered MSS:      [%lld, %lld)  X² = %.1f  p = %.3g\n",
              static_cast<long long>(mss->best.start),
              static_cast<long long>(mss->best.end), mss->best.chi_square,
              core::SubstringPValue(mss->best.chi_square, 4));

  // Base composition inside the recovered region.
  std::vector<int64_t> counts =
      genome->CountsInRange(mss->best.start, mss->best.end);
  double len = static_cast<double>(mss->best.length());
  std::printf("composition inside: ");
  for (int c = 0; c < 4; ++c) {
    std::printf("%c=%.1f%% ", alphabet.CharOf(static_cast<uint8_t>(c)),
                100.0 * static_cast<double>(counts[c]) / len);
  }
  std::printf("\n");

  // Multiple islands? Use disjoint top-t with a minimum length so single
  // bases do not qualify; report everything significant at p < 1e-6.
  core::TopDisjointOptions options;
  options.t = 5;
  options.min_length = 200;
  options.min_chi_square = stats::ChiSquareThresholdForPValue(1e-6, 4);
  auto islands = core::FindTopDisjoint(*genome, model, options);
  if (islands.ok()) {
    std::printf("\nsignificant islands (p < 1e-6, length >= 200):\n");
    for (const auto& island : *islands) {
      std::printf("  [%lld, %lld)  X² = %.1f\n",
                  static_cast<long long>(island.start),
                  static_cast<long long>(island.end), island.chi_square);
    }
  }
  return 0;
}
