// libFuzzer harness for api::ParseQuery — the query deserializer behind
// both the CLI's --query= flags and the daemon's QUERY command. Takes
// arbitrary bytes in either accepted form (compact text or JSON; a
// leading '{' selects JSON) and checks the serde contract on everything
// the parser accepts:
//
//   ParseQuery(FormatQuery(q)) == q           (text round trip)
//   ParseQuery(FormatQueryJson(q)) == q       (JSON round trip)
//   FormatQuery is a fixpoint                 (canonical form is stable)
//   equal specs => equal fingerprints         (cache identity)
//
// Built behind -DSIGSUB_FUZZERS=ON: with clang this links libFuzzer
// (-fsanitize=fuzzer); elsewhere fuzz/standalone_driver.cc replays the
// committed corpus (fuzz/corpus/serde) as a ctest regression.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/serde.h"
#include "common/check.h"

namespace api = sigsub::api;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  auto parsed = api::ParseQuery(input);
  if (!parsed.ok()) return 0;

  const std::string canonical = api::FormatQuery(*parsed);
  auto from_text = api::ParseQuery(canonical);
  SIGSUB_CHECK(from_text.ok());
  SIGSUB_CHECK(*from_text == *parsed);
  SIGSUB_CHECK(api::FormatQuery(*from_text) == canonical);

  auto from_json = api::ParseQuery(api::FormatQueryJson(*parsed));
  SIGSUB_CHECK(from_json.ok());
  SIGSUB_CHECK(*from_json == *parsed);

  SIGSUB_CHECK(api::FingerprintQuery(*from_text) ==
               api::FingerprintQuery(*parsed));
  SIGSUB_CHECK(api::CanonicalQueryKey(*from_json) ==
               api::CanonicalQueryKey(*parsed));
  return 0;
}
