// Replay driver for the fuzz harnesses on toolchains without libFuzzer
// (gcc builds, local ctest): each argument is a corpus file — or a
// directory of them — fed once through LLVMFuzzerTestOneInput. A crash
// replays exactly as it would under the fuzzer, so committed crasher
// inputs double as regression tests; under clang the same harness TU
// links -fsanitize=fuzzer instead and this file is not compiled.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

int RunOne(const std::filesystem::path& path) {
  std::vector<uint8_t> bytes = ReadFile(path);
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int executed = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) executed += RunOne(entry.path());
      }
    } else if (std::filesystem::exists(path, ec)) {
      executed += RunOne(path);
    } else {
      std::fprintf(stderr, "no such corpus input: %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("replayed %d corpus input(s), no crashes\n", executed);
  return 0;
}
