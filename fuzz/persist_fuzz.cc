// libFuzzer harness for the persist layer's decoders — everything the
// daemon reads back from disk at startup. State files outlive the
// process that wrote them (crashes, partial writes, bit rot, files from
// other builds or other tools entirely), so ParseJournal, DecodeSnapshot,
// DecodeResultCache and DecodeJournalRecord must treat their input as
// untrusted: never crash, never allocate from a lying length field, and
// whatever they do accept must re-encode to bytes they accept again.
//
// Built behind -DSIGSUB_FUZZERS=ON: with clang this links libFuzzer
// (-fsanitize=fuzzer); elsewhere fuzz/standalone_driver.cc replays the
// committed corpus (fuzz/corpus/persist) as a ctest regression.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/check.h"
#include "persist/cache_store.h"
#include "persist/format.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace persist = sigsub::persist;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> input(data, size);

  // Journal replay: arbitrary bytes either fail by name or yield a
  // record prefix whose re-encoding parses back to the same count.
  if (auto replay = persist::ParseJournal(input); replay.ok()) {
    std::string reencoded =
        persist::EncodeFileHeader(persist::FileKind::kJournal);
    for (const persist::JournalRecord& record : replay->records) {
      persist::AppendFrame(&reencoded,
                           persist::EncodeJournalRecord(record));
    }
    auto reparsed = persist::ParseJournal(persist::BytesOf(reencoded));
    SIGSUB_CHECK(reparsed.ok());
    SIGSUB_CHECK(reparsed->records.size() == replay->records.size());
    SIGSUB_CHECK(reparsed->truncated_bytes == 0);
  }

  // A bare record body (the per-frame payload inside the journal).
  if (auto record = persist::DecodeJournalRecord(input); record.ok()) {
    auto round = persist::DecodeJournalRecord(
        persist::BytesOf(persist::EncodeJournalRecord(*record)));
    SIGSUB_CHECK(round.ok());
    SIGSUB_CHECK(round->op == record->op);
    SIGSUB_CHECK(round->stream == record->stream);
    SIGSUB_CHECK(round->symbols == record->symbols);
  }

  // Snapshot and cache files share the header/frame machinery but carry
  // different payload schemas; both must reject damage by name.
  if (auto snapshot = persist::DecodeSnapshot(input); snapshot.ok()) {
    auto round = persist::DecodeSnapshot(
        persist::BytesOf(persist::EncodeSnapshot(*snapshot)));
    SIGSUB_CHECK(round.ok());
    SIGSUB_CHECK(round->streams.size() == snapshot->streams.size());
    SIGSUB_CHECK(round->last_lsn == snapshot->last_lsn);
  }

  if (auto cache = persist::DecodeResultCache(input); cache.ok()) {
    auto round = persist::DecodeResultCache(
        persist::BytesOf(persist::EncodeResultCache(*cache)));
    SIGSUB_CHECK(round.ok());
    SIGSUB_CHECK(round->size() == cache->size());
  }

  return 0;
}
