// libFuzzer harness for server::protocol::ParseRequest — the daemon's
// untrusted network surface. Every byte string a TCP client could send
// as a request line goes through here, so the parser must never crash,
// overflow, or leak whatever the bytes are; when it does accept a line,
// the accepted request must survive the protocol's own round trips.
//
// Built behind -DSIGSUB_FUZZERS=ON: with clang this links libFuzzer
// (-fsanitize=fuzzer); elsewhere fuzz/standalone_driver.cc replays the
// committed corpus (fuzz/corpus/protocol) as a ctest regression.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/serde.h"
#include "common/check.h"
#include "server/protocol.h"

namespace protocol = sigsub::server::protocol;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // The framing layer first: feed the raw bytes through ExtractLine the
  // way the I/O thread would, then parse every complete line.
  std::string buffer(input);
  while (auto line = protocol::ExtractLine(&buffer)) {
    (void)protocol::ParseRequest(*line);
  }

  // Then the whole input as one line (what ParseRequest sees when the
  // newline arrives later).
  auto parsed = protocol::ParseRequest(input);
  if (!parsed.ok()) return 0;

  // Accepted requests must round-trip through the protocol's own
  // formatters without tripping a check.
  switch (parsed->kind) {
    case protocol::CommandKind::kQuery: {
      // The embedded QuerySpec must re-parse from its canonical form to
      // the same spec (the api/serde.h contract).
      auto reparsed = sigsub::api::ParseQuery(
          sigsub::api::FormatQuery(parsed->query));
      SIGSUB_CHECK(reparsed.ok());
      SIGSUB_CHECK(*reparsed == parsed->query);
      break;
    }
    case protocol::CommandKind::kStreamAppend: {
      // Symbol payloads round-trip through the text codec.
      auto decoded = protocol::DecodeSymbols(
          protocol::EncodeSymbols(parsed->symbols));
      SIGSUB_CHECK(decoded.ok());
      SIGSUB_CHECK(*decoded == parsed->symbols);
      break;
    }
    default:
      break;
  }
  return 0;
}
