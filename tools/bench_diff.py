#!/usr/bin/env python3
"""Compare BENCH_*.json emitters against the committed perf baseline.

Reads tools/bench_baseline.json (tracked metrics + regression threshold),
loads each referenced BENCH_<suite>.json from --dir, and fails with a
readable table when

  * a tracked metric regresses more than the threshold (default 15%)
    below its committed baseline,
  * a tracked metric or its BENCH file is missing (an emitter rotted), or
  * any gate recorded by a tracked BENCH file is false.

Tracked metrics are speedups (two timings from the same run), not absolute
milliseconds, so they stay comparable across machines and load levels.

Usage: python3 tools/bench_diff.py [--dir DIR] [--baseline PATH]
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def find_result(bench, result_name):
    for row in bench.get("results", []):
        if row.get("name") == result_name:
            return row
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json files"
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "bench_baseline.json"),
        help="committed baseline file",
    )
    args = parser.parse_args()

    baseline = load_json(args.baseline)
    threshold = float(baseline.get("regression_threshold", 0.15))

    rows = []
    failures = 0
    bench_cache = {}
    for tracked in baseline["tracked"]:
        file_name = tracked["file"]
        result_name = tracked["result"]
        metric = tracked["metric"]
        base = float(tracked["baseline"])
        floor = base * (1.0 - threshold)
        path = os.path.join(args.dir, file_name)

        if file_name not in bench_cache:
            try:
                bench_cache[file_name] = load_json(path)
            except (OSError, json.JSONDecodeError) as error:
                bench_cache[file_name] = error
        bench = bench_cache[file_name]

        if isinstance(bench, Exception):
            rows.append((file_name, result_name, metric, base, "-", "MISSING FILE"))
            failures += 1
            continue
        row = find_result(bench, result_name)
        if row is None or metric not in row:
            rows.append((file_name, result_name, metric, base, "-", "MISSING METRIC"))
            failures += 1
            continue
        value = float(row[metric])
        if value < floor:
            status = "REGRESSED (>%d%% below baseline)" % round(threshold * 100)
            failures += 1
        else:
            status = "ok"
        rows.append((file_name, result_name, metric, base, "%.2f" % value, status))

    gate_rows = []
    for file_name, bench in sorted(bench_cache.items()):
        if isinstance(bench, Exception):
            continue
        for gate_name, passed in bench.get("gates", {}).items():
            gate_rows.append((file_name, gate_name, passed))
            if not passed:
                failures += 1

    headers = ("file", "metric", "kind", "baseline", "value", "status")
    table = [headers] + [
        (f, r, m, "%.2f" % b, v, s) for (f, r, m, b, v, s) in rows
    ]
    widths = [max(len(str(row[i])) for row in table) for i in range(len(headers))]
    for index, row in enumerate(table):
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            print("  ".join("-" * widths[i] for i in range(len(headers))))

    print()
    for file_name, gate_name, passed in gate_rows:
        print("gate %-24s %-36s %s" % (file_name, gate_name, "pass" if passed else "FAIL"))

    if failures:
        print("\nbench_diff: %d failure(s) against %s" % (failures, args.baseline))
        return 1
    print("\nbench_diff: all tracked metrics within %d%% of baseline" % round(threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
