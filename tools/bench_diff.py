#!/usr/bin/env python3
"""Compare BENCH_*.json emitters against the committed perf baseline.

Reads tools/bench_baseline.json (tracked metrics + regression threshold),
loads each referenced BENCH_<suite>.json from --dir, and fails with a
readable table when

  * a tracked metric regresses more than the threshold (default 15%)
    below its committed baseline,
  * a tracked metric or its BENCH file is missing (an emitter rotted), or
  * any gate recorded by a tracked BENCH file is false.

Tracked metrics are speedups (two timings from the same run), not absolute
milliseconds, so they stay comparable across machines and load levels.
Every BENCH file also carries a {"name": "machine"} row recording the
measuring machine's hardware_concurrency; when it differs from the
baseline file's recorded value the script prints a warning naming both
values (never a failure — relative metrics mostly survive a core-count
change, but contention-sensitive ones deserve a second look).

With --write-baseline the roles reverse: every tracked metric's baseline
is refreshed from the measured value, discounted by --write-margin
(default 0.15) so the committed floor stays deliberately conservative —
writing the exact machine-local number would turn shared-runner timing
noise into CI failures, which is the flake the margin exists to absorb.
Refreshing after a deliberate perf change is thus one command instead of
hand-edited JSON. Regressions do not fail a write run — they are what the
write exists to record. The write is refused (exit 1) only when a tracked
metric's BENCH file or row is missing, or when a bench recorded a failing
correctness gate: numbers from a run that failed its own gates would bake
a buggy build into the baseline.

With --list the script prints every tracked metric (file, result, metric,
committed baseline) and exits without reading any BENCH file — the quick
answer to "what does CI actually gate on?".

All failure modes exit with a named one-line error (exit 2 for a missing
or malformed baseline file, exit 1 for missing metrics/regressions),
never a Python traceback.

Usage: python3 tools/bench_diff.py [--dir DIR] [--baseline PATH] [--list]
                                   [--write-baseline] [--write-margin M]
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def fail(message):
    print("bench_diff: error: %s" % message, file=sys.stderr)
    return 2


def find_result(bench, result_name):
    for row in bench.get("results", []):
        if row.get("name") == result_name:
            return row
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json files"
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "bench_baseline.json"),
        help="committed baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="update every tracked entry's baseline to its measured value "
        "discounted by --write-margin, and rewrite the baseline file "
        "(regressions do not fail the run; missing files/metrics and "
        "failing gates do)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_tracked",
        help="print the tracked metrics and their committed baselines, "
        "then exit without reading any BENCH file",
    )
    parser.add_argument(
        "--write-margin",
        type=float,
        default=0.15,
        help="conservative discount applied to measured values by "
        "--write-baseline (0.15 writes 85%% of the measured speedup), so "
        "committed floors keep headroom against runner timing noise",
    )
    args = parser.parse_args()
    if not 0.0 <= args.write_margin < 1.0:
        parser.error("--write-margin must be in [0, 1)")

    try:
        baseline = load_json(args.baseline)
    except OSError as error:
        return fail("cannot read baseline file %s (%s)" % (args.baseline, error))
    except json.JSONDecodeError as error:
        return fail("baseline file %s is not valid JSON: %s" % (args.baseline, error))
    threshold = float(baseline.get("regression_threshold", 0.15))
    tracked_list = baseline.get("tracked")
    if not isinstance(tracked_list, list):
        return fail('baseline file %s has no "tracked" list' % args.baseline)
    for index, tracked in enumerate(tracked_list):
        missing = [
            key
            for key in ("file", "result", "metric", "baseline")
            if not isinstance(tracked, dict) or key not in tracked
        ]
        if missing:
            return fail(
                'baseline entry #%d is missing key(s) %s in %s'
                % (index + 1, ", ".join('"%s"' % key for key in missing), args.baseline)
            )

    if args.list_tracked:
        print(
            "%d tracked metric(s) in %s (regression threshold %d%%):"
            % (len(tracked_list), args.baseline, round(threshold * 100))
        )
        for tracked in tracked_list:
            print(
                "  %-24s %-24s %-12s baseline %.2f"
                % (
                    tracked["file"],
                    tracked["result"],
                    tracked["metric"],
                    float(tracked["baseline"]),
                )
            )
        return 0

    rows = []
    failures = 0
    bench_cache = {}
    for tracked in tracked_list:
        file_name = tracked["file"]
        result_name = tracked["result"]
        metric = tracked["metric"]
        base = float(tracked["baseline"])
        floor = base * (1.0 - threshold)
        path = os.path.join(args.dir, file_name)

        if file_name not in bench_cache:
            try:
                bench_cache[file_name] = load_json(path)
            except (OSError, json.JSONDecodeError) as error:
                bench_cache[file_name] = error
        bench = bench_cache[file_name]

        if isinstance(bench, Exception):
            rows.append((file_name, result_name, metric, base, "-", "MISSING FILE"))
            failures += 1
            continue
        row = find_result(bench, result_name)
        if row is None or metric not in row:
            rows.append((file_name, result_name, metric, base, "-", "MISSING METRIC"))
            failures += 1
            continue
        value = float(row[metric])
        if args.write_baseline:
            tracked["baseline"] = round(value * (1.0 - args.write_margin), 2)
            status = "baseline %.2f -> %.2f (measured %.2f - %d%% margin)" % (
                base,
                tracked["baseline"],
                value,
                round(args.write_margin * 100),
            )
        elif value < floor:
            status = "REGRESSED (>%d%% below baseline)" % round(threshold * 100)
            failures += 1
        else:
            status = "ok"
        rows.append((file_name, result_name, metric, base, "%.2f" % value, status))

    gate_rows = []
    gate_failures = 0
    hc_warnings = []
    baseline_hc = baseline.get("hardware_concurrency")
    for file_name, bench in sorted(bench_cache.items()):
        if isinstance(bench, Exception):
            continue
        for gate_name, passed in bench.get("gates", {}).items():
            gate_rows.append((file_name, gate_name, passed))
            if not passed:
                gate_failures += 1
        # Benches record the measuring machine's logical core count as a
        # {"name": "machine"} row. Speedups are relative metrics, but a
        # different core count than the baseline machine's still shifts
        # contention-sensitive ratios — warn (never fail) so a surprising
        # diff is read with that in mind.
        machine = find_result(bench, "machine")
        run_hc = machine.get("hardware_concurrency") if machine else None
        if args.write_baseline and run_hc is not None:
            baseline["hardware_concurrency"] = int(run_hc)
        elif (
            baseline_hc is not None
            and run_hc is not None
            and int(run_hc) != int(baseline_hc)
        ):
            hc_warnings.append(
                "bench_diff: warning: %s was measured with "
                "hardware_concurrency=%d but the baseline was recorded with "
                "hardware_concurrency=%d — speedups may not be comparable"
                % (file_name, int(run_hc), int(baseline_hc))
            )

    headers = ("file", "metric", "kind", "baseline", "value", "status")
    table = [headers] + [
        (f, r, m, "%.2f" % b, v, s) for (f, r, m, b, v, s) in rows
    ]
    widths = [max(len(str(row[i])) for row in table) for i in range(len(headers))]
    for index, row in enumerate(table):
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            print("  ".join("-" * widths[i] for i in range(len(headers))))

    print()
    for file_name, gate_name, passed in gate_rows:
        print("gate %-24s %-36s %s" % (file_name, gate_name, "pass" if passed else "FAIL"))
    for warning in hc_warnings:
        print(warning)

    if args.write_baseline:
        if failures or gate_failures:
            reasons = []
            if failures:
                reasons.append("%d tracked metric(s) missing" % failures)
            if gate_failures:
                reasons.append("%d bench gate(s) failing" % gate_failures)
            print(
                "\nbench_diff: NOT writing %s — %s"
                % (args.baseline, ", ".join(reasons))
            )
            return 1
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print("\nbench_diff: wrote measured baselines to %s" % args.baseline)
        return 0
    if failures or gate_failures:
        print(
            "\nbench_diff: %d failure(s) against %s"
            % (failures + gate_failures, args.baseline)
        )
        return 1
    print("\nbench_diff: all tracked metrics within %d%% of baseline" % round(threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
