// Command-line front end for the sigsub library. See cli::UsageText().

#include <cstdio>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
    std::printf("%s", sigsub::cli::UsageText().c_str());
    return 0;
  }
  auto options = sigsub::cli::ParseArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().message().c_str());
    return 2;
  }
  auto report = sigsub::cli::Run(options.value());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->c_str());
  return 0;
}
