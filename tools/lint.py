#!/usr/bin/env python3
"""Repo-local static lint for sigsub. Run from anywhere:

    python3 tools/lint.py              # all rules, including header compiles
    python3 tools/lint.py --no-compile # text rules only (fast pre-commit)

Rules (each can be suppressed on a single line with a trailing
`// sigsub-lint: allow(<rule>)` comment):

  include-guard      src/ headers use #ifndef/#define SIGSUB_<PATH>_H_ and
                     close with `#endif  // SIGSUB_<PATH>_H_`.
  self-contained     every src/ header compiles alone via
                     `g++ -std=c++20 -fsyntax-only -I src`.
  raw-mutex          std::mutex / std::lock_guard / std::unique_lock /
                     std::scoped_lock / std::condition_variable appear in
                     src/ only inside common/mutex.h, so clang's thread
                     safety analysis sees every lock in the library.
                     (std::call_once / std::once_flag stay legal: they are
                     one-shot initialization, not a lockable capability.)
  unsafe-call        calls that mutate hidden process-global state and race
                     under the thread pool: lgamma (glibc signgam),
                     strtok, localtime, gmtime, asctime, ctime, rand,
                     srand. Use the _r/alternative forms instead.
  raw-io             direct ::write / ::fsync calls appear in src/ only
                     inside common/posix_io.cc and
                     common/fault_injection.cc. Everything else goes
                     through RawWrite/RawFsync/WriteFdAll so the fault-
                     injection shim (SIGSUB_FAULT) covers every byte the
                     durability layer puts on disk.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

ALLOW_RE = re.compile(r"//\s*sigsub-lint:\s*allow\(([a-z-]+)\)")

# Lockable primitives that must stay wrapped by common/mutex.h. The ban is
# on the identifier anywhere in a source line, not just declarations:
# aliases and typedefs would otherwise launder them past the check.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?)\b"
)
RAW_MUTEX_EXEMPT = {"common/mutex.h"}

# Raw write/fsync syscalls bypass the fault-injection shim; keeping them
# behind common/posix_io.cc's RawWrite/RawFsync wrappers is what makes
# the crash-recovery tests able to fail any on-disk byte by call count.
# (::read is deliberately not banned: the poll-loop drain reads are not
# durability-bearing.)
RAW_IO_RE = re.compile(r"::\s*(write|fsync)\s*\(")
RAW_IO_EXEMPT = {"common/posix_io.cc", "common/fault_injection.cc"}

UNSAFE_CALL_RE = re.compile(
    r"(?<![A-Za-z0-9_])"
    r"(lgamma|lgammaf|lgammal|strtok|localtime|gmtime|asctime|ctime"
    r"|rand|srand|drand48|lrand48)"
    r"\s*\("
)

findings = []


def report(path, lineno, rule, message):
    rel = os.path.relpath(path, REPO_ROOT)
    findings.append(f"{rel}:{lineno}: [{rule}] {message}")


def strip_strings(line):
    """Blank out string/char literal contents so banned names inside
    log messages or test data don't trip the text rules."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            quote = ch
            out.append(ch)
        else:
            out.append(ch)
        i += 1
    # Rebuild with literal interiors removed.
    result = []
    quote = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
                result.append(ch)
            continue
        if ch in "\"'":
            quote = ch
        result.append(ch)
    return "".join(result)


def code_portion(line):
    """The line with string contents and // comments removed."""
    no_strings = strip_strings(line)
    cut = no_strings.find("//")
    return no_strings[:cut] if cut >= 0 else no_strings


def allowed(line, rule):
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def iter_source_files(root, suffixes):
    for dirpath, _, names in os.walk(root):
        for name in sorted(names):
            if name.endswith(suffixes):
                yield os.path.join(dirpath, name)


def expected_guard(header_path):
    rel = os.path.relpath(header_path, SRC_ROOT)
    token = re.sub(r"[^A-Za-z0-9]", "_", rel).upper()
    return f"SIGSUB_{token}_"


def check_include_guard(path, lines):
    guard = expected_guard(path)
    ifndef = f"#ifndef {guard}"
    define = f"#define {guard}"
    endif = f"#endif  // {guard}"

    stripped = [ln.rstrip("\n") for ln in lines]
    try:
        idx = next(i for i, ln in enumerate(stripped)
                   if ln.startswith("#ifndef") or ln.startswith("#if "))
    except StopIteration:
        report(path, 1, "include-guard", f"missing `{ifndef}`")
        return
    if stripped[idx] != ifndef:
        if allowed(stripped[idx], "include-guard"):
            return
        report(path, idx + 1, "include-guard",
               f"first guard line is `{stripped[idx]}`, want `{ifndef}`")
        return
    if idx + 1 >= len(stripped) or stripped[idx + 1] != define:
        report(path, idx + 2, "include-guard", f"missing `{define}`")
        return
    last_nonblank = next(
        (i for i in range(len(stripped) - 1, -1, -1) if stripped[i].strip()),
        None)
    if last_nonblank is None or stripped[last_nonblank] != endif:
        report(path, (last_nonblank or 0) + 1, "include-guard",
               f"header must end with `{endif}`")


def check_text_rules(path, lines):
    rel = os.path.relpath(path, SRC_ROOT).replace(os.sep, "/")
    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        code = code_portion(line)
        if rel not in RAW_MUTEX_EXEMPT:
            m = RAW_MUTEX_RE.search(code)
            if m and not allowed(line, "raw-mutex"):
                report(path, lineno, "raw-mutex",
                       f"`{m.group(0)}` outside common/mutex.h — use "
                       "common::Mutex / MutexLock / CondVar so clang's "
                       "thread safety analysis covers the lock")
        m = UNSAFE_CALL_RE.search(code)
        if m and not allowed(line, "unsafe-call"):
            report(path, lineno, "unsafe-call",
                   f"`{m.group(1)}()` touches process-global state and is "
                   "not thread-safe; use the reentrant alternative")
        if rel not in RAW_IO_EXEMPT:
            m = RAW_IO_RE.search(code)
            if m and not allowed(line, "raw-io"):
                report(path, lineno, "raw-io",
                       f"`::{m.group(1)}()` bypasses the fault-injection "
                       "shim — use RawWrite/RawFsync/WriteFdAll from "
                       "common/posix_io.h")


def check_self_contained(headers, compiler):
    for header in headers:
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
             "-I", SRC_ROOT, header],
            capture_output=True, text=True)
        if proc.returncode != 0:
            first = proc.stderr.strip().splitlines()
            detail = first[0] if first else "compile failed"
            report(header, 1, "self-contained", detail)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-compile", action="store_true",
                        help="skip the header self-containment compiles")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "g++"),
                        help="compiler for self-containment checks")
    args = parser.parse_args()

    if not os.path.isdir(SRC_ROOT):
        print(f"lint.py: src/ not found under {REPO_ROOT}", file=sys.stderr)
        return 2

    headers = list(iter_source_files(SRC_ROOT, (".h",)))
    sources = list(iter_source_files(SRC_ROOT, (".h", ".cc")))

    for header in headers:
        with open(header, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
        check_include_guard(header, lines)
    for source in sources:
        with open(source, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
        check_text_rules(source, lines)
    if not args.no_compile:
        check_self_contained(headers, args.compiler)

    for finding in sorted(findings):
        print(finding)
    checked = len(sources)
    mode = "text rules" if args.no_compile else "all rules"
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {checked} files "
              f"({mode})", file=sys.stderr)
        return 1
    print(f"lint.py: clean — {checked} files, {len(headers)} headers "
          f"({mode})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
