#!/usr/bin/env python3
"""Header self-containment check for sigsub.

Every text rule that used to live here moved into the C++ analyzer at
tools/lint/ (the `sigsub_lint` binary, built by CMake and registered in
ctest as `lint_repo`). This wrapper keeps the one check that needs a
compiler rather than a lexer: every src/ header must compile on its own
via `-fsyntax-only -I src`.

The compiler defaults to whatever the build already configured: the
first build*/CMakeCache.txt under the repo root supplies
CMAKE_CXX_COMPILER and CMAKE_CXX_COMPILER_LAUNCHER (ccache), falling
back to $CXX and then plain `c++` when no build directory exists.

    python3 tools/lint.py                 # all src/ headers
    python3 tools/lint.py --compiler g++  # override the compiler

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import glob
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")


def configured_compiler():
    """(launcher, compiler) from the newest build*/CMakeCache.txt, or
    (None, fallback) when not configured yet."""
    caches = sorted(
        glob.glob(os.path.join(REPO_ROOT, "build*", "CMakeCache.txt")),
        key=os.path.getmtime, reverse=True)
    for cache in caches:
        compiler = None
        launcher = None
        with open(cache, encoding="utf-8", errors="replace") as f:
            for line in f:
                line = line.strip()
                if line.startswith("CMAKE_CXX_COMPILER:"):
                    compiler = line.split("=", 1)[1]
                elif line.startswith("CMAKE_CXX_COMPILER_LAUNCHER:"):
                    launcher = line.split("=", 1)[1]
        if compiler:
            return launcher or None, compiler
    return None, os.environ.get("CXX", "c++")


def iter_headers():
    for dirpath, _, names in os.walk(SRC_ROOT):
        for name in sorted(names):
            if name.endswith(".h"):
                yield os.path.join(dirpath, name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compiler", default=None,
                        help="compiler for the syntax-only compiles "
                             "(default: the configured build's)")
    args = parser.parse_args()

    if not os.path.isdir(SRC_ROOT):
        print(f"lint.py: src/ not found under {REPO_ROOT}", file=sys.stderr)
        return 2

    if args.compiler:
        launcher, compiler = None, args.compiler
    else:
        launcher, compiler = configured_compiler()

    findings = []
    headers = list(iter_headers())
    for header in headers:
        cmd = ([launcher] if launcher else []) + [
            compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
            "-I", SRC_ROOT, header]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            rel = os.path.relpath(header, REPO_ROOT)
            first = proc.stderr.strip().splitlines()
            detail = first[0] if first else "compile failed"
            findings.append(f"{rel}:1: [self-contained] {detail}")

    for finding in sorted(findings):
        print(finding)
    if findings:
        print(f"lint.py: {len(findings)} finding(s) in {len(headers)} "
              "headers", file=sys.stderr)
        return 1
    print(f"lint.py: clean — {len(headers)} headers self-contained "
          f"(compiler: {compiler})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
