// sigsub_lint: the repo's own static analyzer. Token-level C++ rules —
// include layering, unchecked Status/Result, lock-order, wire-code
// exhaustiveness, banned APIs — over src/ tools/ bench/ fuzz/ tests/.
//
//   sigsub_lint [--root=<repo>] [--rule=<id>]... [--list-rules]
//
// Exit codes: 0 clean, 1 findings, 2 usage/load error. Suppress one
// finding with `// sigsub-lint: allow(<rule>): <reason>` on its line;
// the reason is mandatory.

#include <cstdio>
#include <set>
#include <string>
#include <string_view>

#include "lint/analyzer.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: sigsub_lint [--root=<repo>] [--rule=<id>]... [--list-rules]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> rule_filter;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kRoot = "--root=";
    constexpr std::string_view kRule = "--rule=";
    if (arg.rfind(kRoot, 0) == 0) {
      root = std::string(arg.substr(kRoot.size()));
    } else if (arg.rfind(kRule, 0) == 0) {
      rule_filter.insert(std::string(arg.substr(kRule.size())));
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else {
      return Usage();
    }
  }

  const auto& rules = sigsub::lint::AllRules();
  if (list_rules) {
    for (const auto& rule : rules) {
      std::printf("%-18s %s\n", std::string(rule.name).c_str(),
                  std::string(rule.description).c_str());
    }
    return 0;
  }
  for (const std::string& name : rule_filter) {
    bool known = false;
    for (const auto& rule : rules) {
      if (rule.name == name) known = true;
    }
    if (!known) {
      std::fprintf(stderr, "sigsub_lint: unknown rule '%s'\n", name.c_str());
      return Usage();
    }
  }

  sigsub::lint::Analysis analysis;
  if (!sigsub::lint::LoadTree(root, &analysis)) {
    std::fprintf(stderr,
                 "sigsub_lint: '%s' does not look like the repo root "
                 "(no src/ directory)\n",
                 root.c_str());
    return 2;
  }

  const auto findings = sigsub::lint::RunRules(&analysis, rule_filter);
  for (const auto& diag : findings) {
    std::printf("%s:%d: [%s] %s\n", diag.file.c_str(), diag.line,
                diag.rule.c_str(), diag.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "sigsub_lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), analysis.files.size());
    return 1;
  }
  return 0;
}
