// unchecked-result: every call to a function returning common::Status or
// Result<T> must be consumed — assigned, returned, passed on, wrapped in
// SIGSUB_CHECK_OK / SIGSUB_RETURN_IF_ERROR / ASSERT_OK, or explicitly
// discarded with a (void) cast. [[nodiscard]] on the types gives the
// compiler the same opinion; this rule enforces it compiler-independently
// and inside gcc blind spots (discards behind control-clause statements).

#include <set>
#include <string>

#include "lint/analyzer.h"

namespace sigsub {
namespace lint {
namespace {

/// Statement-position keywords: `return Foo(...)` is a call, never a
/// declaration of Foo with return type `return`.
bool IsStatementKeyword(std::string_view text) {
  static const std::set<std::string_view> kKeywords = {
      "return", "co_return", "co_await", "co_yield", "else",   "do",
      "case",   "new",       "delete",   "throw",    "goto",   "operator",
      "not",    "and",       "or",       "explicit", "friend"};
  return kKeywords.find(text) != kKeywords.end();
}

/// For a '>' at `close`, walks back over the balanced angle group and
/// returns the index of the identifier right before the matching '<'
/// (the template name), or SIZE_MAX when it does not look like one.
size_t TemplateNameBeforeAngles(const std::vector<Token>& tokens,
                                size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == ">") ++depth;
      if (t.text == ">>") depth += 2;
      if (t.text == "<") --depth;
      if (t.text == "<<") depth -= 2;
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      if (depth <= 0) {
        if (i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier) {
          return i - 1;
        }
        break;
      }
    }
    if (i == 0) break;
  }
  return static_cast<size_t>(-1);
}

/// Collects the names of functions declared to return Status /
/// Result<T> anywhere in the tree (`names`), and the names declared with
/// any OTHER return type (`others`). A name in both sets is ambiguous —
/// a token-level pass cannot type the receiver of `x.Reset()`, so the
/// caller only enforces the unambiguous names.
void CollectStatusReturners(const Analysis& analysis,
                            std::set<std::string, std::less<>>* names,
                            std::set<std::string, std::less<>>* others) {
  for (const SourceFile& file : analysis.files) {
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      // --- Status/Result<T> declarations.
      if (tokens[i].kind == TokenKind::kIdentifier) {
        size_t j = 0;
        if (tokens[i].text == "Status") {
          j = i + 1;
        } else if (tokens[i].text == "Result" &&
                   IsPunct(tokens, i + 1, "<")) {
          j = SkipAngles(tokens, i + 1);
        }
        if (j != 0) {
          while (IsPunct(tokens, j, "&") || IsPunct(tokens, j, "&&") ||
                 IsPunct(tokens, j, "*")) {
            ++j;
          }
          if (j < tokens.size() &&
              tokens[j].kind == TokenKind::kIdentifier &&
              IsPunct(tokens, j + 1, "(") && tokens[j].text != "operator") {
            // `Status(...)` constructor calls don't reach here (next
            // token is the paren); `Status foo = ...` has no paren.
            names->insert(std::string(tokens[j].text));
          }
        }
      }

      // --- declarations with any other return type: `type name (`,
      // where `type` may end in &/*/> (void Reset(), vector<int> f()).
      if (i == 0 || tokens[i].kind != TokenKind::kIdentifier ||
          !IsPunct(tokens, i + 1, "(")) {
        continue;
      }
      size_t p = i - 1;
      while (p > 0 && (IsPunct(tokens, p, "&") || IsPunct(tokens, p, "&&") ||
                       IsPunct(tokens, p, "*"))) {
        --p;
      }
      size_t type_at = static_cast<size_t>(-1);
      if (tokens[p].kind == TokenKind::kIdentifier) {
        type_at = p;
      } else if (IsPunct(tokens, p, ">") || IsPunct(tokens, p, ">>")) {
        type_at = TemplateNameBeforeAngles(tokens, p);
      }
      if (type_at == static_cast<size_t>(-1)) continue;
      std::string_view type = tokens[type_at].text;
      if (type == "Status" || type == "Result" ||
          IsStatementKeyword(type)) {
        continue;
      }
      others->insert(std::string(tokens[i].text));
    }
  }
}

/// Walks left from the call-name token at `i` over the member /
/// qualification chain (`a.b->c::d(...)` and `std::move(x).status()`
/// shapes) and returns the index of the chain's leftmost token.
size_t ChainStart(const std::vector<Token>& tokens, size_t i) {
  size_t p = i;
  while (p > 0) {
    const Token& prev = tokens[p - 1];
    if (prev.kind != TokenKind::kPunct ||
        (prev.text != "." && prev.text != "->" && prev.text != "::")) {
      break;
    }
    if (p < 2) return 0;
    size_t q = p - 2;  // The primary before the connector.
    if (IsPunct(tokens, q, ")") || IsPunct(tokens, q, "]")) {
      size_t open = MatchingOpen(tokens, q);
      if (open == static_cast<size_t>(-1)) break;
      // A call's callee identifier is part of the same primary:
      // `move` in `std::move(x).status()`.
      if (open > 0 && tokens[open - 1].kind == TokenKind::kIdentifier) {
        p = open - 1;
      } else {
        p = open;
      }
      continue;
    }
    if (tokens[q].kind == TokenKind::kIdentifier) {
      p = q;
      continue;
    }
    break;
  }
  return p;
}

/// True when the call whose chain starts at `start` stands alone as an
/// expression statement (its value is dropped).
bool IsDiscardedStatement(const std::vector<Token>& tokens, size_t start) {
  if (start == 0) return true;  // File scope: only in fixtures.
  const Token& before = tokens[start - 1];
  if (before.kind == TokenKind::kPunct) {
    if (before.text == ";" || before.text == "{" || before.text == "}") {
      return true;
    }
    if (before.text == ":") {
      // A label (`case x:`) starts a statement; a ternary's ':' does not.
      for (size_t p = start - 1; p-- > 0;) {
        const Token& t = tokens[p];
        if (t.kind != TokenKind::kPunct) continue;
        if (t.text == "?") return false;
        if (t.text == ";" || t.text == "{" || t.text == "}") break;
      }
      return true;
    }
    if (before.text == ")") {
      size_t open = MatchingOpen(tokens, start - 1);
      if (open == static_cast<size_t>(-1)) return false;
      // `(void)Call();` is the sanctioned explicit discard.
      if (open + 2 == start - 1 && IsIdent(tokens, open + 1, "void")) {
        return false;
      }
      // `if (...) Call();` and friends drop the value.
      if (open > 0 && tokens[open - 1].kind == TokenKind::kIdentifier) {
        std::string_view kw = tokens[open - 1].text;
        return kw == "if" || kw == "while" || kw == "for" || kw == "switch";
      }
      return false;
    }
    return false;
  }
  if (before.kind == TokenKind::kIdentifier) {
    return before.text == "else" || before.text == "do";
  }
  return false;
}

}  // namespace

void RunUncheckedResultRule(Analysis* analysis) {
  std::set<std::string, std::less<>> returners;
  std::set<std::string, std::less<>> others;
  CollectStatusReturners(*analysis, &returners, &others);
  // Enforce only names that are unambiguously Status/Result-returning:
  // `x.Reset()` cannot be typed at token level, so a name that is void
  // somewhere (Incremental::Reset) and Status somewhere else
  // (Journal::Reset) is skipped rather than misreported.
  for (const std::string& name : others) returners.erase(name);

  for (const SourceFile& file : analysis->files) {
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier) continue;
      if (returners.find(tokens[i].text) == returners.end()) continue;
      if (!IsPunct(tokens, i + 1, "(")) continue;
      size_t close = MatchingClose(tokens, i + 1);
      if (close >= tokens.size() || !IsPunct(tokens, close + 1, ";")) {
        continue;  // Part of a larger expression: consumed.
      }
      size_t start = ChainStart(tokens, i);
      // A declaration (`Status Foo();`) stops the chain walk at the
      // return type identifier, which fails the statement-start test.
      if (!IsDiscardedStatement(tokens, start)) continue;
      analysis->Report(
          file, tokens[i].line, "unchecked-result",
          "result of '" + std::string(tokens[i].text) +
              "(...)' (a Status/Result) is silently dropped — assign it, "
              "SIGSUB_RETURN_IF_ERROR it, wrap it in SIGSUB_CHECK_OK, or "
              "cast to (void) with a comment saying why");
    }
  }
}

}  // namespace lint
}  // namespace sigsub
