#ifndef SIGSUB_TOOLS_LINT_ANALYZER_H_
#define SIGSUB_TOOLS_LINT_ANALYZER_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace sigsub {
namespace lint {

/// One source file as the rules see it. `rel` is the path relative to the
/// analysis root with '/' separators ("src/core/mss.cc"); `area` is its
/// first component ("src", "tools", "bench", "fuzz", "tests");
/// `subsystem` is the second component for src/ files ("core"), empty
/// otherwise ("src/sigsub.h" has area "src" and an empty subsystem).
struct SourceFile {
  std::string rel;
  std::string area;
  std::string subsystem;
  bool is_header = false;
  std::string content;  // Owns the bytes the lexed views point into.
  LexedFile lexed;
};

struct Diagnostic {
  std::string file;  // Root-relative path.
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
};

/// Shared state for one analysis run. Rules read `files` and call
/// Report(); the driver applies suppressions afterwards, so rules never
/// reason about allow() comments themselves.
class Analysis {
 public:
  std::vector<SourceFile> files;
  std::string readme;  // README.md content ("" when absent).
  std::string root;    // Absolute analysis root.

  void Report(const SourceFile& file, int line, std::string_view rule,
              std::string message) {
    diagnostics_.push_back(
        Diagnostic{file.rel, line, std::string(rule), std::move(message)});
  }

  /// Report against a file that may not be loaded (e.g. README.md).
  void ReportPath(std::string_view rel, int line, std::string_view rule,
                  std::string message) {
    diagnostics_.push_back(Diagnostic{std::string(rel), line,
                                      std::string(rule), std::move(message)});
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  /// Applies `// sigsub-lint: allow(<rule>): <reason>` comments: a
  /// diagnostic whose (file, line, rule) matches a suppression with a
  /// reason is dropped; a matching suppression WITHOUT a reason does not
  /// suppress and instead yields a `suppression-reason` finding. Returns
  /// the surviving diagnostics, sorted.
  std::vector<Diagnostic> FinalizeDiagnostics() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// A rule: a name (the id used in allow()/expect-lint comments), a
/// one-line description, and the pass over the loaded tree.
struct Rule {
  std::string_view name;
  std::string_view description;
  void (*run)(Analysis* analysis);
};

/// All registered rules, in execution order.
const std::vector<Rule>& AllRules();

/// Loads every *.h/*.cc/*.cpp under root/{src,tools,bench,fuzz,tests}
/// (skipping any directory named "fixtures" — those hold deliberate
/// violations for the golden tests) plus README.md. Returns false when
/// `root` has no src/ directory.
bool LoadTree(const std::string& root, Analysis* analysis);

/// Runs the named rules (all when `rule_filter` is empty) and returns the
/// surviving diagnostics, sorted.
std::vector<Diagnostic> RunRules(Analysis* analysis,
                                 const std::set<std::string>& rule_filter);

// ----------------------------------------------------------------- rules
// (one registration function per family; see the matching rules_*.cc)
void RunIncludeGuardRule(Analysis* analysis);
void RunIncludeLayeringRule(Analysis* analysis);
void RunUncheckedResultRule(Analysis* analysis);
void RunLockOrderRule(Analysis* analysis);
void RunWireCodesRule(Analysis* analysis);
void RunRawMutexRule(Analysis* analysis);
void RunRawIoRule(Analysis* analysis);
void RunUnsafeCallRule(Analysis* analysis);
void RunIterationOrderRule(Analysis* analysis);
void RunAuditPathRule(Analysis* analysis);

// ------------------------------------------------------- token utilities

/// True if token i exists and is an identifier with exactly `text`.
bool IsIdent(const std::vector<Token>& tokens, size_t i,
             std::string_view text);

/// True if token i exists and is punctuation with exactly `text`.
bool IsPunct(const std::vector<Token>& tokens, size_t i,
             std::string_view text);

/// Index of the matching close for the open paren/brace/bracket at
/// `open`, or tokens.size() when unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open);

/// Index of the matching open for the close paren/brace/bracket at
/// `close`, or SIZE_MAX when unbalanced.
size_t MatchingOpen(const std::vector<Token>& tokens, size_t close);

/// Skips a template argument list starting at the '<' at `i`; returns the
/// index one past the closing '>' (treating ">>" as two closes), or
/// `i` + 1 when it does not look like a balanced list.
size_t SkipAngles(const std::vector<Token>& tokens, size_t i);

}  // namespace lint
}  // namespace sigsub

#endif  // SIGSUB_TOOLS_LINT_ANALYZER_H_
