// lock-order: parses SIGSUB_GUARDED_BY / SIGSUB_ACQUIRED_BEFORE /
// SIGSUB_ACQUIRED_AFTER annotations (plus `// sigsub-lint: order A < B`
// directives for cross-class pairs the attribute grammar cannot name),
// builds the global lock graph, and fails on cycles. It also enforces
// the annotation discipline itself: a class that owns a common::Mutex
// must say, for every mutable member, who protects it —
// SIGSUB_GUARDED_BY(mu), std::atomic, const, or SIGSUB_THREAD_CONFINED.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/analyzer.h"

namespace sigsub {
namespace lint {
namespace {

struct Member {
  std::string name;
  int line = 0;
  bool is_mutex = false;
  bool is_condvar = false;
  bool exempt = false;  // const / atomic / guarded / thread-confined.
  // Identifiers appearing in the declaration's type part — used to
  // recognize members whose type is itself a mutex-owning (internally
  // synchronized) class.
  std::vector<std::string> type_idents;
  std::vector<std::string> acquired_before;
  std::vector<std::string> acquired_after;
};

struct ClassInfo {
  std::string name;  // Qualified: "StreamManager::Stream".
  const SourceFile* file = nullptr;
  int line = 0;
  std::vector<Member> members;

  bool OwnsMutex() const {
    for (const Member& m : members) {
      if (m.is_mutex) return true;
    }
    return false;
  }
};

bool IsKeyword(std::string_view text) {
  static const std::set<std::string_view> kSkip = {
      "using", "typedef", "friend",   "static", "template",
      "enum",  "public",  "private",  "protected"};
  return kSkip.find(text) != kSkip.end();
}

/// Joins the identifiers/`::` inside an annotation's parens into one
/// comma-separated list of lock names ("a_", "Stream::mutex").
std::vector<std::string> AnnotationArgs(const std::vector<Token>& tokens,
                                        size_t open, size_t close) {
  std::vector<std::string> args;
  std::string current;
  for (size_t i = open + 1; i < close; ++i) {
    if (IsPunct(tokens, i, ",")) {
      if (!current.empty()) args.push_back(current);
      current.clear();
      continue;
    }
    current += std::string(tokens[i].text);
  }
  if (!current.empty()) args.push_back(current);
  return args;
}

class ClassParser {
 public:
  ClassParser(const SourceFile& file, std::vector<ClassInfo>* out)
      : file_(file), tokens_(file.lexed.tokens), out_(out) {}

  void Parse() { Scan(0, tokens_.size(), ""); }

 private:
  /// Scans [begin, end) for class/struct definitions; recurses into their
  /// bodies both to parse members and to find nested classes.
  void Scan(size_t begin, size_t end, const std::string& outer) {
    for (size_t i = begin; i < end; ++i) {
      if (tokens_[i].kind != TokenKind::kIdentifier) continue;
      if (tokens_[i].text != "class" && tokens_[i].text != "struct") continue;
      if (i > 0 && (IsIdent(tokens_, i - 1, "enum") ||
                    IsIdent(tokens_, i - 1, "friend"))) {
        continue;
      }
      // Find the class name: last plain identifier before '{', ':', ';',
      // skipping attribute macros like SIGSUB_CAPABILITY("mutex").
      size_t j = i + 1;
      std::string name;
      int line = tokens_[i].line;
      bool definition = false;
      while (j < end) {
        const Token& t = tokens_[j];
        if (t.kind == TokenKind::kIdentifier) {
          if (IsPunct(tokens_, j + 1, "(")) {
            j = MatchingClose(tokens_, j + 1) + 1;  // Annotation macro.
            continue;
          }
          name = std::string(t.text);
          line = t.line;
          ++j;
          continue;
        }
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "{") {
            definition = true;
            break;
          }
          if (t.text == ";" || t.text == ">" || t.text == ",") {
            break;  // Forward declaration or template parameter.
          }
          if (t.text == ":") {  // Base clause; body brace follows.
            while (j < end && !IsPunct(tokens_, j, "{") &&
                   !IsPunct(tokens_, j, ";")) {
              ++j;
            }
            definition = IsPunct(tokens_, j, "{");
            break;
          }
        }
        ++j;
      }
      if (!definition || name.empty()) continue;
      size_t open = j;
      size_t close = MatchingClose(tokens_, open);
      std::string qualified = outer.empty() ? name : outer + "::" + name;
      ParseBody(open + 1, close, qualified, line);
      Scan(open + 1, close, qualified);
      i = close;
    }
  }

  void ParseBody(size_t begin, size_t end, const std::string& qualified,
                 int line) {
    ClassInfo info;
    info.name = qualified;
    info.file = &file_;
    info.line = line;

    size_t decl_begin = begin;
    for (size_t i = begin; i < end && i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "class" || t.text == "struct") &&
          !(i > 0 && IsIdent(tokens_, i - 1, "enum"))) {
        // Nested definition: handled by the caller's recursive Scan; skip
        // past it here (forward declarations just end at the ';').
        size_t j = i;
        while (j < end && !IsPunct(tokens_, j, "{") &&
               !IsPunct(tokens_, j, ";")) {
          ++j;
        }
        if (IsPunct(tokens_, j, "{")) j = MatchingClose(tokens_, j);
        while (j < end && !IsPunct(tokens_, j, ";")) ++j;
        i = j;
        decl_begin = i + 1;
        continue;
      }
      if (t.kind == TokenKind::kPunct && (t.text == "{" || t.text == "(")) {
        size_t close = MatchingClose(tokens_, i);
        if (t.text == "{" && !IsPunct(tokens_, close + 1, ";") &&
            !IsPunct(tokens_, close + 1, ",")) {
          // Inline function body (or nested scope): declaration over.
          decl_begin = close + 1;
        }
        i = close;
        continue;
      }
      if (t.kind == TokenKind::kPunct && t.text == ":" &&
          i == decl_begin + 1) {
        decl_begin = i + 1;  // Access specifier label.
        continue;
      }
      if (t.kind == TokenKind::kPunct && t.text == ";") {
        ParseMember(decl_begin, i, &info);
        decl_begin = i + 1;
      }
    }
    out_->push_back(std::move(info));
  }

  void ParseMember(size_t begin, size_t end, ClassInfo* info) {
    if (begin >= end) return;
    if (tokens_[begin].kind == TokenKind::kIdentifier &&
        IsKeyword(tokens_[begin].text)) {
      return;
    }
    // Separate annotation macros from the declaration proper.
    std::vector<size_t> decl;  // Indices of non-annotation tokens.
    Member member;
    bool guarded = false;
    bool confined = false;
    for (size_t i = begin; i < end; ++i) {
      const Token& t = tokens_[i];
      if (t.kind == TokenKind::kIdentifier &&
          t.text.rfind("SIGSUB_", 0) == 0 && IsPunct(tokens_, i + 1, "(")) {
        size_t close = MatchingClose(tokens_, i + 1);
        if (t.text == "SIGSUB_GUARDED_BY" ||
            t.text == "SIGSUB_PT_GUARDED_BY") {
          guarded = true;
        } else if (t.text == "SIGSUB_THREAD_CONFINED") {
          confined = true;
        } else if (t.text == "SIGSUB_ACQUIRED_BEFORE") {
          member.acquired_before = AnnotationArgs(tokens_, i + 1, close);
        } else if (t.text == "SIGSUB_ACQUIRED_AFTER") {
          member.acquired_after = AnnotationArgs(tokens_, i + 1, close);
        }
        i = close;
        continue;
      }
      decl.push_back(i);
    }
    if (decl.empty()) return;
    for (size_t idx : decl) {
      // `Foo& operator=(...) = delete;` has '=' before '(' and would
      // otherwise parse as a data member named "operator".
      if (IsIdent(tokens_, idx, "operator")) return;
    }

    // A '(' in the stripped declaration (outside template args) means a
    // function, unless an '=' introduced an initializer first.
    bool is_function = false;
    for (size_t k = 0; k < decl.size(); ++k) {
      const Token& t = tokens_[decl[k]];
      if (t.kind == TokenKind::kPunct && t.text == "=") break;
      if (t.kind == TokenKind::kPunct && t.text == "<") {
        // Template argument lists may contain parens: std::function<void()>.
        size_t after = SkipAngles(tokens_, decl[k]);
        while (k + 1 < decl.size() && decl[k + 1] < after) ++k;
        continue;
      }
      if (t.kind == TokenKind::kPunct && t.text == "(") {
        is_function = true;
        break;
      }
    }
    if (is_function) return;

    // Declarator name: last identifier before '=' / '[' / end.
    std::string name;
    int name_line = tokens_[decl.front()].line;
    bool is_const = false;
    bool is_atomic = false;
    bool saw_mutex = false;
    bool saw_condvar = false;
    for (size_t idx : decl) {
      const Token& t = tokens_[idx];
      if (t.kind == TokenKind::kPunct && (t.text == "=" || t.text == "[")) {
        break;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "const" || t.text == "constexpr") is_const = true;
      if (t.text == "atomic" || t.text.rfind("atomic_", 0) == 0) {
        is_atomic = true;
      }
      if (t.text == "Mutex") saw_mutex = true;
      if (t.text == "CondVar") saw_condvar = true;
      member.type_idents.push_back(std::string(t.text));
      name = std::string(t.text);
      name_line = t.line;
    }
    if (name.empty() || name == "Mutex" || name == "CondVar") {
      // `Mutex` as the last identifier means no declarator name — a
      // malformed or macro-heavy line; skip rather than guess.
      return;
    }
    member.name = name;
    member.line = name_line;
    member.is_mutex = saw_mutex;
    member.is_condvar = saw_condvar;
    member.exempt = guarded || confined || is_const || is_atomic;
    info->members.push_back(std::move(member));
  }

  const SourceFile& file_;
  const std::vector<Token>& tokens_;
  std::vector<ClassInfo>* out_;
};

/// Fully-qualified lock node name.
std::string NodeName(const ClassInfo& cls, const Member& m) {
  return cls.name + "::" + m.name;
}

struct Graph {
  // node -> (successor -> line where the edge was declared).
  std::map<std::string, std::map<std::string, int>> edges;
  std::map<std::string, const SourceFile*> node_file;

  void AddEdge(const std::string& from, const std::string& to,
               const SourceFile* file, int line) {
    edges[from][to] = line;
    edges[to];  // Ensure the node exists.
    if (node_file.find(from) == node_file.end()) node_file[from] = file;
    if (node_file.find(to) == node_file.end()) node_file[to] = file;
  }
};

/// Resolves an annotation argument to a known lock node: same class
/// first, then a unique suffix match anywhere, else the literal text.
std::string Resolve(const std::string& arg, const std::string& cls,
                    const std::set<std::string>& nodes) {
  std::string qualified = cls + "::" + arg;
  if (nodes.find(qualified) != nodes.end()) return qualified;
  std::string match;
  int count = 0;
  for (const std::string& node : nodes) {
    if (node == arg ||
        (node.size() > arg.size() + 2 &&
         node.compare(node.size() - arg.size() - 2, 2, "::") == 0 &&
         node.compare(node.size() - arg.size(), arg.size(), arg) == 0)) {
      match = node;
      ++count;
    }
  }
  return count == 1 ? match : arg;
}

}  // namespace

void RunLockOrderRule(Analysis* analysis) {
  std::vector<ClassInfo> classes;
  for (const SourceFile& file : analysis->files) {
    if (file.area != "src" && file.area != "bench" && file.area != "tools") {
      continue;  // Tests may use ad-hoc helpers; production code may not.
    }
    ClassParser(file, &classes).Parse();
  }

  // Unqualified names of classes that own a Mutex: a member of such a
  // type is internally synchronized and needs no annotation of its own.
  std::set<std::string> synchronized_types;
  for (const ClassInfo& cls : classes) {
    if (!cls.OwnsMutex()) continue;
    size_t sep = cls.name.rfind("::");
    synchronized_types.insert(
        sep == std::string::npos ? cls.name : cls.name.substr(sep + 2));
  }

  // --- discipline check: mutex-owning classes annotate every member.
  for (const ClassInfo& cls : classes) {
    if (!cls.OwnsMutex()) continue;
    for (const Member& m : cls.members) {
      if (m.is_mutex || m.is_condvar || m.exempt) continue;
      bool self_synchronized = false;
      for (const std::string& ident : m.type_idents) {
        if (ident != m.name &&
            synchronized_types.find(ident) != synchronized_types.end()) {
          self_synchronized = true;
        }
      }
      if (self_synchronized) continue;
      analysis->Report(
          *cls.file, m.line, "lock-order",
          "member '" + m.name + "' of mutex-owning class '" + cls.name +
              "' has no concurrency annotation — add SIGSUB_GUARDED_BY(mu), "
              "make it const/std::atomic, or mark it "
              "SIGSUB_THREAD_CONFINED(<owning thread>)");
    }
  }

  // --- global lock graph from annotations + order directives.
  std::set<std::string> nodes;
  for (const ClassInfo& cls : classes) {
    for (const Member& m : cls.members) {
      if (m.is_mutex) nodes.insert(NodeName(cls, m));
    }
  }
  Graph graph;
  for (const ClassInfo& cls : classes) {
    for (const Member& m : cls.members) {
      if (!m.is_mutex) continue;
      std::string self = NodeName(cls, m);
      for (const std::string& arg : m.acquired_before) {
        graph.AddEdge(self, Resolve(arg, cls.name, nodes), cls.file, m.line);
      }
      for (const std::string& arg : m.acquired_after) {
        graph.AddEdge(Resolve(arg, cls.name, nodes), self, cls.file, m.line);
      }
    }
  }
  for (const SourceFile& file : analysis->files) {
    for (const OrderDirective& d : file.lexed.order_directives) {
      graph.AddEdge(Resolve(d.before, "", nodes), Resolve(d.after, "", nodes),
                    &file, d.line);
    }
  }

  // --- cycle detection (DFS, three colors).
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black.
  std::vector<std::string> stack;
  bool reported = false;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto it = graph.edges.find(node);
        if (it != graph.edges.end()) {
          for (const auto& [next, line] : it->second) {
            if (reported) return;
            int c = color[next];
            if (c == 1) {
              // Found a cycle: render it from `next` around to `node`.
              std::string cycle = next;
              size_t from = stack.size();
              for (size_t k = 0; k < stack.size(); ++k) {
                if (stack[k] == next) {
                  from = k;
                  break;
                }
              }
              for (size_t k = from + 1; k < stack.size(); ++k) {
                cycle += " -> " + stack[k];
              }
              cycle += " -> " + next;
              const SourceFile* file = graph.node_file[node];
              analysis->Report(*file, line, "lock-order",
                               "lock acquisition order cycle: " + cycle);
              reported = true;
              return;
            }
            if (c == 0) visit(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, _] : graph.edges) {
    if (reported) break;
    if (color[node] == 0) visit(node);
  }
}

}  // namespace lint
}  // namespace sigsub
