#include "lint/lexer.h"

#include <cctype>

namespace sigsub {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the lint-relevant comment forms out of one line comment body
/// (the text after `//`).
void ParseComment(std::string_view body, int line, LexedFile* out) {
  body = TrimView(body);
  constexpr std::string_view kAllow = "sigsub-lint: allow(";
  constexpr std::string_view kExpect = "expect-lint:";
  constexpr std::string_view kOrder = "sigsub-lint: order ";
  if (body.substr(0, kAllow.size()) == kAllow) {
    std::string_view rest = body.substr(kAllow.size());
    size_t close = rest.find(')');
    if (close == std::string_view::npos) return;
    Suppression s;
    s.line = line;
    s.rule = std::string(rest.substr(0, close));
    std::string_view tail = TrimView(rest.substr(close + 1));
    if (!tail.empty() && tail.front() == ':') {
      s.reason = std::string(TrimView(tail.substr(1)));
    }
    out->suppressions.push_back(std::move(s));
    return;
  }
  if (body.substr(0, kExpect.size()) == kExpect) {
    // One marker may expect several rules: `// expect-lint: a, b`.
    std::string_view rest = body.substr(kExpect.size());
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view one = TrimView(rest.substr(0, comma));
      if (!one.empty()) {
        out->expectations.push_back(Expectation{line, std::string(one)});
      }
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
    return;
  }
  if (body.substr(0, kOrder.size()) == kOrder) {
    std::string_view rest = body.substr(kOrder.size());
    size_t lt = rest.find('<');
    if (lt == std::string_view::npos) return;
    OrderDirective d;
    d.line = line;
    d.before = std::string(TrimView(rest.substr(0, lt)));
    d.after = std::string(TrimView(rest.substr(lt + 1)));
    if (!d.before.empty() && !d.after.empty()) {
      out->order_directives.push_back(std::move(d));
    }
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view content) : src_(content) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        Preprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && Peek(1) == '"') {
        RawString();
        continue;
      }
      // Encoding prefixes on ordinary literals: u8"x", L'x', ...
      if ((c == 'u' || c == 'U' || c == 'L') && IsLiteralPrefix()) {
        continue;  // IsLiteralPrefix consumed the prefixed literal.
      }
      if (c == '"') {
        Quoted('"', TokenKind::kString);
        continue;
      }
      if (c == '\'') {
        Quoted('\'', TokenKind::kCharLiteral);
        continue;
      }
      if (IsIdentStart(c)) {
        Identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        Number();
        continue;
      }
      Punct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, size_t begin, size_t end, int line) {
    out_.tokens.push_back(Token{kind, src_.substr(begin, end - begin), line});
  }

  void LineComment() {
    size_t begin = pos_ + 2;
    size_t end = src_.find('\n', pos_);
    if (end == std::string_view::npos) end = src_.size();
    ParseComment(src_.substr(begin, end - begin), line_, &out_);
    pos_ = end;  // The '\n' is handled by the main loop (line count).
  }

  void BlockComment() {
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  void Preprocessor() {
    int line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\' && (Peek(1) == '\n' ||
                        (Peek(1) == '\r' && Peek(2) == '\n'))) {
        // Continuation: join, keep counting lines.
        pos_ += (Peek(1) == '\r') ? 3 : 2;
        ++line_;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && Peek(1) == '/') {
        size_t end = src_.find('\n', pos_);
        if (end == std::string_view::npos) end = src_.size();
        ParseComment(src_.substr(pos_ + 2, end - pos_ - 2), line_, &out_);
        pos_ = end;
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        BlockComment();
        text.push_back(' ');
        continue;
      }
      text.push_back(c);
      ++pos_;
    }
    out_.directives.push_back(Directive{line, std::move(text)});
  }

  /// Handles u8"..", u'..', L"..", U".." and uR"(..)" forms. Returns via
  /// side effect; true return means a literal was consumed.
  bool IsLiteralPrefix() {
    size_t i = pos_;
    if (src_[i] == 'u' && Peek(1) == '8') ++i;
    char next = i + 1 < src_.size() ? src_[i + 1] : '\0';
    if (next == '"' || next == '\'') {
      pos_ = i + 1;
      Quoted(next, next == '"' ? TokenKind::kString : TokenKind::kCharLiteral);
      return true;
    }
    if (next == 'R' && i + 2 < src_.size() && src_[i + 2] == '"') {
      pos_ = i + 1;
      RawString();
      return true;
    }
    return false;
  }

  void Quoted(char quote, TokenKind kind) {
    int line = line_;
    size_t begin = ++pos_;  // Skip the opening quote.
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == quote) break;
      if (c == '\n') ++line_;  // Unterminated; tolerate and keep counting.
      ++pos_;
    }
    Emit(kind, begin, pos_, line);
    if (pos_ < src_.size()) ++pos_;  // Closing quote.
  }

  void RawString() {
    // pos_ at 'R'. R"delim( ... )delim"
    int line = line_;
    size_t q = pos_ + 1;  // The '"'.
    size_t open = src_.find('(', q);
    if (open == std::string_view::npos) {
      pos_ = src_.size();
      return;
    }
    std::string closer = ")";
    closer.append(src_.substr(q + 1, open - q - 1));
    closer.push_back('"');
    size_t end = src_.find(closer, open + 1);
    if (end == std::string_view::npos) end = src_.size();
    for (size_t i = open; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') ++line_;
    }
    Emit(TokenKind::kString, open + 1, end, line);
    pos_ = end + closer.size();
    if (pos_ > src_.size()) pos_ = src_.size();
  }

  void Identifier() {
    size_t begin = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    Emit(TokenKind::kIdentifier, begin, pos_, line_);
  }

  void Number() {
    size_t begin = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '\'') {
        ++pos_;
        continue;
      }
      // Exponent signs: 1e-3, 0x1p+2.
      if ((c == '+' || c == '-') && pos_ > begin) {
        char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Emit(TokenKind::kNumber, begin, pos_, line_);
  }

  void Punct() {
    static constexpr std::string_view kThree[] = {"<<=", ">>=", "->*", "..."};
    static constexpr std::string_view kTwo[] = {
        "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
        "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", ".*"};
    size_t len = 1;
    std::string_view rest = src_.substr(pos_);
    for (std::string_view op : kThree) {
      if (rest.substr(0, 3) == op) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (std::string_view op : kTwo) {
        if (rest.substr(0, 2) == op) {
          len = 2;
          break;
        }
      }
    }
    Emit(TokenKind::kPunct, pos_, pos_ + len, line_);
    pos_ += len;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(std::string_view content) { return Lexer(content).Run(); }

std::string_view IncludePath(const Directive& directive) {
  std::string_view text = TrimView(directive.text);
  if (text.substr(0, 1) != "#") return {};
  text = TrimView(text.substr(1));
  constexpr std::string_view kInclude = "include";
  if (text.substr(0, kInclude.size()) != kInclude) return {};
  text = TrimView(text.substr(kInclude.size()));
  if (text.size() < 2) return {};
  char open = text.front();
  char close = open == '"' ? '"' : (open == '<' ? '>' : '\0');
  if (close == '\0') return {};
  size_t end = text.find(close, 1);
  if (end == std::string_view::npos) return {};
  return text.substr(1, end - 1);
}

}  // namespace lint
}  // namespace sigsub
