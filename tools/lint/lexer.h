#ifndef SIGSUB_TOOLS_LINT_LEXER_H_
#define SIGSUB_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sigsub {
namespace lint {

/// A real (if single-file) C++ lexer: it understands line and block
/// comments, string/char literals with escapes, raw string literals, and
/// preprocessor lines with backslash continuations. Rules therefore never
/// see a banned identifier inside a log message or a commented-out block —
/// the class of false positive the regex lint this replaces could only
/// avoid with per-line heuristics.
enum class TokenKind {
  kIdentifier,   // foo, std, SIGSUB_GUARDED_BY (keywords included).
  kNumber,       // 123, 0x1f, 1.5e-3, 1'000'000.
  kString,       // "..." / R"(...)" — text excludes the quotes.
  kCharLiteral,  // 'x'.
  kPunct,        // ::, ->, <<, or any single punctuation character.
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;  // View into the lexed buffer; keep it alive.
  int line = 0;           // 1-based.
};

/// One `// sigsub-lint: allow(<rule>): <reason>` suppression comment.
struct Suppression {
  int line = 0;
  std::string rule;
  std::string reason;  // Empty when the author omitted the reason.
};

/// One `// expect-lint: <rule>` golden-test marker (fixture files only).
struct Expectation {
  int line = 0;
  std::string rule;
};

/// One `// sigsub-lint: order A < B` cross-class lock-order directive.
/// The attribute form (SIGSUB_ACQUIRED_BEFORE) can only name members
/// visible in the annotated class's scope; the directive form documents
/// orders between locks of different classes for the lock-order graph.
struct OrderDirective {
  int line = 0;
  std::string before;
  std::string after;
};

/// A preprocessor line (continuations joined). `text` starts at '#'.
struct Directive {
  int line = 0;
  std::string text;
};

/// Everything the lexer extracts from one translation unit.
struct LexedFile {
  std::vector<Token> tokens;  // Code tokens only; no comments/preproc.
  std::vector<Directive> directives;
  std::vector<Suppression> suppressions;
  std::vector<Expectation> expectations;
  std::vector<OrderDirective> order_directives;
};

/// Lexes `content` (which must outlive the result — tokens are views).
LexedFile Lex(std::string_view content);

/// Extracts `path` from an `#include "path"` or `#include <path>`
/// directive; empty when the directive is not an include.
std::string_view IncludePath(const Directive& directive);

}  // namespace lint
}  // namespace sigsub

#endif  // SIGSUB_TOOLS_LINT_LEXER_H_
