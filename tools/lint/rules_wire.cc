// wire-codes: the protocol error enum is a contract with every client,
// so each ErrorCode must (a) actually be produced somewhere in
// src/server/ — a code no path emits is dead wire surface clients still
// have to handle — and (b) appear by wire name in the README's protocol
// documentation. Classifier functions (ErrorCodeName, IsRetryable) map
// over all codes by construction and do not count as production.

#include <cctype>
#include <string>
#include <vector>

#include "lint/analyzer.h"

namespace sigsub {
namespace lint {
namespace {

struct Enumerator {
  std::string name;  // "kProto"
  std::string wire;  // "EPROTO"
  int line = 0;
};

/// Wire name for an enumerator: kTooBig -> ETOOBIG.
std::string WireName(std::string_view enumerator) {
  std::string wire = "E";
  size_t start = enumerator.size() > 1 && enumerator[0] == 'k' ? 1 : 0;
  for (size_t i = start; i < enumerator.size(); ++i) {
    wire.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(enumerator[i]))));
  }
  return wire;
}

/// Parses `enum class ErrorCode ... { k..., k..., };` out of protocol.h.
std::vector<Enumerator> ParseErrorCodes(const SourceFile& file) {
  std::vector<Enumerator> codes;
  const auto& tokens = file.lexed.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (!IsIdent(tokens, i, "enum")) continue;
    size_t name_at = IsIdent(tokens, i + 1, "class") ? i + 2 : i + 1;
    if (!IsIdent(tokens, name_at, "ErrorCode")) continue;
    size_t open = name_at + 1;
    while (open < tokens.size() && !IsPunct(tokens, open, "{") &&
           !IsPunct(tokens, open, ";")) {
      ++open;  // Skip an underlying-type clause (`: uint8_t`).
    }
    if (!IsPunct(tokens, open, "{")) continue;
    size_t close = MatchingClose(tokens, open);
    bool expect_name = true;
    for (size_t j = open + 1; j < close; ++j) {
      if (expect_name && tokens[j].kind == TokenKind::kIdentifier) {
        codes.push_back(Enumerator{std::string(tokens[j].text),
                                   WireName(tokens[j].text),
                                   tokens[j].line});
        expect_name = false;
      } else if (IsPunct(tokens, j, ",")) {
        expect_name = true;
      }
    }
    return codes;
  }
  return codes;
}

/// Token ranges covered by the bodies of the named classifier functions.
struct Range {
  size_t begin;
  size_t end;
};

std::vector<Range> ClassifierBodies(const SourceFile& file) {
  static constexpr std::string_view kClassifiers[] = {"ErrorCodeName",
                                                      "IsRetryable"};
  std::vector<Range> ranges;
  const auto& tokens = file.lexed.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    bool classifier = false;
    for (std::string_view name : kClassifiers) {
      if (tokens[i].text == name) classifier = true;
    }
    if (!classifier || !IsPunct(tokens, i + 1, "(")) continue;
    size_t close = MatchingClose(tokens, i + 1);
    if (!IsPunct(tokens, close + 1, "{")) continue;  // Call, not definition.
    ranges.push_back(Range{close + 1, MatchingClose(tokens, close + 1)});
  }
  return ranges;
}

bool InRanges(const std::vector<Range>& ranges, size_t i) {
  for (const Range& r : ranges) {
    if (i >= r.begin && i <= r.end) return true;
  }
  return false;
}

}  // namespace

void RunWireCodesRule(Analysis* analysis) {
  const SourceFile* protocol = nullptr;
  for (const SourceFile& file : analysis->files) {
    if (file.area == "src" && file.subsystem == "server" && file.is_header &&
        file.rel.size() >= 10 &&
        file.rel.compare(file.rel.size() - 10, 10, "protocol.h") == 0) {
      protocol = &file;
      break;
    }
  }
  if (protocol == nullptr) return;  // Fixture trees without a server.
  std::vector<Enumerator> codes = ParseErrorCodes(*protocol);
  if (codes.empty()) return;

  for (const Enumerator& code : codes) {
    // (a) produced somewhere in src/server/*.cc outside the classifiers.
    bool produced = false;
    for (const SourceFile& file : analysis->files) {
      if (produced) break;
      if (file.area != "src" || file.subsystem != "server" || file.is_header) {
        continue;
      }
      std::vector<Range> skip = ClassifierBodies(file);
      const auto& tokens = file.lexed.tokens;
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind == TokenKind::kIdentifier &&
            tokens[i].text == code.name && !InRanges(skip, i)) {
          produced = true;
          break;
        }
      }
    }
    if (!produced) {
      analysis->Report(
          *protocol, code.line, "wire-codes",
          "ErrorCode::" + code.name +
              " is never produced in src/server/*.cc (outside the "
              "ErrorCodeName/IsRetryable classifiers) — dead wire surface; "
              "emit it or remove it from the protocol");
    }

    // (b) documented: the wire name appears in README.md.
    if (!analysis->readme.empty() &&
        analysis->readme.find(code.wire) == std::string::npos) {
      analysis->Report(
          *protocol, code.line, "wire-codes",
          "wire code " + code.wire + " (ErrorCode::" + code.name +
              ") is not documented in README.md — add it to the error/"
              "backpressure table");
    }
  }
}

}  // namespace lint
}  // namespace sigsub
