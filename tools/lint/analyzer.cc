#include "lint/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sigsub {
namespace lint {

namespace fs = std::filesystem;

std::vector<Diagnostic> Analysis::FinalizeDiagnostics() const {
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& file : files) by_rel[file.rel] = &file;

  std::vector<Diagnostic> result;
  for (const Diagnostic& diag : diagnostics_) {
    auto it = by_rel.find(diag.file);
    bool suppressed = false;
    if (it != by_rel.end()) {
      for (const Suppression& s : it->second->lexed.suppressions) {
        // A reason-less allow() does not suppress; it gets its own
        // finding below, so the original diagnostic stays visible too.
        // An allow() covers its own line and the one after it, so the
        // comment can stand alone above the statement it waives.
        if ((s.line == diag.line || s.line + 1 == diag.line) &&
            s.rule == diag.rule && !s.reason.empty()) {
          suppressed = true;
          break;
        }
      }
    }
    if (!suppressed) result.push_back(diag);
  }

  // The suppression contract: every waiver says why. A bare allow() is a
  // finding whether or not a rule fired on its line.
  for (const SourceFile& file : files) {
    for (const Suppression& s : file.lexed.suppressions) {
      if (s.reason.empty()) {
        result.push_back(Diagnostic{
            file.rel, s.line, "suppression-reason",
            "allow(" + s.rule + ") needs a reason: `// sigsub-lint: allow(" +
                s.rule + "): <why this is safe>`"});
      }
    }
  }

  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end(),
                           [](const Diagnostic& a, const Diagnostic& b) {
                             return !(a < b) && !(b < a);
                           }),
               result.end());
  return result;
}

const std::vector<Rule>& AllRules() {
  static const std::vector<Rule>* const kRules = new std::vector<Rule>{
      {"include-guard",
       "src/tools/tests/bench headers use SIGSUB_<PATH>_H_ guards",
       RunIncludeGuardRule},
      {"include-layering",
       "src/ subsystem includes follow the declared dependency DAG",
       RunIncludeLayeringRule},
      {"unchecked-result",
       "every Status/Result-returning call is consumed or explicitly "
       "discarded",
       RunUncheckedResultRule},
      {"lock-order",
       "lock annotations are acyclic and mutex-owning classes annotate "
       "every mutable member",
       RunLockOrderRule},
      {"wire-codes",
       "every server/protocol.h ErrorCode is produced in src/server/ and "
       "named in the README",
       RunWireCodesRule},
      {"raw-mutex",
       "std:: lockables appear only inside common/mutex.h",
       RunRawMutexRule},
      {"raw-io",
       "raw ::write/::fsync appear only inside the posix_io/fault "
       "injection shims",
       RunRawIoRule},
      {"unsafe-call",
       "no libc calls with hidden process-global state (lgamma, strtok, "
       "rand, static-tm formatters)",
       RunUnsafeCallRule},
      {"iteration-order",
       "no unordered containers in serialization paths",
       RunIterationOrderRule},
      {"audit-path",
       "the scalar X2 kernel path calls no non-deterministic libm",
       RunAuditPathRule},
  };
  return *kRules;
}

namespace {

bool HasSuffix(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void LoadFile(const fs::path& path, const std::string& rel,
              Analysis* analysis) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();

  SourceFile file;
  file.rel = rel;
  file.content = buffer.str();
  size_t slash = rel.find('/');
  file.area = rel.substr(0, slash);
  if (file.area == "src" && slash != std::string::npos) {
    size_t next = rel.find('/', slash + 1);
    if (next != std::string::npos) {
      file.subsystem = rel.substr(slash + 1, next - slash - 1);
    }
  }
  file.is_header = HasSuffix(rel, ".h");
  file.lexed = Lex(file.content);
  analysis->files.push_back(std::move(file));
}

}  // namespace

bool LoadTree(const std::string& root, Analysis* analysis) {
  fs::path root_path(root);
  if (!fs::is_directory(root_path / "src")) return false;
  analysis->root = fs::absolute(root_path).string();

  static constexpr std::string_view kAreas[] = {"src", "tools", "bench",
                                                "fuzz", "tests"};
  for (std::string_view area : kAreas) {
    fs::path dir = root_path / area;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();  // Deliberate-violation trees.
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string name = it->path().filename().string();
      if (HasSuffix(name, ".h") || HasSuffix(name, ".cc") ||
          HasSuffix(name, ".cpp")) {
        paths.push_back(it->path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& path : paths) {
      std::string rel = fs::relative(path, root_path).generic_string();
      LoadFile(path, rel, analysis);
    }
  }

  std::ifstream readme(root_path / "README.md", std::ios::binary);
  if (readme) {
    std::ostringstream buffer;
    buffer << readme.rdbuf();
    analysis->readme = buffer.str();
  }
  return true;
}

std::vector<Diagnostic> RunRules(Analysis* analysis,
                                 const std::set<std::string>& rule_filter) {
  for (const Rule& rule : AllRules()) {
    if (!rule_filter.empty() &&
        rule_filter.find(std::string(rule.name)) == rule_filter.end()) {
      continue;
    }
    rule.run(analysis);
  }
  return analysis->FinalizeDiagnostics();
}

// ------------------------------------------------------- token utilities

bool IsIdent(const std::vector<Token>& tokens, size_t i,
             std::string_view text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier &&
         tokens[i].text == text;
}

bool IsPunct(const std::vector<Token>& tokens, size_t i,
             std::string_view text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
         tokens[i].text == text;
}

size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    std::string_view t = tokens[i].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

size_t MatchingOpen(const std::vector<Token>& tokens, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    std::string_view t = tokens[i].text;
    if (t == ")" || t == "}" || t == "]") ++depth;
    if (t == "(" || t == "{" || t == "[") {
      --depth;
      if (depth == 0) return i;
    }
    if (i == 0) break;
  }
  return static_cast<size_t>(-1);
}

size_t SkipAngles(const std::vector<Token>& tokens, size_t i) {
  if (!IsPunct(tokens, i, "<")) return i + 1;
  int depth = 0;
  for (size_t j = i; j < tokens.size(); ++j) {
    const Token& t = tokens[j];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == "<<") depth += 2;
      if (t.text == ">") --depth;
      if (t.text == ">>") depth -= 2;
      if (t.text == ";" || t.text == "{") return i + 1;  // Not a list.
      if (depth <= 0) return j + 1;
    }
  }
  return i + 1;
}

}  // namespace lint
}  // namespace sigsub
