// The call-level bans (the "banned API" family), one rule id each so
// suppressions stay precise:
//
// raw-mutex       std:: lockables outside common/mutex.h — the wrappers
//                 carry the clang thread-safety capability attributes;
//                 a bare std::mutex is invisible to -Wthread-safety.
// raw-io          ::write / ::fsync outside the posix_io/fault_injection
//                 shims — raw syscalls bypass the crash-injection hooks
//                 the durability tests count on.
// unsafe-call     libc calls that mutate hidden process-global state and
//                 race under the thread pool (lgamma's signgam, strtok,
//                 the static-tm time formatters, the rand family).
// iteration-order unordered containers in serialization paths — their
//                 iteration order is hash-seed-dependent, so anything
//                 they emit byte-for-byte is nondeterministic.
// audit-path      transcendental libm in the scalar X2 kernel — those
//                 functions are not correctly rounded, so results drift
//                 across libm versions; the kernel must stay on +-*/,
//                 sqrt/fma/fabs (IEEE-exact) only.

#include <set>
#include <string>

#include "lint/analyzer.h"

namespace sigsub {
namespace lint {
namespace {

bool HasPrefix(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

void RunRawMutexRule(Analysis* analysis) {
  static const auto* const kNames = new std::set<std::string_view>{
      "mutex",        "timed_mutex", "recursive_mutex",
      "shared_mutex", "lock_guard",  "unique_lock",
      "scoped_lock",  "shared_lock", "condition_variable",
      "condition_variable_any"};
  for (const SourceFile& file : analysis->files) {
    if (file.area != "src" || file.rel == "src/common/mutex.h") continue;
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 2; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || kNames->count(t.text) == 0) {
        continue;
      }
      // The ban is on the name `std::<lockable>` anywhere, not just in
      // declarations — aliases would otherwise launder the type past it.
      if (IsPunct(tokens, i - 1, "::") && IsIdent(tokens, i - 2, "std")) {
        analysis->Report(
            file, t.line, "raw-mutex",
            "std::" + std::string(t.text) +
                " outside common/mutex.h — use sigsub::Mutex / MutexLock / "
                "CondVar so clang thread-safety analysis sees the lock");
      }
    }
  }
}

void RunRawIoRule(Analysis* analysis) {
  for (const SourceFile& file : analysis->files) {
    if (file.area != "src" || file.rel == "src/common/posix_io.cc" ||
        file.rel == "src/common/fault_injection.cc") {
      continue;
    }
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 1; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier ||
          (t.text != "write" && t.text != "fsync")) {
        continue;
      }
      if (IsPunct(tokens, i - 1, "::") && IsPunct(tokens, i + 1, "(")) {
        analysis->Report(
            file, t.line, "raw-io",
            "raw ::" + std::string(t.text) +
                "() bypasses the fault-injection shim — use "
                "common/posix_io.h WriteFdAll/SyncFd");
      }
    }
  }
}

void RunUnsafeCallRule(Analysis* analysis) {
  static const auto* const kNames = new std::set<std::string_view>{
      "lgamma",    "lgammaf", "lgammal", "strtok", "localtime", "gmtime",
      "asctime",   "ctime",   "rand",    "srand",  "drand48",   "lrand48"};
  for (const SourceFile& file : analysis->files) {
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || kNames->count(t.text) == 0) {
        continue;
      }
      if (!IsPunct(tokens, i + 1, "(")) continue;
      // Member calls (`gen.rand()`) are some other type's business.
      if (i >= 1 &&
          (IsPunct(tokens, i - 1, ".") || IsPunct(tokens, i - 1, "->"))) {
        continue;
      }
      analysis->Report(
          file, t.line, "unsafe-call",
          std::string(t.text) +
              "() mutates hidden process-global state and races under the "
              "thread pool — use the _r variant or a local "
              "generator/formatter");
    }
  }
}

void RunIterationOrderRule(Analysis* analysis) {
  static const auto* const kNames = new std::set<std::string_view>{
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const SourceFile& file : analysis->files) {
    // Everything persist/ writes is on-disk format; serde.cc and
    // protocol.cc are the wire encoders.
    if (!HasPrefix(file.rel, "src/persist/") &&
        file.rel != "src/api/serde.cc" &&
        file.rel != "src/server/protocol.cc") {
      continue;
    }
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || kNames->count(t.text) == 0) {
        continue;
      }
      analysis->Report(
          file, t.line, "iteration-order",
          "std::" + std::string(t.text) +
              " in a serialization path — iteration order is hash-seed "
              "dependent, so emitted bytes would be nondeterministic; use "
              "std::map/std::set or sort before emitting");
    }
  }
}

void RunAuditPathRule(Analysis* analysis) {
  static const auto* const kNames = new std::set<std::string_view>{
      "exp",    "expf",  "expm1", "log",  "logf",  "log2",  "log10",
      "log1p",  "pow",   "powf",  "sin",  "cos",   "tan",   "sinh",
      "cosh",   "tanh",  "asin",  "acos", "atan",  "atan2", "tgamma",
      "lgamma", "erf",   "erfc",  "cbrt", "hypot"};
  for (const SourceFile& file : analysis->files) {
    if (file.rel != "src/core/x2_kernel.cc" &&
        file.rel != "src/core/x2_dispatch.h") {
      continue;
    }
    const auto& tokens = file.lexed.tokens;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || kNames->count(t.text) == 0) {
        continue;
      }
      if (!IsPunct(tokens, i + 1, "(")) continue;
      if (i >= 1 &&
          (IsPunct(tokens, i - 1, ".") || IsPunct(tokens, i - 1, "->"))) {
        continue;  // Member function of some unrelated type.
      }
      analysis->Report(
          file, t.line, "audit-path",
          std::string(t.text) +
              "() in the scalar X2 kernel path — transcendental libm is "
              "not correctly rounded and drifts across libm versions; the "
              "audit kernel may only use +-*/ and IEEE-exact "
              "sqrt/fma/fabs (hoist the transcendental to the caller)");
    }
  }
}

}  // namespace lint
}  // namespace sigsub
