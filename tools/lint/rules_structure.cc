// include-guard and include-layering: the file- and subsystem-structure
// rules. Layering is the machine-checked form of the architecture
// README documents: a back-edge include (core pulling in engine, say)
// is how layer discipline dies one convenience at a time.

#include <array>
#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.h"

namespace sigsub {
namespace lint {
namespace {

std::string NormalizeSpaces(std::string_view text) {
  std::string out;
  bool in_space = false;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

std::string ExpectedGuard(const SourceFile& file) {
  // src/core/mss.h -> SIGSUB_CORE_MSS_H_ (the src/ prefix is dropped);
  // tests/testing/test_util.h -> SIGSUB_TESTS_TESTING_TEST_UTIL_H_.
  std::string rel = file.rel;
  constexpr std::string_view kSrc = "src/";
  if (rel.compare(0, kSrc.size(), kSrc) == 0) rel = rel.substr(kSrc.size());
  std::string token = "SIGSUB_";
  for (char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      token.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      token.push_back('_');
    }
  }
  token.push_back('_');
  return token;
}

std::vector<std::string> ContentLines(const std::string& content) {
  std::vector<std::string> lines;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

void RunIncludeGuardRule(Analysis* analysis) {
  for (const SourceFile& file : analysis->files) {
    if (!file.is_header) continue;
    const std::string guard = ExpectedGuard(file);
    const std::string ifndef = "#ifndef " + guard;
    const std::string define = "#define " + guard;

    const Directive* first = nullptr;
    for (const Directive& d : file.lexed.directives) {
      std::string text = NormalizeSpaces(d.text);
      if (text.rfind("#ifndef", 0) == 0 || text.rfind("#if ", 0) == 0) {
        first = &d;
        break;
      }
    }
    if (first == nullptr) {
      analysis->Report(file, 1, "include-guard", "missing `" + ifndef + "`");
      continue;
    }
    if (NormalizeSpaces(first->text) != ifndef) {
      analysis->Report(file, first->line, "include-guard",
                       "first guard line is `" + NormalizeSpaces(first->text) +
                           "`, want `" + ifndef + "`");
      continue;
    }
    bool defined = false;
    for (const Directive& d : file.lexed.directives) {
      if (d.line == first->line + 1 && NormalizeSpaces(d.text) == define) {
        defined = true;
        break;
      }
    }
    if (!defined) {
      analysis->Report(file, first->line + 1, "include-guard",
                       "missing `" + define + "` right after the #ifndef");
      continue;
    }
    // The closing line is checked textually: the convention pins the
    // trailing comment (`#endif  // GUARD`), which the directive text
    // cannot carry (comments are lexed separately).
    std::vector<std::string> lines = ContentLines(file.content);
    int last_nonblank = -1;
    for (int i = static_cast<int>(lines.size()) - 1; i >= 0; --i) {
      std::string norm = NormalizeSpaces(lines[static_cast<size_t>(i)]);
      if (!norm.empty()) {
        last_nonblank = i;
        break;
      }
    }
    const std::string endif = "#endif  // " + guard;
    if (last_nonblank < 0 ||
        lines[static_cast<size_t>(last_nonblank)] != endif) {
      analysis->Report(file, last_nonblank + 1, "include-guard",
                       "header must end with `" + endif + "`");
    }
  }
}

namespace {

/// The declared subsystem dependency DAG over src/. An include from a
/// row's subsystem is legal only when the included subsystem appears in
/// the row (or is the subsystem itself). README "Architecture & layering"
/// documents the same table; change both together.
const std::map<std::string, std::vector<std::string>>& LayerDag() {
  static const auto* const kDag =
      new std::map<std::string, std::vector<std::string>>{
          {"common", {}},
          {"stats", {"common"}},
          {"seq", {"common"}},
          {"io", {"common", "seq"}},
          {"core", {"common", "stats", "seq"}},
          {"api", {"common", "stats", "seq", "core"}},
          {"engine", {"common", "stats", "seq", "io", "core", "api"}},
          {"persist",
           {"common", "stats", "seq", "io", "core", "api", "engine"}},
          {"server",
           {"common", "stats", "seq", "io", "core", "api", "engine",
            "persist"}},
          {"cli",
           {"common", "stats", "seq", "io", "core", "api", "engine",
            "persist", "server"}},
      };
  return *kDag;
}

}  // namespace

void RunIncludeLayeringRule(Analysis* analysis) {
  const auto& dag = LayerDag();
  for (const SourceFile& file : analysis->files) {
    if (file.area != "src") continue;
    // Files directly under src/ (the sigsub.h umbrella) sit above every
    // subsystem and may include anything.
    if (file.subsystem.empty()) continue;
    auto row = dag.find(file.subsystem);
    for (const Directive& d : file.lexed.directives) {
      // Only quoted includes are project includes; <...> is the system.
      if (d.text.find('"') == std::string::npos) continue;
      std::string_view path = IncludePath(d);
      if (path.empty()) continue;
      size_t slash = path.find('/');
      std::string included = slash == std::string_view::npos
                                 ? std::string()
                                 : std::string(path.substr(0, slash));
      if (path == "sigsub.h") {
        // The umbrella transitively includes every subsystem; only the
        // top layer may pull it in.
        if (file.subsystem != "cli") {
          analysis->Report(file, d.line, "include-layering",
                           "subsystem '" + file.subsystem +
                               "' must not include the sigsub.h umbrella "
                               "(it would pull in every layer above it)");
        }
        continue;
      }
      if (included.empty() || dag.find(included) == dag.end()) continue;
      if (included == file.subsystem) continue;
      if (row == dag.end()) {
        analysis->Report(file, d.line, "include-layering",
                         "subsystem '" + file.subsystem +
                             "' is not in the declared dependency DAG "
                             "(tools/lint/rules_structure.cc); add it with "
                             "an explicit dependency row");
        break;
      }
      bool allowed = false;
      for (const std::string& dep : row->second) {
        if (dep == included) {
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        std::string deps;
        for (const std::string& dep : row->second) {
          if (!deps.empty()) deps += ", ";
          deps += dep;
        }
        analysis->Report(
            file, d.line, "include-layering",
            "back-edge: '" + file.subsystem + "' may not include '" +
                included + "' (declared dependencies: " +
                (deps.empty() ? "none" : deps) + ")");
      }
    }
  }
}

}  // namespace lint
}  // namespace sigsub
