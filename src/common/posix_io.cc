#include "common/posix_io.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/fault_injection.h"
#include "common/str_util.h"

namespace sigsub {

void IgnoreSigpipe() {
  // signal() is specified to be idempotent and thread-safe enough for
  // this use; SIG_IGN survives exec of nothing (we never exec).
  std::signal(SIGPIPE, SIG_IGN);
}

ssize_t RawWrite(int fd, const void* data, size_t size) {
  if (fault::Enabled()) {
    fault::Decision decision = fault::OnCall(fault::Op::kWrite);
    if (decision.fire) {
      switch (decision.action) {
        case fault::Action::kShortWrite:
          // Half the bytes land. Sub-2-byte writes cannot be shortened
          // without turning into a 0-return the retry loops would spin
          // on, so those proceed in full.
          if (size >= 2) return ::write(fd, data, size / 2);
          break;
        case fault::Action::kKill:
          // A torn record: half the bytes land, then the process dies
          // as if the kernel scheduled a crash mid-write.
          if (size >= 2) (void)::write(fd, data, size / 2);
          fault::KillNow();
        case fault::Action::kErrno:
          errno = decision.error;
          return -1;
      }
    }
  }
  return ::write(fd, data, size);
}

ssize_t RawRead(int fd, void* data, size_t size) {
  if (fault::Enabled()) {
    fault::Decision decision = fault::OnCall(fault::Op::kRead);
    if (decision.fire) {
      if (decision.action == fault::Action::kKill) fault::KillNow();
      errno = decision.error;
      return -1;
    }
  }
  return ::read(fd, data, size);
}

int RawFsync(int fd) {
  if (fault::Enabled()) {
    fault::Decision decision = fault::OnCall(fault::Op::kFsync);
    if (decision.fire) {
      if (decision.action == fault::Action::kKill) fault::KillNow();
      errno = decision.error;
      return -1;
    }
  }
  return ::fsync(fd);
}

Result<std::string> ReadFdToEof(int fd) {
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = RawRead(fd, buffer, sizeof(buffer));
    if (n > 0) {
      out.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return out;  // EOF.
    if (errno == EINTR) continue;
    return Status::IOError(
        StrCat("read(fd=", fd, "): ", std::strerror(errno)));
  }
}

Status WriteFdAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = RawWrite(fd, data.data() + written, data.size() - written);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(
        StrCat("write(fd=", fd, "): ", std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such file: ", path));
    }
    return Status::IOError(
        StrCat("open(", path, "): ", std::strerror(errno)));
  }
  Result<std::string> contents = ReadFdToEof(fd);
  ::close(fd);
  return contents;
}

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  const std::string tmp = StrCat(path, ".tmp");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("open(", tmp, "): ", std::strerror(errno)));
  }
  Status status = WriteFdAll(fd, data);
  if (status.ok() && RawFsync(fd) != 0) {
    status = Status::IOError(
        StrCat("fsync(", tmp, "): ", std::strerror(errno)));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IOError(
        StrCat("close(", tmp, "): ", std::strerror(errno)));
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IOError(
        StrCat("rename(", tmp, " -> ", path, "): ", std::strerror(errno)));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // Make the rename itself durable: fsync the containing directory.
  // Best effort — some filesystems refuse directory fsync and the data
  // file is already synced.
  size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)RawFsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

int64_t MonotonicMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sigsub
