#include "common/posix_io.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <unistd.h>

#include "common/str_util.h"

namespace sigsub {

void IgnoreSigpipe() {
  // signal() is specified to be idempotent and thread-safe enough for
  // this use; SIG_IGN survives exec of nothing (we never exec).
  std::signal(SIGPIPE, SIG_IGN);
}

Result<std::string> ReadFdToEof(int fd) {
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      out.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return out;  // EOF.
    if (errno == EINTR) continue;
    return Status::IOError(
        StrCat("read(fd=", fd, "): ", std::strerror(errno)));
  }
}

Status WriteFdAll(int fd, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(
        StrCat("write(fd=", fd, "): ", std::strerror(errno)));
  }
  return Status::OK();
}

int64_t MonotonicMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sigsub
