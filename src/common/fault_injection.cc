#include "common/fault_injection.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "common/result.h"
#include "common/str_util.h"

namespace sigsub {
namespace fault {

namespace internal {
std::atomic<bool> armed{false};
}  // namespace internal

namespace {

// The armed fault, kept in plain atomics (no lock) so OnCall stays
// async-signal-safe: the server's wakeup write runs from signal
// context and must be able to pass through the shim.
std::atomic<int> armed_op{0};
std::atomic<int64_t> armed_nth{0};
std::atomic<int> armed_action{0};
std::atomic<int> armed_errno{0};
std::atomic<int64_t> call_counts[3]{};

void ResetCounters() {
  for (auto& count : call_counts) count.store(0, std::memory_order_relaxed);
}

Result<Op> ParseOp(std::string_view text) {
  if (text == "write") return Op::kWrite;
  if (text == "read") return Op::kRead;
  if (text == "fsync") return Op::kFsync;
  return Status::InvalidArgument(
      StrCat("fault op must be write|read|fsync, got \"", std::string(text),
             "\""));
}

struct FaultKind {
  Action action;
  int error;
};

Result<FaultKind> ParseFault(std::string_view text) {
  if (text == "short") return FaultKind{Action::kShortWrite, 0};
  if (text == "kill") return FaultKind{Action::kKill, 0};
  if (text == "ENOSPC") return FaultKind{Action::kErrno, ENOSPC};
  if (text == "EIO") return FaultKind{Action::kErrno, EIO};
  if (text == "EPIPE") return FaultKind{Action::kErrno, EPIPE};
  // Raw errno number for anything not named above.
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("fault must be ENOSPC|EIO|EPIPE|short|kill or an errno "
                 "number, got \"",
                 std::string(text), "\""));
    }
    value = value * 10 + (c - '0');
  }
  if (text.empty() || value <= 0) {
    return Status::InvalidArgument("fault errno must be a positive integer");
  }
  return FaultKind{Action::kErrno, value};
}

}  // namespace

Status Arm(std::string_view spec) {
  size_t first = spec.find(':');
  size_t last = spec.rfind(':');
  if (first == std::string_view::npos || first == last) {
    return Status::InvalidArgument(
        StrCat("fault spec must be op:nth:fault, got \"", std::string(spec),
               "\""));
  }
  SIGSUB_ASSIGN_OR_RETURN(Op op, ParseOp(spec.substr(0, first)));
  std::string_view nth_text = spec.substr(first + 1, last - first - 1);
  int64_t nth = 0;
  for (char c : nth_text) {
    if (c < '0' || c > '9') nth = -1;
    if (nth < 0) break;
    nth = nth * 10 + (c - '0');
  }
  if (nth_text.empty() || nth <= 0) {
    return Status::InvalidArgument(
        StrCat("fault nth must be a positive integer, got \"",
               std::string(nth_text), "\""));
  }
  SIGSUB_ASSIGN_OR_RETURN(FaultKind kind, ParseFault(spec.substr(last + 1)));
  if (kind.action == Action::kShortWrite && op != Op::kWrite) {
    return Status::InvalidArgument("short faults apply to write only");
  }

  ResetCounters();
  armed_op.store(static_cast<int>(op), std::memory_order_relaxed);
  armed_nth.store(nth, std::memory_order_relaxed);
  armed_action.store(static_cast<int>(kind.action),
                     std::memory_order_relaxed);
  armed_errno.store(kind.error, std::memory_order_relaxed);
  internal::armed.store(true, std::memory_order_release);
  return Status::OK();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("SIGSUB_FAULT");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return Arm(spec);
}

void Disarm() {
  internal::armed.store(false, std::memory_order_release);
  ResetCounters();
}

int64_t CallCount(Op op) {
  return call_counts[static_cast<int>(op)].load(std::memory_order_relaxed);
}

Decision OnCall(Op op) {
  Decision decision;
  int64_t count = 1 + call_counts[static_cast<int>(op)].fetch_add(
                          1, std::memory_order_relaxed);
  // Re-checked here (not just in the wrappers' Enabled() fast path) so a
  // disarmed shim never fires a stale spec regardless of caller.
  if (!internal::armed.load(std::memory_order_relaxed)) return decision;
  if (static_cast<int>(op) != armed_op.load(std::memory_order_relaxed)) {
    return decision;
  }
  if (count != armed_nth.load(std::memory_order_relaxed)) return decision;
  decision.fire = true;
  decision.action =
      static_cast<Action>(armed_action.load(std::memory_order_relaxed));
  decision.error = armed_errno.load(std::memory_order_relaxed);
  return decision;
}

void KillNow() {
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be blocked, but keep the noreturn contract honest for
  // exotic environments (e.g. a debugger swallowing the signal).
  std::abort();
}

}  // namespace fault
}  // namespace sigsub
