#ifndef SIGSUB_COMMON_STATUS_H_
#define SIGSUB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace sigsub {

/// Canonical error codes used across the library. Modeled after the
/// Arrow/RocksDB status idiom: library entry points that validate input
/// return a Status (or Result<T>); validated hot-path kernels do not.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIOError = 6,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK state carries no
/// allocation; error states carry a code and a message.
///
/// [[nodiscard]] on the class makes every function returning a Status
/// warn when the caller drops the value on the floor; sigsub_lint's
/// unchecked-result rule enforces the same contract compiler-independently.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string* const kEmpty = new std::string();
    return rep_ ? rep_->message : *kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // nullptr means OK.
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}
inline bool operator!=(const Status& a, const Status& b) { return !(a == b); }

}  // namespace sigsub

#endif  // SIGSUB_COMMON_STATUS_H_
