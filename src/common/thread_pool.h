#ifndef SIGSUB_COMMON_THREAD_POOL_H_
#define SIGSUB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sigsub {

/// A fixed-size work-stealing thread pool. Tasks are distributed
/// round-robin across per-worker deques; each worker services its own
/// deque LIFO (hot caches) and steals FIFO from its neighbours when it
/// runs dry, so a handful of long scans cannot strand short jobs behind
/// them. This is the execution substrate for engine::Engine batches and
/// for the sharded parallel MSS scan (core::FindMssParallel).
///
/// Semantics:
///   - Submit() may be called from any thread, including pool workers.
///   - Wait() blocks until every task submitted so far has finished. It
///     must be called from OUTSIDE the pool's workers: a task calling
///     Wait() would wait on its own completion and deadlock. Fork-join
///     inside a task should instead Submit() and let the orchestrating
///     thread Wait() (how Engine uses it).
///   - The destructor waits for in-flight tasks, then joins the workers.
///   - Tasks must not throw (the library is exception-free by design).
class ThreadPool {
 public:
  /// `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Total tasks stolen from another worker's deque (instrumentation for
  /// tests and benchmarks; monotonic).
  int64_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> queue SIGSUB_GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t worker_index);
  bool TryRunOneTask(size_t worker_index);

  // Both vectors are built in the constructor and joined/destroyed in the
  // destructor; their shape never changes while workers run (per-worker
  // queue state lives behind each Worker::mutex).
  std::vector<std::unique_ptr<Worker>> workers_ SIGSUB_THREAD_CONFINED(init);
  std::vector<std::thread> threads_ SIGSUB_THREAD_CONFINED(init);

  // Wakes idle workers when work arrives or the pool shuts down. Guards
  // no data of its own: the predicate state (`stop_`, `pending_`) is
  // atomic, and Submit holds it only to publish `pending_` without
  // racing a worker between its predicate check and its sleep.
  Mutex wake_mutex_;
  CondVar wake_cv_;

  // Signals Wait() when the last outstanding task retires. Deque locks
  // come before the completion lock in the task pipeline; no path holds
  // both (TryRunOneTask releases the deque lock before touching it).
  // sigsub-lint: order ThreadPool::Worker::mutex < ThreadPool::done_mutex_
  Mutex done_mutex_;
  CondVar done_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<int64_t> pending_{0};      // Queued, not yet dequeued.
  std::atomic<int64_t> outstanding_{0};  // Submitted, not yet finished.
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<int64_t> steals_{0};
};

}  // namespace sigsub

#endif  // SIGSUB_COMMON_THREAD_POOL_H_
