#ifndef SIGSUB_COMMON_RESULT_H_
#define SIGSUB_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace sigsub {

/// Result<T> holds either a value of type T or a non-OK Status, mirroring
/// arrow::Result / absl::StatusOr. Accessing the value of an errored Result
/// is a programming error and aborts (checked in all build modes).
/// [[nodiscard]]: dropping a Result drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SIGSUB_CHECK(!status_.ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }

  // Ref-qualified so `SomeCall().status()` on a temporary Result yields an
  // owning Status instead of a reference into the dying temporary (caught
  // as a stack-use-after-scope by ASan before the qualifiers existed).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    SIGSUB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SIGSUB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SIGSUB_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Status or Result expression) and aborts with the
/// rendered status if it is an error. The sanctioned way to consume a
/// must-succeed Status whose failure would be a programming error —
/// sigsub_lint's unchecked-result rule accepts it as a consumer.
#define SIGSUB_CHECK_OK(expr)                                        \
  do {                                                               \
    const auto& _sigsub_check_ok = (expr);                           \
    SIGSUB_CHECK_MSG(_sigsub_check_ok.ok(), "%s",                    \
                     ::sigsub::internal::StatusOf(_sigsub_check_ok)  \
                         .ToString()                                 \
                         .c_str());                                  \
  } while (false)

namespace internal {
inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
const Status& StatusOf(const Result<T>& result) {
  return result.status();
}
}  // namespace internal

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is an error.
#define SIGSUB_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::sigsub::Status _sigsub_status = (expr);        \
    if (!_sigsub_status.ok()) return _sigsub_status; \
  } while (false)

/// Evaluates `rexpr` (a Result<T> expression); on success assigns the value
/// to `lhs`, otherwise returns the error status from the enclosing function.
#define SIGSUB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SIGSUB_ASSIGN_OR_RETURN_IMPL_(                                   \
      SIGSUB_MACRO_CONCAT_(_sigsub_result, __LINE__), lhs, rexpr)

#define SIGSUB_MACRO_CONCAT_INNER_(x, y) x##y
#define SIGSUB_MACRO_CONCAT_(x, y) SIGSUB_MACRO_CONCAT_INNER_(x, y)
#define SIGSUB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

}  // namespace sigsub

#endif  // SIGSUB_COMMON_RESULT_H_
