#ifndef SIGSUB_COMMON_THREAD_ANNOTATIONS_H_
#define SIGSUB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros. Under clang the
/// annotations make the locking discipline machine-checked at compile
/// time (CI builds src/ with -Wthread-safety and promotes the group to
/// errors); under every other compiler they expand to nothing, so the
/// annotated code stays portable.
///
/// Usage rules for new code (see README "Static analysis"):
///   * every shared member is either std::atomic or GUARDED_BY a
///     common::Mutex member declared in the same class;
///   * private helpers that expect a lock held take REQUIRES(mutex_),
///     public entry points that take the lock themselves are EXCLUDES;
///   * raw std::mutex / std::lock_guard never appear outside
///     common/mutex.h — tools/lint.py enforces this.
#if defined(__clang__) && (!defined(SWIG))
#define SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#define SIGSUB_CAPABILITY(x) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define SIGSUB_SCOPED_CAPABILITY \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define SIGSUB_GUARDED_BY(x) SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define SIGSUB_PT_GUARDED_BY(x) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define SIGSUB_ACQUIRED_BEFORE(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define SIGSUB_ACQUIRED_AFTER(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define SIGSUB_REQUIRES(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define SIGSUB_REQUIRES_SHARED(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define SIGSUB_ACQUIRE(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define SIGSUB_ACQUIRE_SHARED(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define SIGSUB_RELEASE(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define SIGSUB_RELEASE_SHARED(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define SIGSUB_TRY_ACQUIRE(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define SIGSUB_EXCLUDES(...) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define SIGSUB_ASSERT_CAPABILITY(x) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define SIGSUB_RETURN_CAPABILITY(x) \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define SIGSUB_NO_THREAD_SAFETY_ANALYSIS \
  SIGSUB_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

/// Documents that a member of a mutex-owning class is NOT shared: it is
/// touched only by `owner` (a thread name, or `init` for members written
/// during construction/destruction and immutable while threads run).
/// Expands to nothing for every compiler — the annotation exists for
/// readers and for sigsub_lint's lock-order rule, which requires every
/// mutable member of a mutex-owning class to say who protects it
/// (GUARDED_BY / atomic / const / this).
#define SIGSUB_THREAD_CONFINED(owner)

#endif  // SIGSUB_COMMON_THREAD_ANNOTATIONS_H_
