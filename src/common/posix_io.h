#ifndef SIGSUB_COMMON_POSIX_IO_H_
#define SIGSUB_COMMON_POSIX_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace sigsub {

/// EINTR-hardened POSIX I/O shared by the CLI's stdin ingestion and the
/// sigsubd network front end. Every loop here retries on EINTR: a signal
/// delivery (SIGTERM during drain, a profiler tick, a child reaping) must
/// never surface as a spurious short read to callers.

/// Ignores SIGPIPE process-wide (idempotent). Without this, a peer that
/// closes its socket (or a `sigsub_cli ... | head` pipe) kills the whole
/// process on the next write; with it, writes fail with EPIPE and flow
/// through the normal Status error path instead.
void IgnoreSigpipe();

/// Reads `fd` to EOF, retrying interrupted reads. Used for `--input=-`
/// stdin ingestion; works on pipes, files, and terminals alike.
Result<std::string> ReadFdToEof(int fd);

/// Writes all of `data`, retrying interrupted and short writes. IOError
/// carries errno text on failure (EPIPE when the peer vanished).
Status WriteFdAll(int fd, const std::string& data);

/// Monotonic milliseconds since an arbitrary epoch (steady clock; immune
/// to wall-clock jumps). The daemon's timeout arithmetic uses this.
int64_t MonotonicMillis();

}  // namespace sigsub

#endif  // SIGSUB_COMMON_POSIX_IO_H_
