#ifndef SIGSUB_COMMON_POSIX_IO_H_
#define SIGSUB_COMMON_POSIX_IO_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace sigsub {

/// EINTR-hardened POSIX I/O shared by the CLI's stdin ingestion and the
/// sigsubd network front end. Every loop here retries on EINTR: a signal
/// delivery (SIGTERM during drain, a profiler tick, a child reaping) must
/// never surface as a spurious short read to callers.

/// Ignores SIGPIPE process-wide (idempotent). Without this, a peer that
/// closes its socket (or a `sigsub_cli ... | head` pipe) kills the whole
/// process on the next write; with it, writes fail with EPIPE and flow
/// through the normal Status error path instead.
void IgnoreSigpipe();

/// Single-shot syscall wrappers under the fault-injection shim
/// (common/fault_injection.h): every write/read/fsync the library issues
/// flows through these, so tests can inject short writes, ENOSPC/EIO,
/// and kill-points at exact call counts (tools/lint.py bans the raw
/// calls everywhere else in src/). Semantics match the raw syscalls —
/// errno on failure, EINTR NOT retried here — and RawWrite stays
/// async-signal-safe (the daemon's wakeup pipe writes from a signal
/// handler).
ssize_t RawWrite(int fd, const void* data, size_t size);
ssize_t RawRead(int fd, void* data, size_t size);
int RawFsync(int fd);

/// Reads `fd` to EOF, retrying interrupted reads. Used for `--input=-`
/// stdin ingestion; works on pipes, files, and terminals alike.
Result<std::string> ReadFdToEof(int fd);

/// Writes all of `data`, retrying interrupted and short writes. IOError
/// carries errno text on failure (EPIPE when the peer vanished).
Status WriteFdAll(int fd, const std::string& data);

/// Reads the entire regular file at `path`. NotFound when it does not
/// exist (callers treat that as a clean cold start); IOError otherwise.
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `data`: writes `path`.tmp, fsyncs it,
/// renames over `path`, then fsyncs the containing directory so the
/// rename itself is durable. After a crash at any point, `path` holds
/// either the old bytes or the new bytes — never a mix.
Status AtomicWriteFile(const std::string& path, const std::string& data);

/// Monotonic milliseconds since an arbitrary epoch (steady clock; immune
/// to wall-clock jumps). The daemon's timeout arithmetic uses this.
int64_t MonotonicMillis();

}  // namespace sigsub

#endif  // SIGSUB_COMMON_POSIX_IO_H_
