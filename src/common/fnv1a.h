#ifndef SIGSUB_COMMON_FNV1A_H_
#define SIGSUB_COMMON_FNV1A_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace sigsub {

/// Incremental 64-bit FNV-1a hasher. Used to fingerprint sequences, null
/// models and canonical query bytes for the engine's result cache; not
/// cryptographic, but stable across runs and platforms (the inputs are
/// hashed as explicit little-endian byte streams).
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
  }

  void UpdateU64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<unsigned char>(value >> (8 * i));
      state_ *= kPrime;
    }
  }

  void UpdateI64(int64_t value) {
    UpdateU64(static_cast<uint64_t>(value));
  }

  /// Hashes the exact bit pattern, so fingerprints distinguish any two
  /// doubles that compare unequal (and conflate +0.0/-0.0 only by design
  /// of the caller).
  void UpdateDouble(double value) { UpdateU64(std::bit_cast<uint64_t>(value)); }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

}  // namespace sigsub

#endif  // SIGSUB_COMMON_FNV1A_H_
