#include "common/thread_pool.h"

#include <utility>

namespace sigsub {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t index = static_cast<size_t>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(workers_[index]->mutex);
    workers_[index]->queue.push_back(std::move(task));
  }
  {
    // Held while publishing `pending_` so a worker between its predicate
    // check and its sleep cannot miss this wakeup.
    MutexLock lock(wake_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  // The caller (a non-worker thread; see the header contract) helps
  // drain the queues before blocking, so a Wait() right after a burst of
  // Submits contributes a thread instead of just sleeping.
  for (size_t i = 0; i < workers_.size(); ++i) {
    while (outstanding_.load(std::memory_order_acquire) > 0 &&
           TryRunOneTask(i)) {
    }
  }
  MutexLock lock(done_mutex_);
  while (outstanding_.load(std::memory_order_acquire) != 0) {
    done_cv_.Wait(done_mutex_);
  }
}

bool ThreadPool::TryRunOneTask(size_t worker_index) {
  std::function<void()> task;
  // Own deque first (LIFO: the task most likely to be cache-hot)...
  {
    Worker& own = *workers_[worker_index];
    MutexLock lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.back());
      own.queue.pop_back();
    }
  }
  // ...then steal from the neighbours, oldest task first.
  if (!task) {
    for (size_t offset = 1; offset < workers_.size() && !task; ++offset) {
      Worker& victim =
          *workers_[(worker_index + offset) % workers_.size()];
      MutexLock lock(victim.mutex);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());
        victim.queue.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!task) return false;

  pending_.fetch_sub(1, std::memory_order_release);
  task();
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(done_mutex_);
    done_cv_.NotifyAll();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    if (TryRunOneTask(worker_index)) continue;
    {
      MutexLock lock(wake_mutex_);
      while (!stop_.load(std::memory_order_acquire) &&
             pending_.load(std::memory_order_acquire) <= 0) {
        wake_cv_.Wait(wake_mutex_);
      }
      if (stop_.load(std::memory_order_acquire) &&
          pending_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
  }
}

}  // namespace sigsub
