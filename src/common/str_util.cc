#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace sigsub {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sigsub
