#ifndef SIGSUB_COMMON_FAULT_INJECTION_H_
#define SIGSUB_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/status.h"

namespace sigsub {
namespace fault {

/// Test-only syscall fault injection for the durability subsystem. The
/// RawWrite/RawRead/RawFsync wrappers in common/posix_io.h consult this
/// shim on every call, so a test can make exactly the Nth write in the
/// process fail with ENOSPC, return a short count, or SIGKILL the
/// process mid-record — the crash windows the persist/ journal and
/// snapshot code must survive. Production pays one relaxed atomic load
/// per syscall when disarmed; everything else is behind that branch.
///
/// Arming grammar (also the SIGSUB_FAULT environment variable):
///
///   <op>:<nth>:<fault>
///
///   op     write | read | fsync       which wrapper fires
///   nth    1-based call count         fires on the nth call after arming
///   fault  ENOSPC | EIO | EPIPE | <errno number>   fail with that errno
///          short                      write half the bytes (write only)
///          kill                       write half, then raise SIGKILL
///
/// Examples: `write:3:ENOSPC` (third write fails, no space),
/// `fsync:1:EIO` (first fsync fails), `write:5:kill` (torn record:
/// half of the fifth write lands, then the process dies).

enum class Op : int { kWrite = 0, kRead = 1, kFsync = 2 };

enum class Action : int { kErrno = 0, kShortWrite = 1, kKill = 2 };

/// What the armed fault decided for one syscall. `fire` false means the
/// call proceeds normally.
struct Decision {
  bool fire = false;
  Action action = Action::kErrno;
  int error = 0;  // errno value for Action::kErrno.
};

namespace internal {
extern std::atomic<bool> armed;
}  // namespace internal

/// True when a fault is armed. Inline and relaxed: the disarmed fast
/// path in the I/O wrappers is a single predictable-false branch.
inline bool Enabled() {
  return internal::armed.load(std::memory_order_relaxed);
}

/// Arms one fault from the grammar above, resetting the per-op call
/// counters. InvalidArgument names the offending field on a bad spec.
Status Arm(std::string_view spec);

/// Arms from the SIGSUB_FAULT environment variable. OK (and a no-op)
/// when the variable is unset or empty; otherwise the Arm() status.
Status ArmFromEnv();

/// Disarms and resets the call counters. Idempotent.
void Disarm();

/// Calls to `op` observed since the last Arm()/Disarm().
int64_t CallCount(Op op);

/// posix_io.cc hook: counts the call and reports whether the armed
/// fault fires on it. Async-signal-safe (atomics only) so the server's
/// signal-handler wakeup write stays legal through the shim.
Decision OnCall(Op op);

/// Raises SIGKILL (abort as a fallback); does not return. The I/O
/// wrapper calls this for Action::kKill after its partial write.
[[noreturn]] void KillNow();

}  // namespace fault
}  // namespace sigsub

#endif  // SIGSUB_COMMON_FAULT_INJECTION_H_
