#ifndef SIGSUB_COMMON_CHECK_H_
#define SIGSUB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// SIGSUB_CHECK(cond): aborts with a diagnostic if `cond` is false. Active in
/// all build modes; reserve it for programming errors (precondition
/// violations inside the library), not for user-input validation, which
/// should return Status.
#define SIGSUB_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SIGSUB_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// SIGSUB_CHECK with a custom printf-style message appended.
#define SIGSUB_CHECK_MSG(cond, ...)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SIGSUB_CHECK failed at %s:%d: %s: ", __FILE__, \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// Debug-only checks; compiled out in NDEBUG builds (hot paths). The
/// NDEBUG expansion still mentions the condition inside an unevaluated
/// sizeof, so it is type-checked and every variable it names counts as
/// used — release builds neither execute the check nor emit
/// -Wunused-variable for state that exists only to be checked.
#ifdef NDEBUG
#define SIGSUB_DCHECK(cond)          \
  do {                               \
    (void)sizeof((cond) ? 1 : 0);    \
  } while (false)
#define SIGSUB_DCHECK_MSG(cond, ...) \
  do {                               \
    (void)sizeof((cond) ? 1 : 0);    \
  } while (false)
#else
#define SIGSUB_DCHECK(cond) SIGSUB_CHECK(cond)
#define SIGSUB_DCHECK_MSG(cond, ...) SIGSUB_CHECK_MSG(cond, __VA_ARGS__)
#endif

#endif  // SIGSUB_COMMON_CHECK_H_
