#ifndef SIGSUB_COMMON_CHECK_H_
#define SIGSUB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// SIGSUB_CHECK(cond): aborts with a diagnostic if `cond` is false. Active in
/// all build modes; reserve it for programming errors (precondition
/// violations inside the library), not for user-input validation, which
/// should return Status.
#define SIGSUB_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SIGSUB_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// SIGSUB_CHECK with a custom printf-style message appended.
#define SIGSUB_CHECK_MSG(cond, ...)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SIGSUB_CHECK failed at %s:%d: %s: ", __FILE__, \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

/// Debug-only check; compiled out in NDEBUG builds (hot paths).
#ifdef NDEBUG
#define SIGSUB_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define SIGSUB_DCHECK(cond) SIGSUB_CHECK(cond)
#endif

#endif  // SIGSUB_COMMON_CHECK_H_
