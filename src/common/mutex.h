#ifndef SIGSUB_COMMON_MUTEX_H_
#define SIGSUB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace sigsub {

/// Annotated mutual-exclusion wrappers. These are the only place in the
/// library where the raw standard-library primitives appear
/// (tools/lint.py enforces that); everything else declares a
/// `common::Mutex`, marks the state it protects `SIGSUB_GUARDED_BY` it,
/// and lets clang's -Wthread-safety prove the discipline at compile time.
///
/// The wrappers are deliberately minimal — Lock/Unlock/TryLock, a scoped
/// MutexLock, and a CondVar whose Wait REQUIRES the mutex. Condition
/// waits are written as explicit `while (!condition) cv.Wait(mu);` loops
/// at the call site rather than predicate lambdas: the analysis sees the
/// guarded reads in the frame that holds the lock, so the loop form is
/// provably clean where a lambda predicate would not be.
class SIGSUB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SIGSUB_ACQUIRE() { mu_.lock(); }
  void Unlock() SIGSUB_RELEASE() { mu_.unlock(); }
  bool TryLock() SIGSUB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock. `MutexLock lock(mu_);` — the annotated replacement for
/// std::lock_guard everywhere outside common/.
class SIGSUB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SIGSUB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SIGSUB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a common::Mutex at each Wait. Spurious
/// wakeups are possible (as with the underlying std primitive): always
/// re-test the condition in a while loop around Wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously
  /// woken), and reacquires `mu` before returning.
  void Wait(Mutex& mu) SIGSUB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller still owns the reacquired mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sigsub

#endif  // SIGSUB_COMMON_MUTEX_H_
