#ifndef SIGSUB_COMMON_STR_UTIL_H_
#define SIGSUB_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sigsub {

/// Concatenates the streamable arguments into a single std::string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  ((oss << args), ...);
  return oss.str();
}

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace sigsub

#endif  // SIGSUB_COMMON_STR_UTIL_H_
