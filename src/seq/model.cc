#include "seq/model.h"

#include <cmath>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {
namespace {

Status ValidateDistribution(std::span<const double> probs,
                            std::string_view what) {
  if (probs.size() < 2) {
    return Status::InvalidArgument(
        StrCat(what, " needs at least 2 entries, got ", probs.size()));
  }
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (!(probs[i] > 0.0)) {
      return Status::InvalidArgument(StrCat(
          what, " entries must be strictly positive; entry ", i, " is ",
          probs[i]));
    }
    total += probs[i];
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrCat(what, " must sum to 1, got ", total));
  }
  return Status::OK();
}

std::vector<double> CumulativeOf(std::span<const double> probs) {
  std::vector<double> cum(probs.size());
  double running = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    running += probs[i];
    cum[i] = running;
  }
  cum.back() = 1.0;  // Guard against rounding drift at the top.
  return cum;
}

uint8_t SampleFromCumulative(std::span<const double> cum, double u) {
  // Binary search the first index with cum[i] > u.
  size_t lo = 0, hi = cum.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cum[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<uint8_t>(lo);
}

}  // namespace

MultinomialModel::MultinomialModel(std::vector<double> probs)
    : probs_(std::move(probs)), cumulative_(CumulativeOf(probs_)) {}

Result<MultinomialModel> MultinomialModel::Make(std::vector<double> probs) {
  SIGSUB_RETURN_IF_ERROR(ValidateDistribution(probs, "probability vector"));
  if (probs.size() > 255) {
    return Status::InvalidArgument(
        StrCat("alphabet too large: ", probs.size(), " > 255"));
  }
  return MultinomialModel(std::move(probs));
}

MultinomialModel MultinomialModel::Uniform(int k) {
  SIGSUB_CHECK(k >= 2 && k <= 255);
  return MultinomialModel(std::vector<double>(k, 1.0 / k));
}

MultinomialModel MultinomialModel::Geometric(int k) {
  SIGSUB_CHECK(k >= 2 && k <= 62);  // 2^-62 underflows usefulness.
  std::vector<double> probs(k);
  double total = 0.0;
  double w = 1.0;
  for (int i = 0; i < k; ++i) {
    w /= 2.0;
    probs[i] = w;
    total += w;
  }
  for (double& p : probs) p /= total;
  return MultinomialModel(std::move(probs));
}

MultinomialModel MultinomialModel::Harmonic(int k) {
  SIGSUB_CHECK(k >= 2 && k <= 255);
  std::vector<double> probs(k);
  double total = 0.0;
  for (int i = 0; i < k; ++i) {
    probs[i] = 1.0 / static_cast<double>(i + 1);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return MultinomialModel(std::move(probs));
}

uint8_t MultinomialModel::SampleSymbol(double u) const {
  SIGSUB_DCHECK(u >= 0.0 && u < 1.0);
  return SampleFromCumulative(cumulative_, u);
}

MarkovModel::MarkovModel(int k, std::vector<double> transitions,
                         std::vector<double> initial)
    : k_(k),
      transitions_(std::move(transitions)),
      row_cumulative_(transitions_.size()),
      initial_(std::move(initial)),
      initial_cumulative_(CumulativeOf(initial_)) {
  for (int i = 0; i < k_; ++i) {
    double running = 0.0;
    for (int j = 0; j < k_; ++j) {
      running += transitions_[i * k_ + j];
      row_cumulative_[i * k_ + j] = running;
    }
    row_cumulative_[i * k_ + (k_ - 1)] = 1.0;
  }
}

Result<MarkovModel> MarkovModel::Make(int k, std::vector<double> transitions,
                                      std::vector<double> initial) {
  if (k < 2 || k > 255) {
    return Status::InvalidArgument(StrCat("invalid alphabet size ", k));
  }
  if (transitions.size() != static_cast<size_t>(k) * k) {
    return Status::InvalidArgument(
        StrCat("transition matrix must have ", k * k, " entries, got ",
               transitions.size()));
  }
  if (initial.size() != static_cast<size_t>(k)) {
    return Status::InvalidArgument(
        StrCat("initial distribution must have ", k, " entries, got ",
               initial.size()));
  }
  SIGSUB_RETURN_IF_ERROR(
      ValidateDistribution(initial, "initial distribution"));
  for (int i = 0; i < k; ++i) {
    SIGSUB_RETURN_IF_ERROR(ValidateDistribution(
        std::span<const double>(transitions).subspan(i * k, k),
        StrCat("transition row ", i)));
  }
  return MarkovModel(k, std::move(transitions), std::move(initial));
}

MarkovModel MarkovModel::PaperFamily(int k) {
  SIGSUB_CHECK(k >= 2 && k <= 62);
  std::vector<double> transitions(static_cast<size_t>(k) * k);
  for (int i = 0; i < k; ++i) {
    double total = 0.0;
    for (int j = 0; j < k; ++j) {
      int d = ((i - j) % k + k) % k;
      transitions[i * k + j] = std::pow(2.0, -static_cast<double>(d));
      total += transitions[i * k + j];
    }
    for (int j = 0; j < k; ++j) transitions[i * k + j] /= total;
  }
  std::vector<double> initial(k, 1.0 / k);
  return MarkovModel(k, std::move(transitions), std::move(initial));
}

MarkovModel MarkovModel::BiasedBinary(double p_same) {
  SIGSUB_CHECK(p_same > 0.0 && p_same < 1.0);
  std::vector<double> transitions = {p_same, 1.0 - p_same,  //
                                     1.0 - p_same, p_same};
  std::vector<double> initial = {0.5, 0.5};
  return MarkovModel(2, std::move(transitions), std::move(initial));
}

uint8_t MarkovModel::SampleInitial(double u) const {
  return SampleFromCumulative(initial_cumulative_, u);
}

uint8_t MarkovModel::SampleNext(uint8_t current, double u) const {
  SIGSUB_DCHECK(current < k_);
  return SampleFromCumulative(
      std::span<const double>(row_cumulative_).subspan(current * k_, k_), u);
}

std::vector<double> MarkovModel::StationaryDistribution() const {
  std::vector<double> pi(initial_);
  std::vector<double> next(k_);
  for (int iter = 0; iter < 10000; ++iter) {
    for (int j = 0; j < k_; ++j) {
      double sum = 0.0;
      for (int i = 0; i < k_; ++i) sum += pi[i] * transitions_[i * k_ + j];
      next[j] = sum;
    }
    double diff = 0.0;
    for (int j = 0; j < k_; ++j) diff += std::fabs(next[j] - pi[j]);
    pi.swap(next);
    if (diff < 1e-14) break;
  }
  return pi;
}

}  // namespace seq
}  // namespace sigsub
