#include "seq/rng.h"

#include "common/check.h"

namespace sigsub {
namespace seq {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int s) { return (x << s) | (x >> (64 - s)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start at the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97f4A7C15ULL;
  }
}

uint64_t Rng::NextUint64() {
  uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SIGSUB_CHECK(bound > 0);
  // Rejection sampling on the top of the range to remove modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::NextBernoulli(double p) {
  SIGSUB_DCHECK(p >= 0.0 && p <= 1.0);
  return NextDouble() < p;
}

Rng Rng::Split() {
  ++split_counter_;
  uint64_t child_seed = seed_ ^ (0xA5A5A5A55A5A5A5AULL * split_counter_);
  child_seed ^= NextUint64();
  return Rng(child_seed);
}

}  // namespace seq
}  // namespace sigsub
