#ifndef SIGSUB_SEQ_ALPHABET_H_
#define SIGSUB_SEQ_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sigsub {
namespace seq {

/// Symbol identifier: index into an Alphabet, 0 <= Symbol < k <= 255.
using Symbol = uint8_t;

/// A finite alphabet Σ = {a_1..a_k}. Maps between printable characters and
/// dense symbol ids. The paper treats k as a constant; we support k up to
/// 255.
class Alphabet {
 public:
  /// Builds an alphabet from distinct printable characters, e.g. "ACGT".
  static Result<Alphabet> FromCharacters(std::string_view chars);

  /// The k-letter alphabet {'a','b',...}; requires 2 <= k <= 26 for
  /// printable mapping, otherwise falls back to ids without glyphs.
  static Alphabet Canonical(int k);

  /// The binary alphabet {'0','1'}.
  static Alphabet Binary();

  int size() const { return static_cast<int>(chars_.size()); }

  /// Character glyph of symbol `s` (requires s < size()).
  char CharOf(Symbol s) const;

  /// Symbol id of character `c`; NotFound if absent.
  Result<Symbol> SymbolOf(char c) const;

  bool Contains(char c) const { return lookup_[static_cast<uint8_t>(c)] >= 0; }

  /// All glyphs in symbol order.
  const std::string& characters() const { return chars_; }

 private:
  explicit Alphabet(std::string chars);

  std::string chars_;
  // lookup_[byte] = symbol id or -1.
  std::vector<int16_t> lookup_;
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_ALPHABET_H_
