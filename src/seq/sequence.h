#ifndef SIGSUB_SEQ_SEQUENCE_H_
#define SIGSUB_SEQ_SEQUENCE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "seq/alphabet.h"

namespace sigsub {
namespace seq {

/// A string over a k-symbol alphabet, stored as dense symbol ids. This is
/// the `S` of the paper; positions are 0-based here (the paper is 1-based).
class Sequence {
 public:
  /// Empty sequence over an alphabet of size k.
  explicit Sequence(int alphabet_size);

  /// Wraps existing symbol data (each value must be < alphabet_size).
  static Result<Sequence> FromSymbols(int alphabet_size,
                                      std::vector<uint8_t> symbols);

  /// Decodes a character string using `alphabet`.
  static Result<Sequence> FromString(const Alphabet& alphabet,
                                     std::string_view text);

  int alphabet_size() const { return alphabet_size_; }
  int64_t size() const { return static_cast<int64_t>(symbols_.size()); }
  bool empty() const { return symbols_.empty(); }

  uint8_t operator[](int64_t i) const { return symbols_[i]; }
  std::span<const uint8_t> symbols() const { return symbols_; }

  void Append(uint8_t symbol);
  void Reserve(int64_t n) { symbols_.reserve(n); }

  /// Renders symbols back to characters with `alphabet` (alphabet size must
  /// be >= this sequence's alphabet size).
  std::string ToString(const Alphabet& alphabet) const;

  /// Renders the substring [start, end) to characters.
  std::string SubstringToString(const Alphabet& alphabet, int64_t start,
                                int64_t end) const;

  /// Count vector {Y_1..Y_k} of the substring [start, end); O(end - start).
  /// For repeated queries use PrefixCounts.
  std::vector<int64_t> CountsInRange(int64_t start, int64_t end) const;

 private:
  Sequence(int alphabet_size, std::vector<uint8_t> symbols);

  int alphabet_size_;
  std::vector<uint8_t> symbols_;
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_SEQUENCE_H_
