#include "seq/sequence.h"

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {

Sequence::Sequence(int alphabet_size) : alphabet_size_(alphabet_size) {
  SIGSUB_CHECK(alphabet_size >= 2 && alphabet_size <= 255);
}

Sequence::Sequence(int alphabet_size, std::vector<uint8_t> symbols)
    : alphabet_size_(alphabet_size), symbols_(std::move(symbols)) {}

Result<Sequence> Sequence::FromSymbols(int alphabet_size,
                                       std::vector<uint8_t> symbols) {
  if (alphabet_size < 2 || alphabet_size > 255) {
    return Status::InvalidArgument(
        StrCat("invalid alphabet size ", alphabet_size));
  }
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] >= alphabet_size) {
      return Status::InvalidArgument(
          StrCat("symbol ", static_cast<int>(symbols[i]), " at position ", i,
                 " out of range for alphabet size ", alphabet_size));
    }
  }
  return Sequence(alphabet_size, std::move(symbols));
}

Result<Sequence> Sequence::FromString(const Alphabet& alphabet,
                                      std::string_view text) {
  std::vector<uint8_t> symbols;
  symbols.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    SIGSUB_ASSIGN_OR_RETURN(Symbol s, alphabet.SymbolOf(text[i]));
    symbols.push_back(s);
  }
  return Sequence(alphabet.size(), std::move(symbols));
}

void Sequence::Append(uint8_t symbol) {
  SIGSUB_DCHECK(symbol < alphabet_size_);
  symbols_.push_back(symbol);
}

std::string Sequence::ToString(const Alphabet& alphabet) const {
  return SubstringToString(alphabet, 0, size());
}

std::string Sequence::SubstringToString(const Alphabet& alphabet,
                                        int64_t start, int64_t end) const {
  SIGSUB_CHECK(start >= 0 && start <= end && end <= size());
  SIGSUB_CHECK(alphabet.size() >= alphabet_size_);
  std::string out;
  out.reserve(static_cast<size_t>(end - start));
  for (int64_t i = start; i < end; ++i) {
    out.push_back(alphabet.CharOf(symbols_[i]));
  }
  return out;
}

std::vector<int64_t> Sequence::CountsInRange(int64_t start, int64_t end) const {
  SIGSUB_CHECK(start >= 0 && start <= end && end <= size());
  std::vector<int64_t> counts(alphabet_size_, 0);
  for (int64_t i = start; i < end; ++i) ++counts[symbols_[i]];
  return counts;
}

}  // namespace seq
}  // namespace sigsub
