#ifndef SIGSUB_SEQ_GENERATORS_H_
#define SIGSUB_SEQ_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "seq/model.h"
#include "seq/rng.h"
#include "seq/sequence.h"

namespace sigsub {
namespace seq {

/// String generators for every family the paper evaluates (Section 7.1):
/// the null model (uniform multinomial), arbitrary multinomial, geometric,
/// harmonic ("Zapian"), first-order Markov, and the regime-switching
/// generator used to plant ground-truth anomalies in the application
/// benchmarks.

/// i.i.d. draws from `model`.
Sequence GenerateMultinomial(const MultinomialModel& model, int64_t n,
                             Rng& rng);

/// The paper's "null model" string: uniform probabilities over k symbols.
Sequence GenerateNull(int k, int64_t n, Rng& rng);

/// First-order Markov chain draws from `model`.
Sequence GenerateMarkov(const MarkovModel& model, int64_t n, Rng& rng);

/// Binary string from the defective-RNG model of the cryptology application
/// (Section 7.4): Pr[S[i+1] == S[i]] = p_same.
Sequence GenerateBiasedBinary(double p_same, int64_t n, Rng& rng);

/// A segment of a regime-switching generation plan: `length` characters
/// drawn i.i.d. from `probs` (must match the alphabet size of the plan).
struct Regime {
  int64_t length = 0;
  std::vector<double> probs;
};

/// Concatenates i.i.d. segments with per-segment distributions; used to
/// plant statistically significant substrings with known boundaries
/// (application datasets, integration tests).
Result<Sequence> GenerateRegimes(int alphabet_size,
                                 const std::vector<Regime>& regimes, Rng& rng);

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_GENERATORS_H_
