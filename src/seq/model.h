#ifndef SIGSUB_SEQ_MODEL_H_
#define SIGSUB_SEQ_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sigsub {
namespace seq {

/// The memoryless Bernoulli (multinomial) null model of the paper: each
/// letter is drawn i.i.d. from P = {p_1..p_k}, Σ p_i = 1, p_i > 0.
class MultinomialModel {
 public:
  /// Validates and normalizes nothing: `probs` must already sum to 1 within
  /// 1e-9 and be strictly positive.
  static Result<MultinomialModel> Make(std::vector<double> probs);

  /// Uniform model over k symbols (the paper's "null model" strings).
  static MultinomialModel Uniform(int k);

  /// Geometric model: p_i ∝ 2^{-i} (paper Section 7.1.2(a)).
  static MultinomialModel Geometric(int k);

  /// Harmonic / Zipf model: p_i ∝ 1/i (paper Section 7.1.2(b), the figure's
  /// "Zapian" label).
  static MultinomialModel Harmonic(int k);

  int alphabet_size() const { return static_cast<int>(probs_.size()); }
  std::span<const double> probs() const { return probs_; }
  double prob(int symbol) const { return probs_[symbol]; }

  /// Cumulative probabilities, cum[i] = p_0 + ... + p_i (cum[k-1] == 1).
  std::span<const double> cumulative() const { return cumulative_; }

  /// Maps u in [0,1) to a symbol by inverse-CDF lookup.
  uint8_t SampleSymbol(double u) const;

 private:
  explicit MultinomialModel(std::vector<double> probs);

  std::vector<double> probs_;
  std::vector<double> cumulative_;
};

/// First-order Markov chain over k symbols. Used for the paper's "Markov
/// string" family (transition probability of a_j following a_i proportional
/// to 1/2^{(i-j) mod k}) and for the biased random-number-generator model of
/// the cryptology application (Section 7.4).
class MarkovModel {
 public:
  /// `transitions` is row-major k×k; each row must sum to 1 within 1e-9.
  /// `initial` is the distribution of the first character.
  static Result<MarkovModel> Make(int k, std::vector<double> transitions,
                                  std::vector<double> initial);

  /// The paper's Markov family: T[i][j] ∝ 1/2^{(i-j) mod k}, uniform start.
  static MarkovModel PaperFamily(int k);

  /// Binary RNG model with Pr[next == current] = p_same (paper Table 2).
  static MarkovModel BiasedBinary(double p_same);

  int alphabet_size() const { return k_; }
  double transition(int from, int to) const {
    return transitions_[from * k_ + to];
  }
  std::span<const double> initial() const { return initial_; }

  /// Samples the first symbol from `u` in [0,1).
  uint8_t SampleInitial(double u) const;
  /// Samples the successor of `current` from `u` in [0,1).
  uint8_t SampleNext(uint8_t current, double u) const;

  /// Stationary distribution (power iteration); useful for choosing the
  /// null-model P when scoring Markov-generated strings.
  std::vector<double> StationaryDistribution() const;

 private:
  MarkovModel(int k, std::vector<double> transitions,
              std::vector<double> initial);

  int k_;
  std::vector<double> transitions_;       // k*k row-major.
  std::vector<double> row_cumulative_;    // k*k row-major cumsums.
  std::vector<double> initial_;
  std::vector<double> initial_cumulative_;
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_MODEL_H_
