#ifndef SIGSUB_SEQ_GRID_H_
#define SIGSUB_SEQ_GRID_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "seq/model.h"
#include "seq/rng.h"

namespace sigsub {
namespace seq {

/// A rows×cols grid of symbols over a k-letter alphabet — the substrate for
/// the paper's Section 8 two-dimensional extension ("the single dimensional
/// problem ... can be extended to two-dimensional grid networks"). Cells
/// are stored row-major.
class Grid {
 public:
  /// Empty (all-zero) grid.
  static Result<Grid> Make(int alphabet_size, int64_t rows, int64_t cols);

  /// Grid with i.i.d. cells from `model`.
  static Grid GenerateNull(const MultinomialModel& model, int64_t rows,
                           int64_t cols, Rng& rng);

  /// Null grid with one planted rectangular regime drawn from
  /// `anomaly_probs` at [row0, row1) × [col0, col1).
  static Result<Grid> GenerateWithPlantedRect(
      const MultinomialModel& background, int64_t rows, int64_t cols,
      int64_t row0, int64_t row1, int64_t col0, int64_t col1,
      const std::vector<double>& anomaly_probs, Rng& rng);

  int alphabet_size() const { return alphabet_size_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  uint8_t at(int64_t r, int64_t c) const { return cells_[r * cols_ + c]; }
  void set(int64_t r, int64_t c, uint8_t symbol);

 private:
  Grid(int alphabet_size, int64_t rows, int64_t cols);

  int alphabet_size_;
  int64_t rows_;
  int64_t cols_;
  std::vector<uint8_t> cells_;
};

/// Per-symbol 2-D prefix sums: counts_[s][(r, c)] = occurrences of s in the
/// rectangle [0, r) × [0, c). Built in O(k·R·C); any rectangle count in
/// O(1) per symbol.
class GridPrefixCounts {
 public:
  explicit GridPrefixCounts(const Grid& grid);

  int alphabet_size() const { return alphabet_size_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Occurrences of `symbol` in [row0, row1) × [col0, col1).
  int64_t CountInRect(int symbol, int64_t row0, int64_t row1, int64_t col0,
                      int64_t col1) const;

  /// Fills `out` (size k) with the rectangle's count vector.
  void FillCounts(int64_t row0, int64_t row1, int64_t col0, int64_t col1,
                  std::span<int64_t> out) const;

 private:
  int64_t Index(int64_t r, int64_t c) const { return r * (cols_ + 1) + c; }

  int alphabet_size_;
  int64_t rows_;
  int64_t cols_;
  std::vector<std::vector<int64_t>> counts_;  // k planes of (R+1)(C+1).
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_GRID_H_
