#include "seq/grid.h"

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {

Grid::Grid(int alphabet_size, int64_t rows, int64_t cols)
    : alphabet_size_(alphabet_size),
      rows_(rows),
      cols_(cols),
      cells_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0) {}

Result<Grid> Grid::Make(int alphabet_size, int64_t rows, int64_t cols) {
  if (alphabet_size < 2 || alphabet_size > 255) {
    return Status::InvalidArgument(
        StrCat("invalid alphabet size ", alphabet_size));
  }
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument(
        StrCat("grid dimensions must be positive, got ", rows, "x", cols));
  }
  return Grid(alphabet_size, rows, cols);
}

Grid Grid::GenerateNull(const MultinomialModel& model, int64_t rows,
                        int64_t cols, Rng& rng) {
  SIGSUB_CHECK(rows > 0 && cols > 0);
  Grid grid(model.alphabet_size(), rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      grid.set(r, c, model.SampleSymbol(rng.NextDouble()));
    }
  }
  return grid;
}

Result<Grid> Grid::GenerateWithPlantedRect(
    const MultinomialModel& background, int64_t rows, int64_t cols,
    int64_t row0, int64_t row1, int64_t col0, int64_t col1,
    const std::vector<double>& anomaly_probs, Rng& rng) {
  if (row0 < 0 || row0 >= row1 || row1 > rows || col0 < 0 || col0 >= col1 ||
      col1 > cols) {
    return Status::InvalidArgument(
        StrCat("planted rectangle [", row0, ",", row1, ")x[", col0, ",",
               col1, ") out of bounds for ", rows, "x", cols));
  }
  SIGSUB_ASSIGN_OR_RETURN(
      MultinomialModel anomaly,
      MultinomialModel::Make(std::vector<double>(anomaly_probs)));
  if (anomaly.alphabet_size() != background.alphabet_size()) {
    return Status::InvalidArgument("anomaly alphabet size mismatch");
  }
  Grid grid = GenerateNull(background, rows, cols, rng);
  for (int64_t r = row0; r < row1; ++r) {
    for (int64_t c = col0; c < col1; ++c) {
      grid.set(r, c, anomaly.SampleSymbol(rng.NextDouble()));
    }
  }
  return grid;
}

void Grid::set(int64_t r, int64_t c, uint8_t symbol) {
  SIGSUB_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  SIGSUB_DCHECK(symbol < alphabet_size_);
  cells_[r * cols_ + c] = symbol;
}

GridPrefixCounts::GridPrefixCounts(const Grid& grid)
    : alphabet_size_(grid.alphabet_size()),
      rows_(grid.rows()),
      cols_(grid.cols()) {
  counts_.resize(alphabet_size_);
  for (int s = 0; s < alphabet_size_; ++s) {
    counts_[s].assign(static_cast<size_t>((rows_ + 1) * (cols_ + 1)), 0);
  }
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      for (int s = 0; s < alphabet_size_; ++s) {
        counts_[s][Index(r + 1, c + 1)] =
            counts_[s][Index(r, c + 1)] + counts_[s][Index(r + 1, c)] -
            counts_[s][Index(r, c)];
      }
      ++counts_[grid.at(r, c)][Index(r + 1, c + 1)];
    }
  }
}

int64_t GridPrefixCounts::CountInRect(int symbol, int64_t row0, int64_t row1,
                                      int64_t col0, int64_t col1) const {
  SIGSUB_DCHECK(symbol >= 0 && symbol < alphabet_size_);
  SIGSUB_DCHECK(row0 >= 0 && row0 <= row1 && row1 <= rows_);
  SIGSUB_DCHECK(col0 >= 0 && col0 <= col1 && col1 <= cols_);
  const std::vector<int64_t>& plane = counts_[symbol];
  return plane[Index(row1, col1)] - plane[Index(row0, col1)] -
         plane[Index(row1, col0)] + plane[Index(row0, col0)];
}

void GridPrefixCounts::FillCounts(int64_t row0, int64_t row1, int64_t col0,
                                  int64_t col1,
                                  std::span<int64_t> out) const {
  SIGSUB_DCHECK(static_cast<int>(out.size()) == alphabet_size_);
  for (int s = 0; s < alphabet_size_; ++s) {
    out[s] = CountInRect(s, row0, row1, col0, col1);
  }
}

}  // namespace seq
}  // namespace sigsub
