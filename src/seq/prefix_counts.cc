#include "seq/prefix_counts.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {

PrefixCounts::PrefixCounts(const Sequence& sequence)
    : alphabet_size_(sequence.alphabet_size()), n_(sequence.size()) {
  const size_t k = static_cast<size_t>(alphabet_size_);
  counts_.assign((static_cast<size_t>(n_) + 1) * k, 0);
  std::span<const uint8_t> symbols = sequence.symbols();
  int64_t* prev = counts_.data();
  for (int64_t i = 0; i < n_; ++i) {
    int64_t* next = prev + k;
    std::copy(prev, prev + k, next);
    ++next[symbols[i]];
    prev = next;
  }
}

Result<PrefixCounts> PrefixCounts::FromBytes(
    std::span<const uint8_t> bytes, const std::array<uint8_t, 256>& decode,
    int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 255) {
    return Status::InvalidArgument(
        StrCat("alphabet size must be in [2, 255], got ", alphabet_size));
  }
  const size_t k = static_cast<size_t>(alphabet_size);
  PrefixCounts counts(alphabet_size, static_cast<int64_t>(bytes.size()));
  counts.counts_.assign((bytes.size() + 1) * k, 0);
  // One pass in chunks: decode and accumulate without a decoded copy of
  // the record.
  constexpr size_t kChunk = size_t{1} << 20;
  int64_t* prev = counts.counts_.data();
  for (size_t offset = 0; offset < bytes.size(); offset += kChunk) {
    size_t end = std::min(bytes.size(), offset + kChunk);
    for (size_t i = offset; i < end; ++i) {
      uint8_t symbol = decode[bytes[i]];
      if (symbol == 0xFF || symbol >= k) {
        return Status::InvalidArgument(
            StrCat("byte value ", static_cast<int>(bytes[i]), " at offset ",
                   static_cast<int64_t>(i), " is outside the alphabet"));
      }
      int64_t* next = prev + k;
      std::copy(prev, prev + k, next);
      ++next[symbol];
      prev = next;
    }
  }
  return counts;
}

void PrefixCounts::FillCounts(int64_t start, int64_t end,
                              std::span<int64_t> out) const {
  SIGSUB_DCHECK(start >= 0 && start <= end && end <= n_);
  SIGSUB_DCHECK(static_cast<int>(out.size()) == alphabet_size_);
  const size_t k = static_cast<size_t>(alphabet_size_);
  const int64_t* hi = counts_.data() + static_cast<size_t>(end) * k;
  const int64_t* lo = counts_.data() + static_cast<size_t>(start) * k;
  for (size_t c = 0; c < k; ++c) {
    out[c] = hi[c] - lo[c];
  }
}

}  // namespace seq
}  // namespace sigsub
