#include "seq/prefix_counts.h"

#include <algorithm>

#include "common/check.h"

namespace sigsub {
namespace seq {

PrefixCounts::PrefixCounts(const Sequence& sequence)
    : alphabet_size_(sequence.alphabet_size()), n_(sequence.size()) {
  const size_t k = static_cast<size_t>(alphabet_size_);
  counts_.assign((static_cast<size_t>(n_) + 1) * k, 0);
  std::span<const uint8_t> symbols = sequence.symbols();
  int64_t* prev = counts_.data();
  for (int64_t i = 0; i < n_; ++i) {
    int64_t* next = prev + k;
    std::copy(prev, prev + k, next);
    ++next[symbols[i]];
    prev = next;
  }
}

void PrefixCounts::FillCounts(int64_t start, int64_t end,
                              std::span<int64_t> out) const {
  SIGSUB_DCHECK(start >= 0 && start <= end && end <= n_);
  SIGSUB_DCHECK(static_cast<int>(out.size()) == alphabet_size_);
  const size_t k = static_cast<size_t>(alphabet_size_);
  const int64_t* hi = counts_.data() + static_cast<size_t>(end) * k;
  const int64_t* lo = counts_.data() + static_cast<size_t>(start) * k;
  for (size_t c = 0; c < k; ++c) {
    out[c] = hi[c] - lo[c];
  }
}

}  // namespace seq
}  // namespace sigsub
