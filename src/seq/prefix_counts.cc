#include "seq/prefix_counts.h"

#include "common/check.h"

namespace sigsub {
namespace seq {

PrefixCounts::PrefixCounts(const Sequence& sequence)
    : alphabet_size_(sequence.alphabet_size()), n_(sequence.size()) {
  counts_.resize(alphabet_size_);
  for (int c = 0; c < alphabet_size_; ++c) {
    counts_[c].assign(static_cast<size_t>(n_) + 1, 0);
  }
  std::span<const uint8_t> symbols = sequence.symbols();
  for (int64_t i = 0; i < n_; ++i) {
    for (int c = 0; c < alphabet_size_; ++c) {
      counts_[c][i + 1] = counts_[c][i];
    }
    ++counts_[symbols[i]][i + 1];
  }
}

void PrefixCounts::FillCounts(int64_t start, int64_t end,
                              std::span<int64_t> out) const {
  SIGSUB_DCHECK(start >= 0 && start <= end && end <= n_);
  SIGSUB_DCHECK(static_cast<int>(out.size()) == alphabet_size_);
  for (int c = 0; c < alphabet_size_; ++c) {
    out[c] = counts_[c][end] - counts_[c][start];
  }
}

}  // namespace seq
}  // namespace sigsub
