#include "seq/alphabet.h"

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {

Alphabet::Alphabet(std::string chars)
    : chars_(std::move(chars)), lookup_(256, -1) {
  for (size_t i = 0; i < chars_.size(); ++i) {
    lookup_[static_cast<uint8_t>(chars_[i])] = static_cast<int16_t>(i);
  }
}

Result<Alphabet> Alphabet::FromCharacters(std::string_view chars) {
  if (chars.size() < 2) {
    return Status::InvalidArgument(
        StrCat("alphabet needs at least 2 characters, got ", chars.size()));
  }
  if (chars.size() > 255) {
    return Status::InvalidArgument(
        StrCat("alphabet too large: ", chars.size(), " > 255"));
  }
  std::vector<bool> seen(256, false);
  for (char c : chars) {
    if (seen[static_cast<uint8_t>(c)]) {
      return Status::InvalidArgument(
          StrCat("duplicate character '", c, "' in alphabet"));
    }
    seen[static_cast<uint8_t>(c)] = true;
  }
  return Alphabet(std::string(chars));
}

Alphabet Alphabet::Canonical(int k) {
  SIGSUB_CHECK(k >= 2 && k <= 255);
  std::string chars;
  chars.reserve(k);
  for (int i = 0; i < k; ++i) {
    if (k <= 26) {
      chars.push_back(static_cast<char>('a' + i));
    } else {
      // Beyond 26 symbols use raw byte values; glyphs are not printable.
      chars.push_back(static_cast<char>(i + 1));
    }
  }
  return Alphabet(std::move(chars));
}

Alphabet Alphabet::Binary() {
  auto result = FromCharacters("01");
  SIGSUB_CHECK(result.ok());
  return std::move(result).value();
}

char Alphabet::CharOf(Symbol s) const {
  SIGSUB_DCHECK(s < chars_.size());
  return chars_[s];
}

Result<Symbol> Alphabet::SymbolOf(char c) const {
  int16_t id = lookup_[static_cast<uint8_t>(c)];
  if (id < 0) {
    return Status::NotFound(StrCat("character '", c, "' not in alphabet \"",
                                   chars_, "\""));
  }
  return static_cast<Symbol>(id);
}

}  // namespace seq
}  // namespace sigsub
