#ifndef SIGSUB_SEQ_RNG_H_
#define SIGSUB_SEQ_RNG_H_

#include <cstdint>

namespace sigsub {
namespace seq {

/// Deterministic xoshiro256++ generator seeded via splitmix64. Every
/// randomized component in the library takes an explicit seed so that all
/// experiments are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound); requires bound > 0. Uses rejection
  /// sampling, so it is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Splits off an independent child stream (distinct seed derivation);
  /// handy for giving sub-simulations their own reproducible streams.
  Rng Split();

 private:
  uint64_t state_[4];
  uint64_t split_counter_ = 0;
  uint64_t seed_;
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_RNG_H_
