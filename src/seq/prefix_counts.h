#ifndef SIGSUB_SEQ_PREFIX_COUNTS_H_
#define SIGSUB_SEQ_PREFIX_COUNTS_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "seq/sequence.h"

namespace sigsub {
namespace seq {

/// The k count arrays of the paper (Section 2): PrefixCount(c, i) is the
/// number of occurrences of symbol c in S[0, i). Built in O(k·n), answers
/// any substring count query in O(1) per character, which is what makes
/// each examined position of the MSS scan O(k) instead of O(length).
///
/// Storage is a single flat position-major buffer, counts_[pos * k + c]:
/// the k counts of one prefix are adjacent, so a FillCounts(start, end)
/// touches exactly two contiguous k-wide blocks (two cache lines for
/// k <= 8) and the subtraction loop vectorizes. The former layout — k
/// separate rows of n+1 entries — cost k strided cache misses per fill.
class PrefixCounts {
 public:
  /// Read-only view of one symbol's count row (size n+1), striding the
  /// position-major buffer by k. Exposed for kernels that walk a single
  /// symbol's counts (e.g. the AGMM excursion heuristic).
  class SymbolRow {
   public:
    int64_t operator[](int64_t pos) const {
      return data_[static_cast<size_t>(pos) * stride_];
    }
    size_t size() const { return size_; }

   private:
    friend class PrefixCounts;
    SymbolRow(const int64_t* data, size_t stride, size_t size)
        : data_(data), stride_(stride), size_(size) {}

    const int64_t* data_;
    size_t stride_;
    size_t size_;
  };

  explicit PrefixCounts(const Sequence& sequence);

  /// Chunk-streamed construction over raw (e.g. memory-mapped) bytes:
  /// `decode` maps each byte to its symbol id, with 0xFF marking bytes
  /// outside the alphabet (io::kInvalidByte; rejected with the offending
  /// offset). Equivalent to decoding the bytes into a Sequence and using
  /// the constructor above, but never materializes the decoded copy —
  /// the transient working set is one chunk of the source plus the counts
  /// buffer being filled.
  static Result<PrefixCounts> FromBytes(std::span<const uint8_t> bytes,
                                        const std::array<uint8_t, 256>& decode,
                                        int alphabet_size);

  int alphabet_size() const { return alphabet_size_; }
  int64_t sequence_size() const { return n_; }

  /// Occurrences of `symbol` in S[0, pos), 0 <= pos <= n.
  int64_t PrefixCount(int symbol, int64_t pos) const {
    SIGSUB_DCHECK(symbol >= 0 && symbol < alphabet_size_);
    SIGSUB_DCHECK(pos >= 0 && pos <= n_);
    return counts_[static_cast<size_t>(pos) *
                       static_cast<size_t>(alphabet_size_) +
                   static_cast<size_t>(symbol)];
  }

  /// Occurrences of `symbol` in S[start, end).
  int64_t CountInRange(int symbol, int64_t start, int64_t end) const {
    SIGSUB_DCHECK(start >= 0 && start <= end && end <= n_);
    return PrefixCount(symbol, end) - PrefixCount(symbol, start);
  }

  /// Fills `out` (size k) with the count vector of S[start, end).
  ///
  /// Reference/API surface: hot scan loops no longer call this — they read
  /// the two blocks directly through BlockAt via core::X2Kernel and the
  /// SkipSolver block overloads, fusing the subtraction into the reduction.
  void FillCounts(int64_t start, int64_t end, std::span<int64_t> out) const;

  /// Raw position-major block: BlockAt(pos)[c] == PrefixCount(c, pos),
  /// valid for c in [0, k). The count vector of S[start, end) is the
  /// element-wise difference BlockAt(end) − BlockAt(start); fused kernels
  /// consume the two pointers without materializing the difference.
  const int64_t* BlockAt(int64_t pos) const {
    SIGSUB_DCHECK(pos >= 0 && pos <= n_);
    return counts_.data() +
           static_cast<size_t>(pos) * static_cast<size_t>(alphabet_size_);
  }

  /// Strided view of one symbol's counts (size n+1).
  SymbolRow Row(int symbol) const {
    return SymbolRow(counts_.data() + symbol,
                     static_cast<size_t>(alphabet_size_),
                     static_cast<size_t>(n_) + 1);
  }

 private:
  PrefixCounts(int alphabet_size, int64_t n)
      : alphabet_size_(alphabet_size), n_(n) {}

  int alphabet_size_;
  int64_t n_;
  std::vector<int64_t> counts_;  // (n+1) position-major blocks of k.
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_PREFIX_COUNTS_H_
