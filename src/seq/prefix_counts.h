#ifndef SIGSUB_SEQ_PREFIX_COUNTS_H_
#define SIGSUB_SEQ_PREFIX_COUNTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "seq/sequence.h"

namespace sigsub {
namespace seq {

/// The k count arrays of the paper (Section 2): counts_[c][i] is the number
/// of occurrences of symbol c in S[0, i). Built in O(k·n), answers any
/// substring count query in O(1) per character, which is what makes each
/// examined position of the MSS scan O(k) instead of O(length).
class PrefixCounts {
 public:
  explicit PrefixCounts(const Sequence& sequence);

  int alphabet_size() const { return alphabet_size_; }
  int64_t sequence_size() const { return n_; }

  /// Occurrences of `symbol` in S[0, pos), 0 <= pos <= n.
  int64_t PrefixCount(int symbol, int64_t pos) const {
    return counts_[symbol][pos];
  }

  /// Occurrences of `symbol` in S[start, end).
  int64_t CountInRange(int symbol, int64_t start, int64_t end) const {
    return counts_[symbol][end] - counts_[symbol][start];
  }

  /// Fills `out` (size k) with the count vector of S[start, end).
  void FillCounts(int64_t start, int64_t end, std::span<int64_t> out) const;

  /// Row for one symbol (size n+1); exposed for kernels that stride rows.
  std::span<const int64_t> Row(int symbol) const { return counts_[symbol]; }

 private:
  int alphabet_size_;
  int64_t n_;
  std::vector<std::vector<int64_t>> counts_;  // k rows of n+1 entries.
};

}  // namespace seq
}  // namespace sigsub

#endif  // SIGSUB_SEQ_PREFIX_COUNTS_H_
