#include "seq/generators.h"

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace seq {

Sequence GenerateMultinomial(const MultinomialModel& model, int64_t n,
                             Rng& rng) {
  SIGSUB_CHECK(n >= 0);
  Sequence seq(model.alphabet_size());
  seq.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    seq.Append(model.SampleSymbol(rng.NextDouble()));
  }
  return seq;
}

Sequence GenerateNull(int k, int64_t n, Rng& rng) {
  return GenerateMultinomial(MultinomialModel::Uniform(k), n, rng);
}

Sequence GenerateMarkov(const MarkovModel& model, int64_t n, Rng& rng) {
  SIGSUB_CHECK(n >= 0);
  Sequence seq(model.alphabet_size());
  seq.Reserve(n);
  if (n == 0) return seq;
  uint8_t current = model.SampleInitial(rng.NextDouble());
  seq.Append(current);
  for (int64_t i = 1; i < n; ++i) {
    current = model.SampleNext(current, rng.NextDouble());
    seq.Append(current);
  }
  return seq;
}

Sequence GenerateBiasedBinary(double p_same, int64_t n, Rng& rng) {
  return GenerateMarkov(MarkovModel::BiasedBinary(p_same), n, rng);
}

Result<Sequence> GenerateRegimes(int alphabet_size,
                                 const std::vector<Regime>& regimes,
                                 Rng& rng) {
  if (alphabet_size < 2 || alphabet_size > 255) {
    return Status::InvalidArgument(
        StrCat("invalid alphabet size ", alphabet_size));
  }
  int64_t total = 0;
  std::vector<MultinomialModel> models;
  models.reserve(regimes.size());
  for (size_t i = 0; i < regimes.size(); ++i) {
    const Regime& regime = regimes[i];
    if (regime.length < 0) {
      return Status::InvalidArgument(
          StrCat("regime ", i, " has negative length ", regime.length));
    }
    if (static_cast<int>(regime.probs.size()) != alphabet_size) {
      return Status::InvalidArgument(
          StrCat("regime ", i, " has ", regime.probs.size(),
                 " probabilities, expected ", alphabet_size));
    }
    SIGSUB_ASSIGN_OR_RETURN(MultinomialModel model,
                            MultinomialModel::Make(regime.probs));
    models.push_back(std::move(model));
    total += regime.length;
  }
  Sequence seq(alphabet_size);
  seq.Reserve(total);
  for (size_t i = 0; i < regimes.size(); ++i) {
    for (int64_t j = 0; j < regimes[i].length; ++j) {
      seq.Append(models[i].SampleSymbol(rng.NextDouble()));
    }
  }
  return seq;
}

}  // namespace seq
}  // namespace sigsub
