#ifndef SIGSUB_ENGINE_RESULT_CACHE_H_
#define SIGSUB_ENGINE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/scan_types.h"

namespace sigsub {
namespace engine {

/// Cache key for a mining query: sequence content fingerprint (FNV-1a)
/// plus the FNV-1a digest of the query's canonical serialization bytes
/// minus the sequence index (api::FingerprintQuery — kind, parameters and
/// model in one canonical byte stream). Two queries with the same key
/// compute bit-identical results, so the cache can serve repeats without
/// touching the kernels.
///
/// The key is the fingerprints alone — the original sequence/query bytes
/// are not stored, so a 64-bit FNV-1a collision would silently serve the
/// colliding query's results. FNV-1a is not collision-resistant against
/// adversarial input; do not expose a shared cache to untrusted corpora
/// (disable with cache_capacity = 0 in that setting).
struct CacheKey {
  uint64_t sequence_fp = 0;
  uint64_t query_fp = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    // The components are already FNV-1a digests; mix them with a distinct
    // odd multiplier so permuted components do not collide.
    uint64_t h = key.sequence_fp;
    h = h * 0x9e3779b97f4a7c15ULL + key.query_fp;
    return static_cast<size_t>(h);
  }
};

/// The kernel output stored per cache entry: everything a JobResult needs
/// except the per-job identity fields. `counts`/`p_values` are populated
/// only by substrings queries (parallel to `substrings`; empty for every
/// other kind).
struct CachedResult {
  std::vector<core::Substring> substrings;
  std::vector<int64_t> counts;
  std::vector<double> p_values;
  core::Substring best;
  int64_t match_count = 0;
};

/// One exported cache entry — persist/cache_store.{h,cc} serializes a
/// vector of these (MRU first) for the disk-backed cache tier.
struct CacheEntry {
  CacheKey key;
  CachedResult value;
};

/// Monotonic counters; snapshot via ResultCache::stats().
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;

  int64_t lookups() const { return hits + misses; }
};

/// Thread-safe LRU cache of job results, keyed by CacheKey. Sized in
/// entries; a capacity of 0 disables caching entirely (every Lookup
/// misses, Insert is a no-op). Values are returned by copy so callers
/// never hold references into the cache across an eviction.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t size() const;

  /// Returns the cached value and refreshes its recency, or nullopt.
  std::optional<CachedResult> Lookup(const CacheKey& key);

  /// Inserts or refreshes `value` under `key`, evicting the least
  /// recently used entry when full.
  void Insert(const CacheKey& key, CachedResult value);

  /// Drops every entry and resets the stats counters, so hit rates
  /// measured after a clear describe only the new cache generation.
  void Clear();

  /// Resets the stats counters without touching the entries.
  void ResetStats();

  /// Copies out every entry, most recently used first, for persistence.
  /// Does not perturb recency or stats.
  std::vector<CacheEntry> Export() const;

  /// Replaces the cache contents with `entries` (the Export order: MRU
  /// first), truncating to capacity and dropping duplicate keys beyond
  /// their first occurrence. Stats are untouched — a restored cache
  /// starts its hit-rate ledger fresh.
  void Import(const std::vector<CacheEntry>& entries);

  CacheStats stats() const;

 private:
  struct Entry {
    CacheKey key;
    CachedResult value;
  };

  mutable Mutex mutex_;
  const size_t capacity_;  // Immutable after construction; read lock-free.
  // Front = most recently used.
  std::list<Entry> lru_ SIGSUB_GUARDED_BY(mutex_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_ SIGSUB_GUARDED_BY(mutex_);
  CacheStats stats_ SIGSUB_GUARDED_BY(mutex_);
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_RESULT_CACHE_H_
