#include "engine/stream_manager.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"

namespace sigsub {
namespace engine {

StreamManager::StreamManager(StreamManagerOptions options)
    : options_(options), pool_(options.num_threads) {
  if (options_.max_alarms_per_stream < 1) options_.max_alarms_per_stream = 1;
}

Status StreamManager::CreateStream(const std::string& name,
                                   std::vector<double> probs,
                                   core::StreamingDetector::Options options) {
  if (name.empty()) {
    return Status::InvalidArgument("stream name must not be empty");
  }
  std::shared_ptr<const core::ChiSquareContext> context;
  {
    MutexLock lock(mutex_);
    if (streams_.contains(name)) {
      return Status::InvalidArgument(
          StrCat("stream \"", name, "\" already exists"));
    }
    auto it = contexts_.find(probs);
    if (it != contexts_.end()) context = it->second;
  }
  if (context == nullptr) {
    // Built outside the lock (quantile evaluation and validation are not
    // free); a concurrent CreateStream with the same model at worst
    // builds one redundant context, and the map keeps whichever landed
    // first.
    auto built = core::ChiSquareContext::Make(probs, options_.x2_dispatch);
    if (!built.ok()) {
      return Status::InvalidArgument(StrCat("stream \"", name,
                                            "\": invalid model: ",
                                            built.status().message()));
    }
    context = std::make_shared<const core::ChiSquareContext>(
        std::move(built).value());
  }
  // The manager's dispatch knob governs scoring end to end: it selected
  // the shared context above, and here it overrides the per-detector
  // field so the detector's own kernel resolution (which reads only its
  // options) follows the same request.
  options.x2_dispatch = options_.x2_dispatch;
  auto detector = core::StreamingDetector::Make(context, options);
  if (!detector.ok()) {
    return Status::InvalidArgument(
        StrCat("stream \"", name, "\": ", detector.status().message()));
  }
  auto stream =
      std::make_shared<Stream>(name, probs, std::move(detector).value());
  {
    MutexLock lock(mutex_);
    if (streams_.contains(name)) {
      return Status::InvalidArgument(
          StrCat("stream \"", name, "\" already exists"));
    }
    contexts_.try_emplace(std::move(probs), std::move(context));
    streams_.emplace(name, std::move(stream));
  }
  streams_created_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::shared_ptr<StreamManager::Stream> StreamManager::FindStream(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = streams_.find(name);
  return it == streams_.end() ? nullptr : it->second;
}

Result<std::vector<core::StreamingDetector::Alarm>>
StreamManager::AppendLocked(Stream& stream,
                            std::span<const uint8_t> symbols) {
  MutexLock lock(stream.mutex);
  auto alarms = stream.detector.TryAppendChunk(symbols);
  SIGSUB_RETURN_IF_ERROR(alarms.status());
  for (const core::StreamingDetector::Alarm& alarm : *alarms) {
    if (stream.alarms.size() >= options_.max_alarms_per_stream) {
      stream.alarms.pop_front();
      ++stream.alarms_dropped;
    }
    stream.alarms.push_back(alarm);
  }
  symbols_ingested_.fetch_add(static_cast<int64_t>(symbols.size()),
                              std::memory_order_relaxed);
  alarms_raised_.fetch_add(static_cast<int64_t>(alarms->size()),
                           std::memory_order_relaxed);
  return *std::move(alarms);
}

Result<int64_t> StreamManager::Append(const std::string& name,
                                      std::span<const uint8_t> symbols) {
  SIGSUB_ASSIGN_OR_RETURN(std::vector<core::StreamingDetector::Alarm> alarms,
                          AppendCollect(name, symbols));
  return static_cast<int64_t>(alarms.size());
}

Result<std::vector<core::StreamingDetector::Alarm>>
StreamManager::AppendCollect(const std::string& name,
                             std::span<const uint8_t> symbols) {
  std::shared_ptr<Stream> stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound(StrCat("no stream named \"", name, "\""));
  }
  return AppendLocked(*stream, symbols);
}

Result<int64_t> StreamManager::AppendBatch(
    const std::vector<StreamAppend>& appends) {
  // Group by stream up front (resolving every name before any symbol is
  // ingested), preserving each stream's batch order. Groups live in a
  // vector ordered by first appearance in the batch, so error reporting
  // below is deterministic — never dependent on heap-pointer order.
  struct Group {
    std::shared_ptr<Stream> stream;
    std::vector<const StreamAppend*> list;
    Status status;
    int64_t alarms = 0;
  };
  std::vector<Group> groups;
  std::map<const Stream*, size_t> group_index;
  for (const StreamAppend& append : appends) {
    std::shared_ptr<Stream> stream = FindStream(append.name);
    if (stream == nullptr) {
      return Status::NotFound(
          StrCat("no stream named \"", append.name, "\""));
    }
    auto [it, inserted] = group_index.try_emplace(stream.get(), groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(stream), {}, Status::OK(), 0});
    }
    groups[it->second].list.push_back(&append);
  }

  // One task per distinct stream; tasks are independent, so the batch
  // scales with the number of streams touched. Each task stops at that
  // stream's first error (later appends to it are skipped); the batch
  // reports the error of the earliest-appearing failed stream.
  for (Group& group : groups) {
    Group* g = &group;
    pool_.Submit([this, g] {
      for (const StreamAppend* append : g->list) {
        auto result = AppendLocked(*g->stream, append->symbols);
        if (!result.ok()) {
          g->status = result.status();
          return;
        }
        g->alarms += static_cast<int64_t>(result->size());
      }
    });
  }
  pool_.Wait();

  int64_t total_alarms = 0;
  for (const Group& group : groups) {
    SIGSUB_RETURN_IF_ERROR(group.status);
    total_alarms += group.alarms;
  }
  return total_alarms;
}

Result<StreamSnapshot> StreamManager::Snapshot(
    const std::string& name) const {
  std::shared_ptr<Stream> stream = FindStream(name);
  if (stream == nullptr) {
    return Status::NotFound(StrCat("no stream named \"", name, "\""));
  }
  MutexLock lock(stream->mutex);
  StreamSnapshot snapshot;
  snapshot.name = stream->name;
  snapshot.position = stream->detector.position();
  snapshot.alarms_total = stream->detector.alarms_raised();
  snapshot.alarms_dropped = stream->alarms_dropped;
  snapshot.recent_alarms.assign(stream->alarms.begin(),
                                stream->alarms.end());
  snapshot.scales = stream->detector.scales();
  auto thresholds = stream->detector.scale_thresholds();
  snapshot.thresholds.assign(thresholds.begin(), thresholds.end());
  snapshot.chi_squares = stream->detector.CurrentChiSquares();
  return snapshot;
}

Status StreamManager::CloseStream(const std::string& name) {
  {
    MutexLock lock(mutex_);
    if (streams_.erase(name) == 0) {
      return Status::NotFound(StrCat("no stream named \"", name, "\""));
    }
  }
  streams_closed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<PersistedStream> StreamManager::ExportStreams() const {
  // Snapshot the stream set first, then serialize each stream under its
  // own mutex: holding mutex_ across the per-stream copies would invert
  // the usual lock order and stall every concurrent lookup.
  std::vector<std::shared_ptr<Stream>> streams;
  {
    MutexLock lock(mutex_);
    streams.reserve(streams_.size());
    for (const auto& [unused, stream] : streams_) streams.push_back(stream);
  }
  std::vector<PersistedStream> exported;
  exported.reserve(streams.size());
  for (const std::shared_ptr<Stream>& stream : streams) {
    MutexLock lock(stream->mutex);
    PersistedStream persisted;
    persisted.name = stream->name;
    persisted.probs = stream->probs;
    persisted.options = stream->detector.options();
    persisted.state = stream->detector.SaveState();
    persisted.alarms.assign(stream->alarms.begin(), stream->alarms.end());
    persisted.alarms_dropped = stream->alarms_dropped;
    exported.push_back(std::move(persisted));
  }
  return exported;
}

Status StreamManager::RestoreStream(const PersistedStream& persisted) {
  if (persisted.alarms_dropped < 0) {
    return Status::InvalidArgument(
        StrCat("stream \"", persisted.name, "\": negative dropped-alarm "
                                            "count in snapshot"));
  }
  SIGSUB_RETURN_IF_ERROR(
      CreateStream(persisted.name, persisted.probs, persisted.options));
  std::shared_ptr<Stream> stream = FindStream(persisted.name);
  SIGSUB_CHECK(stream != nullptr);
  Status restored;
  {
    MutexLock lock(stream->mutex);
    restored = stream->detector.RestoreState(persisted.state);
    if (restored.ok()) {
      stream->alarms.assign(persisted.alarms.begin(),
                            persisted.alarms.end());
      while (stream->alarms.size() > options_.max_alarms_per_stream) {
        stream->alarms.pop_front();
      }
      stream->alarms_dropped = persisted.alarms_dropped;
    }
  }
  if (!restored.ok()) {
    // Leave no half-restored stream behind: a fresh detector with a
    // persisted name would silently present as position 0.
    (void)CloseStream(persisted.name);
    return Status::InvalidArgument(StrCat("stream \"", persisted.name,
                                          "\": ", restored.message()));
  }
  return Status::OK();
}

std::vector<std::string> StreamManager::StreamNames() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, unused] : streams_) names.push_back(name);
  return names;
}

StreamManagerStats StreamManager::stats() const {
  StreamManagerStats stats;
  stats.streams_created = streams_created_.load(std::memory_order_relaxed);
  stats.streams_closed = streams_closed_.load(std::memory_order_relaxed);
  stats.symbols_ingested = symbols_ingested_.load(std::memory_order_relaxed);
  stats.alarms_raised = alarms_raised_.load(std::memory_order_relaxed);
  return stats;
}

bool StreamManager::HasStream(const std::string& name) const {
  MutexLock lock(mutex_);
  return streams_.contains(name);
}

size_t StreamManager::open_stream_count() const {
  MutexLock lock(mutex_);
  return streams_.size();
}

size_t StreamManager::context_count() const {
  MutexLock lock(mutex_);
  return contexts_.size();
}

}  // namespace engine
}  // namespace sigsub
