#include "engine/engine_stats.h"

#include "common/str_util.h"

namespace sigsub {
namespace engine {

EngineStats CollectEngineStats(const Engine* engine,
                               const StreamManager* streams) {
  EngineStats stats;
  if (engine != nullptr) {
    stats.cache = engine->cache_stats();
    stats.cache_entries = static_cast<int64_t>(engine->cache_size());
    stats.cache_capacity = static_cast<int64_t>(engine->cache_capacity());
    stats.queries_executed = engine->queries_executed();
    stats.batches_executed = engine->batches_executed();
    stats.num_threads = engine->num_threads();
  }
  if (streams != nullptr) {
    stats.streams = streams->stats();
    stats.open_streams = static_cast<int64_t>(streams->open_stream_count());
  }
  return stats;
}

std::string FormatEngineStats(const EngineStats& stats) {
  return StrCat(
      "queries=", stats.queries_executed,
      " batches=", stats.batches_executed,
      " threads=", stats.num_threads,
      " cache_hits=", stats.cache.hits,
      " cache_misses=", stats.cache.misses,
      " cache_insertions=", stats.cache.insertions,
      " cache_evictions=", stats.cache.evictions,
      " cache_entries=", stats.cache_entries,
      " cache_capacity=", stats.cache_capacity,
      " streams_open=", stats.open_streams,
      " streams_created=", stats.streams.streams_created,
      " streams_closed=", stats.streams.streams_closed,
      " symbols_ingested=", stats.streams.symbols_ingested,
      " alarms_raised=", stats.streams.alarms_raised);
}

}  // namespace engine
}  // namespace sigsub
