#include "engine/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "api/serde.h"
#include "common/check.h"
#include "common/str_util.h"
#include "core/agmm.h"
#include "core/arlm.h"
#include "core/atomic_max.h"
#include "core/blocked_scan.h"
#include "core/chi_square.h"
#include "core/length_bounded.h"
#include "core/markov_scan.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/parallel.h"
#include "core/suffix_scan.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "engine/fingerprint.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "stats/chi_squared.h"

namespace sigsub {
namespace engine {
namespace {

/// Per-distinct-sequence state built once per batch and shared by every
/// query targeting that record. The PrefixCounts build is lazy: the first
/// kernel task that needs the record builds it under `build_once`, so
/// there is no build-all barrier before any kernel may start — records
/// with cheap builds begin scanning while large builds are still running.
struct SequenceState {
  std::once_flag build_once;
  std::optional<seq::PrefixCounts> counts;
  uint64_t fingerprint = 0;

  const seq::PrefixCounts& CountsFor(const Corpus& corpus, int64_t index) {
    std::call_once(build_once, [&] {
      if (corpus.is_mapped()) {
        // Chunk-streamed from the mapped bytes; the bytes were validated
        // against the alphabet at load, so the build cannot fail.
        counts.emplace(std::move(corpus.BuildMappedPrefixCounts()).value());
      } else {
        counts.emplace(corpus.sequence(index));
      }
    });
    return *counts;
  }
};

/// One corpus record as the kernels see it: either a decoded sequence or
/// the mapped bytes plus their decode table (never both). Kernels that
/// need a decoded seq::Sequence (arlm, agmm, blocked, Markov MSS) were
/// rejected at validation for mapped corpora, so they may dereference
/// `sequence` unconditionally.
struct RecordView {
  const seq::Sequence* sequence = nullptr;
  std::span<const uint8_t> mapped_bytes;
  const std::array<uint8_t, 256>* decode = nullptr;
  int64_t size = 0;

  static RecordView For(const Corpus& corpus, int64_t index) {
    RecordView view;
    if (corpus.is_mapped()) {
      view.mapped_bytes = corpus.mapped_record();
      view.decode = &corpus.decode_table();
      view.size = static_cast<int64_t>(view.mapped_bytes.size());
    } else {
      view.sequence = &corpus.sequence(index);
      view.size = view.sequence->size();
    }
    return view;
  }
};

/// Everything a query needs resolved before its kernel can run: the
/// multinomial context (or the Markov model for a Markov-model MSS
/// query) and the threshold cutoff with any alpha_p already converted.
/// Built during validation, one entry per query.
struct QueryPlan {
  const api::QuerySpec* spec = nullptr;
  api::QueryKind kind = api::QueryKind::kMss;
  const core::ChiSquareContext* context = nullptr;  // null for Markov.
  const seq::MarkovModel* markov = nullptr;
  double alpha0 = -1.0;  // kThreshold: resolved X² cutoff.
  // kSubstrings: resolved X² floor (alpha_p converted at the kind's
  // degrees of freedom — k−1 multinomial, k(k−1) Markov).
  double min_x2 = -std::numeric_limits<double>::infinity();
};

Status QueryError(std::string_view label, size_t index, api::QueryKind kind,
                  const std::string& detail) {
  return Status::InvalidArgument(StrCat(label, " ", index, " (",
                                        api::QueryKindToString(kind),
                                        "): ", detail));
}

/// Kind-specific parameter validation; failures name the query field.
Status ValidateRequest(const api::QuerySpec& spec, const Corpus& corpus) {
  const int64_t corpus_size = corpus.size();
  auto fail = [](const std::string& detail) {
    return Status::InvalidArgument(detail);
  };
  if (spec.sequence_index < 0 || spec.sequence_index >= corpus_size) {
    return fail(StrCat("field seq: index ", spec.sequence_index,
                       " out of range [0, ", corpus_size, ")"));
  }
  if (corpus.is_mapped()) {
    // A mapped corpus has no decoded seq::Sequence; only the kernels that
    // consume prefix counts or the suffix index can run over it.
    const api::QueryKind kind = spec.kind();
    if (kind == api::QueryKind::kArlm || kind == api::QueryKind::kAgmm ||
        kind == api::QueryKind::kBlocked) {
      return fail(
          "kind is not executable over a memory-mapped corpus (the kernel "
          "walks a decoded sequence); load the record through a text "
          "loader instead");
    }
    if (spec.model.kind == api::ModelKind::kMarkov &&
        kind != api::QueryKind::kSubstrings) {
      return fail(
          "field model: the Markov MSS scan walks a decoded sequence and "
          "is not executable over a memory-mapped corpus");
    }
  }
  if (const auto* q = std::get_if<api::TopTQuery>(&spec.request)) {
    if (q->t < 1) return fail(StrCat("field t must be >= 1, got ", q->t));
  } else if (const auto* q =
                 std::get_if<api::TopDisjointQuery>(&spec.request)) {
    if (q->t < 1) return fail(StrCat("field t must be >= 1, got ", q->t));
    if (q->min_length < 1) {
      return fail(
          StrCat("field min_length must be >= 1, got ", q->min_length));
    }
    if (std::isnan(q->min_chi_square)) {
      // Every comparison against NaN is false, which would silently
      // disable the score floor.
      return fail("field min_x2 must not be NaN");
    }
  } else if (const auto* q = std::get_if<api::ThresholdQuery>(&spec.request)) {
    // NaN slips through every range comparison (all false), which would
    // read as "unset" here and as "matches everything/nothing" in the
    // scan; an infinite alpha0 is equally meaningless as a cutoff.
    if (std::isnan(q->alpha0) || std::isnan(q->alpha_p)) {
      return fail("fields alpha0 and alpha_p must not be NaN");
    }
    if (q->alpha0 >= 0.0 && !std::isfinite(q->alpha0)) {
      return fail("field alpha0 must be finite");
    }
    if (q->alpha_p < 0.0 && q->alpha0 < 0.0) {
      return fail(
          "one of field alpha0 (X² cutoff) or field alpha_p (p-value) "
          "must be set");
    }
    if (q->alpha_p >= 0.0 && (q->alpha_p <= 0.0 || q->alpha_p >= 1.0)) {
      return fail(
          StrCat("field alpha_p must be in (0, 1), got ", q->alpha_p));
    }
    if (q->max_matches < 0) {
      return fail(
          StrCat("field max_matches must be >= 0, got ", q->max_matches));
    }
  } else if (const auto* q = std::get_if<api::MinLengthQuery>(&spec.request)) {
    if (q->min_length < 1) {
      return fail(
          StrCat("field min_length must be >= 1, got ", q->min_length));
    }
  } else if (const auto* q =
                 std::get_if<api::LengthBoundedQuery>(&spec.request)) {
    if (q->min_length < 1) {
      return fail(
          StrCat("field min_length must be >= 1, got ", q->min_length));
    }
    if (q->max_length != 0 && q->max_length < q->min_length) {
      return fail(StrCat("field max_length (", q->max_length,
                         ") must be 0 (unbounded) or >= min_length (",
                         q->min_length, ")"));
    }
  } else if (const auto* q = std::get_if<api::BlockedQuery>(&spec.request)) {
    if (q->block_size < 1) {
      return fail(
          StrCat("field block_size must be >= 1, got ", q->block_size));
    }
  } else if (const auto* q = std::get_if<api::SubstringsQuery>(&spec.request)) {
    if (q->top < 0) {
      return fail(StrCat("field top must be >= 0 (0 = all matches), got ",
                         q->top));
    }
    if (q->min_length < 1) {
      return fail(
          StrCat("field min_length must be >= 1, got ", q->min_length));
    }
    if (q->max_length != 0 && q->max_length < q->min_length) {
      return fail(StrCat("field max_length (", q->max_length,
                         ") must be 0 (unbounded) or >= min_length (",
                         q->min_length, ")"));
    }
    if (q->min_count < 1) {
      return fail(StrCat("field min_count must be >= 1, got ", q->min_count));
    }
    if (!q->maximal && q->max_length == 0) {
      // Without maximality, every class member is enumerated — O(n²)
      // candidates on an unbounded length. Refuse rather than hang.
      return fail(
          "field maximal: maximal=0 enumerates every distinct substring "
          "and requires max_length > 0 to bound the output");
    }
    if (std::isnan(q->alpha0) || std::isnan(q->alpha_p)) {
      return fail("fields alpha0 and alpha_p must not be NaN");
    }
    if (q->alpha0 >= 0.0 && !std::isfinite(q->alpha0)) {
      return fail("field alpha0 must be finite");
    }
    if (q->alpha_p >= 0.0 && (q->alpha_p <= 0.0 || q->alpha_p >= 1.0)) {
      return fail(
          StrCat("field alpha_p must be in (0, 1), got ", q->alpha_p));
    }
  }
  return Status::OK();
}

/// Model validation against the corpus alphabet; failures name the model
/// field.
Status ValidateModel(const api::ModelSpec& model, api::QueryKind kind,
                     int k) {
  switch (model.kind) {
    case api::ModelKind::kUniform:
      return Status::OK();
    case api::ModelKind::kMultinomial:
      if (static_cast<int>(model.probs.size()) != k) {
        return Status::InvalidArgument(
            StrCat("field model.probs has ", model.probs.size(),
                   " probabilities but the corpus alphabet has ", k,
                   " symbols"));
      }
      return Status::OK();
    case api::ModelKind::kMarkov:
      if (kind != api::QueryKind::kMss &&
          kind != api::QueryKind::kSubstrings) {
        return Status::InvalidArgument(
            StrCat("field model: Markov models are executable only via "
                   "mss queries (the Markov-statistic scan) or substrings "
                   "queries (Markov-scored suffix scan), not ",
                   api::QueryKindToString(kind)));
      }
      if (model.order != 1) {
        return Status::InvalidArgument(
            StrCat("field model.order: only order-1 Markov models are "
                   "supported, got ", model.order));
      }
      if (static_cast<int64_t>(model.transitions.size()) !=
          static_cast<int64_t>(k) * k) {
        return Status::InvalidArgument(
            StrCat("field model.transitions has ", model.transitions.size(),
                   " entries but the corpus alphabet needs ", k, "x", k,
                   " = ", static_cast<int64_t>(k) * k));
      }
      if (!model.initial.empty() &&
          static_cast<int>(model.initial.size()) != k) {
        return Status::InvalidArgument(
            StrCat("field model.initial has ", model.initial.size(),
                   " entries but the corpus alphabet has ", k, " symbols"));
      }
      return Status::OK();
  }
  return Status::OK();
}

/// Shapes a best-substring result (the six best-substring kernels and the
/// sharded scan) into the cached payload — one place, so sharded and
/// unsharded MSS queries cannot diverge in result shape.
CachedResult MssCachedResult(const core::Substring& best) {
  CachedResult out;
  out.best = best;
  out.substrings = {best};
  out.match_count = best.length() > 0 ? 1 : 0;
  return out;
}

/// Shapes a suffix-scan result into the cached payload: the class
/// substrings with their parallel counts and p-values, plus the sweep's
/// instrumentation mapped onto ScanStats (candidates scored = positions
/// examined, classes enumerated = start positions).
CachedResult SubstringsCachedResult(core::SuffixScanResult result,
                                    core::ScanStats* stats) {
  CachedResult out;
  out.substrings.reserve(result.classes.size());
  out.counts.reserve(result.classes.size());
  out.p_values.reserve(result.classes.size());
  for (const core::SubstringClass& cls : result.classes) {
    out.substrings.push_back(cls.substring);
    out.counts.push_back(cls.count);
    out.p_values.push_back(cls.p_value);
  }
  if (!out.substrings.empty()) out.best = out.substrings.front();
  out.match_count = result.match_count;
  stats->positions_examined = result.stats.candidates_scored;
  stats->start_positions = result.stats.classes_enumerated;
  return out;
}

/// Runs a substrings query: builds the suffix index over the record (the
/// decoded symbols, or the mapped bytes through their decode table) and
/// sweeps it with the plan's scorer. No PrefixCounts are consumed — this
/// is the path that keeps peak memory at SA+LCP instead of 8·k bytes per
/// position.
CachedResult RunSubstringsKernel(const QueryPlan& plan,
                                 const RecordView& view,
                                 core::ScanStats* stats) {
  const auto& q = std::get<api::SubstringsQuery>(plan.spec->request);
  core::SuffixScanOptions options;
  options.top_n = q.top;
  options.min_length = q.min_length;
  options.max_length = q.max_length;
  options.min_count = q.min_count;
  options.maximal_only = q.maximal;
  options.min_x2 = plan.min_x2;

  const int k = plan.context->alphabet_size();
  // Validation pinned every parameter and the record bytes, so the
  // builds/scans cannot fail here.
  core::SuffixScan scan =
      view.sequence != nullptr
          ? core::SuffixScan::Build(view.sequence->symbols(), k).value()
          : core::SuffixScan::BuildMapped(view.mapped_bytes, *view.decode, k)
                .value();
  if (plan.markov != nullptr) {
    core::MarkovChiSquare markov =
        core::MarkovChiSquare::Make(*plan.markov).value();
    return SubstringsCachedResult(scan.ScanMarkov(markov, options).value(),
                                  stats);
  }
  return SubstringsCachedResult(scan.Scan(*plan.context, options).value(),
                                stats);
}

/// Runs the query's kernel against prebuilt state. Pure function of its
/// inputs — safe to call concurrently for distinct queries. `counts` is
/// null exactly for Markov-model queries and substrings queries, whose
/// kernels never read prefix counts (the caller skips the O(k·n) build
/// entirely).
CachedResult RunQueryKernel(const QueryPlan& plan, const RecordView& view,
                            const seq::PrefixCounts* counts_ptr,
                            core::ScanStats* stats) {
  const core::ChiSquareContext& context = *plan.context;
  CachedResult out;
  if (plan.kind == api::QueryKind::kSubstrings) {
    return RunSubstringsKernel(plan, view, stats);
  }
  if (plan.markov != nullptr) {
    if (view.size < 2) {
      // No transition to score; the kernel contract needs >= 2 symbols.
      return MssCachedResult(core::Substring{});
    }
    core::MssResult result =
        core::FindMssMarkov(*view.sequence, *plan.markov).value();
    *stats = result.stats;
    return MssCachedResult(result.best);
  }
  const seq::PrefixCounts& counts = *counts_ptr;
  switch (plan.kind) {
    case api::QueryKind::kMss: {
      core::MssResult result = core::FindMss(counts, context);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kTopT: {
      const auto& q = std::get<api::TopTQuery>(plan.spec->request);
      core::TopTResult result = core::FindTopT(counts, context, q.t);
      out.substrings = std::move(result.top);
      if (!out.substrings.empty()) out.best = out.substrings.front();
      out.match_count = static_cast<int64_t>(out.substrings.size());
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kTopDisjoint: {
      const auto& q = std::get<api::TopDisjointQuery>(plan.spec->request);
      core::TopDisjointOptions options;
      options.t = q.t;
      options.min_length = q.min_length;
      options.min_chi_square = q.min_chi_square;
      out.substrings = core::FindTopDisjoint(counts, context, options);
      if (!out.substrings.empty()) out.best = out.substrings.front();
      out.match_count = static_cast<int64_t>(out.substrings.size());
      break;
    }
    case api::QueryKind::kThreshold: {
      const auto& q = std::get<api::ThresholdQuery>(plan.spec->request);
      core::ThresholdOptions options;
      options.max_matches = q.max_matches;
      core::ThresholdResult result =
          core::FindAboveThreshold(counts, context, plan.alpha0, options);
      out.substrings = std::move(result.matches);
      out.best = result.best;
      out.match_count = result.match_count;
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kMinLength: {
      const auto& q = std::get<api::MinLengthQuery>(plan.spec->request);
      core::MssResult result =
          core::FindMssMinLength(counts, context, q.min_length);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kLengthBounded: {
      const auto& q = std::get<api::LengthBoundedQuery>(plan.spec->request);
      const int64_t n = view.size;
      const int64_t max_length = q.max_length == 0 ? n : q.max_length;
      if (n < q.min_length || max_length < q.min_length) {
        // No substring can satisfy the window; the kernel contract
        // requires max_length >= min_length.
        out = MssCachedResult(core::Substring{});
        break;
      }
      core::MssResult result = core::FindMssLengthBounded(
          counts, context, q.min_length, max_length);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kArlm: {
      core::MssResult result =
          core::FindMssArlm(*view.sequence, counts, context);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kAgmm: {
      core::MssResult result =
          core::FindMssAgmm(*view.sequence, counts, context);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kBlocked: {
      const auto& q = std::get<api::BlockedQuery>(plan.spec->request);
      core::MssResult result = core::FindMssBlocked(*view.sequence, counts,
                                                    context, q.block_size);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case api::QueryKind::kSubstrings:
      break;  // Handled before the switch.
  }
  return out;
}

/// Reshapes a cached payload into the kind's QueryResult alternative.
void FillPayload(api::QueryKind kind, const CachedResult& computed,
                 const core::ScanStats& stats, api::QueryResult* result) {
  switch (kind) {
    case api::QueryKind::kTopT:
    case api::QueryKind::kTopDisjoint: {
      api::RankedPayload payload;
      payload.ranked = computed.substrings;
      payload.stats = stats;
      result->payload = std::move(payload);
      return;
    }
    case api::QueryKind::kThreshold: {
      api::ThresholdPayload payload;
      payload.matches = computed.substrings;
      payload.match_count = computed.match_count;
      payload.best = computed.best;
      payload.stats = stats;
      result->payload = std::move(payload);
      return;
    }
    case api::QueryKind::kSubstrings: {
      api::SubstringsPayload payload;
      payload.ranked = computed.substrings;
      payload.counts = computed.counts;
      payload.p_values = computed.p_values;
      payload.match_count = computed.match_count;
      payload.stats = stats;
      result->payload = std::move(payload);
      return;
    }
    default: {
      api::BestPayload payload;
      payload.best = computed.best;
      payload.stats = stats;
      result->payload = payload;
      return;
    }
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : cache_(options.cache_capacity),
      pool_(options.num_threads),
      shard_min_sequence_(options.shard_min_sequence),
      x2_dispatch_(options.x2_dispatch) {}

Result<std::vector<api::QueryResult>> Engine::ExecuteQueries(
    const Corpus& corpus, const std::vector<api::QuerySpec>& queries) {
  return ExecuteQueriesInternal(corpus, queries, "query");
}

Result<std::vector<api::QueryResult>> Engine::ExecuteQueriesInternal(
    const Corpus& corpus, const std::vector<api::QuerySpec>& queries,
    std::string_view label) {
  // One batch at a time per engine (the header's thread-safety contract);
  // a second concurrent batch would share per-batch plan state. Debug
  // builds catch the misuse at the entry point instead of as a race.
  struct BatchGuard {
    std::atomic<bool>& flag;
    explicit BatchGuard(std::atomic<bool>& f) : flag(f) {
      const bool was_active = f.exchange(true, std::memory_order_acq_rel);
      SIGSUB_DCHECK_MSG(!was_active,
                        "Engine::ExecuteQueries is not reentrant; "
                        "serialize batches from concurrent callers");
    }
    ~BatchGuard() { flag.store(false, std::memory_order_release); }
  } batch_guard(batch_active_);

  const int k = corpus.alphabet().size();

  // Validate every query and build its execution plan: distinct
  // multinomial models resolve to one shared ChiSquareContext each
  // (ChiSquareContext::Make re-validates values ValidateModel cannot
  // judge cheaply — normalization, positivity); Markov-model MSS queries
  // get a seq::MarkovModel. Any failure names the query and field and
  // fails the batch before a kernel runs.
  const std::vector<double> uniform(static_cast<size_t>(k), 1.0 / k);
  struct ModelState {
    core::ChiSquareContext context;
  };
  std::map<std::vector<double>, std::unique_ptr<ModelState>> models;
  std::vector<std::unique_ptr<seq::MarkovModel>> markov_models;
  std::vector<QueryPlan> plans(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const api::QuerySpec& spec = queries[i];
    QueryPlan& plan = plans[i];
    plan.spec = &spec;
    plan.kind = spec.kind();
    auto wrap = [&](const Status& status) {
      return status.ok() ? status
                         : QueryError(label, i, plan.kind, status.message());
    };
    SIGSUB_RETURN_IF_ERROR(wrap(ValidateRequest(spec, corpus)));
    SIGSUB_RETURN_IF_ERROR(wrap(ValidateModel(spec.model, plan.kind, k)));

    if (spec.model.kind == api::ModelKind::kMarkov) {
      std::vector<double> initial = spec.model.initial;
      if (initial.empty()) {
        initial.assign(static_cast<size_t>(k), 1.0 / k);
      }
      auto markov = seq::MarkovModel::Make(k, spec.model.transitions,
                                           std::move(initial));
      if (!markov.ok()) {
        return QueryError(label, i, plan.kind,
                          StrCat("field model: ", markov.status().message()));
      }
      markov_models.push_back(
          std::make_unique<seq::MarkovModel>(std::move(markov).value()));
      plan.markov = markov_models.back().get();
    }

    // Every kernel but the Markov scan consumes a multinomial context;
    // Markov MSS queries still get the uniform one so the shared
    // PrefixCounts plumbing stays uniform (the kernel ignores it).
    const std::vector<double>& probs =
        spec.model.kind == api::ModelKind::kMultinomial ? spec.model.probs
                                                        : uniform;
    auto [it, inserted] = models.try_emplace(probs);
    if (inserted) {
      auto context = core::ChiSquareContext::Make(probs, x2_dispatch_);
      if (!context.ok()) {
        models.erase(it);
        return QueryError(
            label, i, plan.kind,
            StrCat("field model: ", context.status().message()));
      }
      it->second = std::make_unique<ModelState>(
          ModelState{std::move(context).value()});
    }
    plan.context = &it->second->context;

    if (const auto* q = std::get_if<api::ThresholdQuery>(&spec.request)) {
      // alpha_p converts once per batch, not once per candidate; when
      // both fields are set the p-value wins (api/query.h documents the
      // precedence).
      plan.alpha0 = q->alpha_p >= 0.0
                        ? stats::ChiSquaredDistribution(k - 1)
                              .CriticalValue(q->alpha_p)
                        : q->alpha0;
    } else if (const auto* q =
                   std::get_if<api::SubstringsQuery>(&spec.request)) {
      // Same precedence as threshold, at the statistic's own degrees of
      // freedom. Neither set -> -inf (everything qualifies).
      const int dof =
          plan.markov != nullptr ? k * (k - 1) : k - 1;
      if (q->alpha_p >= 0.0) {
        plan.min_x2 =
            stats::ChiSquaredDistribution(dof).CriticalValue(q->alpha_p);
      } else if (q->alpha0 >= 0.0) {
        plan.min_x2 = q->alpha0;
      }
    }
  }

  // Fingerprint every referenced record (cheap, O(n)) so the cache can be
  // consulted before any PrefixCounts exist: a fully-warm batch must not
  // pay the O(k·n) builds that context reuse is meant to amortize.
  std::vector<std::unique_ptr<SequenceState>> states(
      static_cast<size_t>(corpus.size()));
  for (const api::QuerySpec& spec : queries) {
    auto& state = states[static_cast<size_t>(spec.sequence_index)];
    if (state) continue;
    state = std::make_unique<SequenceState>();
    // Mapped records carry a precomputed streaming fingerprint with the
    // same byte semantics, so cache identity is loader-independent.
    state->fingerprint =
        corpus.is_mapped()
            ? corpus.mapped_fingerprint()
            : FingerprintSequence(corpus.sequence(spec.sequence_index));
  }

  // Resolve cache hits; group the misses by cache key so identical
  // queries (duplicate specs, or distinct records with identical content)
  // run their kernel exactly once per distinct computation. The query
  // half of the key is the FNV-1a of the canonical serialization bytes —
  // the same bytes FormatQuery prints, minus the record index.
  std::vector<api::QueryResult> results(queries.size());
  std::unordered_map<CacheKey, std::vector<size_t>, CacheKeyHash> miss_groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    const api::QuerySpec& spec = queries[i];
    api::QueryResult& result = results[i];
    result.query_index = static_cast<int64_t>(i);
    result.sequence_index = spec.sequence_index;
    result.kind = plans[i].kind;

    const CacheKey key{
        states[static_cast<size_t>(spec.sequence_index)]->fingerprint,
        api::FingerprintQuery(spec)};
    if (std::optional<CachedResult> cached = cache_.Lookup(key)) {
      FillPayload(result.kind, *cached, core::ScanStats{}, &result);
      result.cache_hit = true;
      continue;
    }
    miss_groups[key].push_back(i);
  }

  // Publishes a computed payload to the group's QueryResults and the
  // cache. Duplicates are served by the lead's run: payload identical,
  // flagged as cache hits, no scan stats of their own.
  auto publish = [&](const std::vector<size_t>& indices, const CacheKey& key,
                     CachedResult computed, const core::ScanStats& stats) {
    api::QueryResult& lead = results[indices.front()];
    FillPayload(lead.kind, computed, stats, &lead);
    for (size_t d = 1; d < indices.size(); ++d) {
      api::QueryResult& dup = results[indices[d]];
      FillPayload(dup.kind, computed, core::ScanStats{}, &dup);
      dup.cache_hit = true;
    }
    cache_.Insert(key, std::move(computed));
  };

  // Per sharded group: the shared skip bound and one result slot per
  // shard, merged on the orchestrating thread after the pool drains.
  struct ShardedGroup {
    const CacheKey* key;
    const std::vector<size_t>* indices;
    core::AtomicMax shared_best;
    std::vector<core::MssResult> shards;
  };
  std::vector<std::unique_ptr<ShardedGroup>> sharded;
  // Scan stats of each miss group's lead, written by the kernel task and
  // published after the pool drains.
  std::vector<core::ScanStats> group_stats(miss_groups.size());
  std::vector<std::pair<const CacheKey*, CachedResult>> group_payloads(
      miss_groups.size());

  size_t group_index = 0;
  for (const auto& [key, query_indices] : miss_groups) {
    const size_t g = group_index++;
    const QueryPlan& plan = plans[query_indices.front()];
    const api::QuerySpec& spec = *plan.spec;
    const int64_t seq_index = spec.sequence_index;
    SequenceState* state = states[static_cast<size_t>(seq_index)].get();
    const RecordView view = RecordView::For(corpus, seq_index);

    // In-record sharding: one oversized multinomial MSS record is strided
    // across the pool instead of pinning a single worker. (Markov MSS has
    // no sharded kernel; it runs sequentially like every other kind.)
    const int64_t n = view.size;
    int num_shards = static_cast<int>(std::min<int64_t>(
        pool_.num_threads(), std::max<int64_t>(1, n)));
    if (plan.kind == api::QueryKind::kMss && plan.markov == nullptr &&
        shard_min_sequence_ > 0 && n >= shard_min_sequence_ &&
        num_shards > 1) {
      auto group = std::make_unique<ShardedGroup>();
      group->key = &key;
      group->indices = &query_indices;
      group->shards.resize(static_cast<size_t>(num_shards));
      const core::ChiSquareContext* context = plan.context;
      const Corpus* corpus_ptr = &corpus;
      for (int shard = 0; shard < num_shards; ++shard) {
        ShardedGroup* gr = group.get();
        pool_.Submit([state, corpus_ptr, seq_index, context, shard,
                      num_shards, gr] {
          // First shard to arrive builds the record's counts; the rest
          // block on call_once only until that build finishes.
          const seq::PrefixCounts& counts =
              state->CountsFor(*corpus_ptr, seq_index);
          gr->shards[static_cast<size_t>(shard)] = core::MssShardScan(
              counts, *context, shard, num_shards, &gr->shared_best);
        });
      }
      sharded.push_back(std::move(group));
      continue;
    }

    const QueryPlan* plan_ptr = &plan;
    const Corpus* corpus_ptr = &corpus;
    core::ScanStats* stats = &group_stats[g];
    CachedResult* payload = &group_payloads[g].second;
    group_payloads[g].first = &key;
    pool_.Submit([plan_ptr, state, corpus_ptr, seq_index, view, stats,
                  payload] {
      // Markov and substrings kernels never read prefix counts; skip the
      // O(k·n) build (for substrings that skip IS the memory win).
      const seq::PrefixCounts* counts =
          plan_ptr->markov == nullptr &&
                  plan_ptr->kind != api::QueryKind::kSubstrings
              ? &state->CountsFor(*corpus_ptr, seq_index)
              : nullptr;
      *payload = RunQueryKernel(*plan_ptr, view, counts, stats);
    });
  }
  pool_.Wait();

  // Publish sequential groups, then merge and publish the sharded ones.
  group_index = 0;
  for (const auto& [key, query_indices] : miss_groups) {
    const size_t g = group_index++;
    if (group_payloads[g].first == nullptr) continue;  // Sharded group.
    publish(query_indices, key, std::move(group_payloads[g].second),
            group_stats[g]);
  }
  for (const std::unique_ptr<ShardedGroup>& group : sharded) {
    core::MssResult merged = core::MergeShardResults(group->shards);
    publish(*group->indices, *group->key, MssCachedResult(merged.best),
            merged.stats);
  }
  queries_executed_.fetch_add(static_cast<int64_t>(queries.size()),
                              std::memory_order_relaxed);
  batches_executed_.fetch_add(1, std::memory_order_relaxed);
  return results;
}

Result<std::vector<JobResult>> Engine::ExecuteBatch(
    const Corpus& corpus, const std::vector<JobSpec>& jobs) {
  std::vector<api::QuerySpec> queries;
  queries.reserve(jobs.size());
  for (const JobSpec& job : jobs) queries.push_back(ToQuerySpec(job));
  SIGSUB_ASSIGN_OR_RETURN(std::vector<api::QueryResult> query_results,
                          ExecuteQueriesInternal(corpus, queries, "job"));

  std::vector<JobResult> results(jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    const api::QueryResult& from = query_results[i];
    JobResult& to = results[i];
    to.job_index = from.query_index;
    to.sequence_index = from.sequence_index;
    to.kind = jobs[i].kind;
    to.cache_hit = from.cache_hit;
    to.stats = from.stats();
    if (const auto* best = std::get_if<api::BestPayload>(&from.payload)) {
      // Legacy shape: always one entry, zero-length when nothing
      // qualified.
      to.best = best->best;
      to.substrings = {best->best};
      to.match_count = best->best.length() > 0 ? 1 : 0;
    } else if (const auto* ranked =
                   std::get_if<api::RankedPayload>(&from.payload)) {
      to.substrings = ranked->ranked;
      if (!to.substrings.empty()) to.best = to.substrings.front();
      to.match_count = static_cast<int64_t>(to.substrings.size());
    } else {
      const auto& threshold = std::get<api::ThresholdPayload>(from.payload);
      to.substrings = threshold.matches;
      to.best = threshold.best;
      to.match_count = threshold.match_count;
    }
  }
  return results;
}

Result<std::vector<JobResult>> Engine::ExecuteUniform(const Corpus& corpus,
                                                      JobKind kind,
                                                      const JobParams& params) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(corpus.size()));
  for (int64_t i = 0; i < corpus.size(); ++i) {
    JobSpec spec;
    spec.kind = kind;
    spec.sequence_index = i;
    spec.params = params;
    jobs.push_back(std::move(spec));
  }
  return ExecuteBatch(corpus, jobs);
}

}  // namespace engine
}  // namespace sigsub
