#include "engine/engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/str_util.h"
#include "core/atomic_max.h"
#include "core/chi_square.h"
#include "core/parallel.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "engine/fingerprint.h"
#include "seq/prefix_counts.h"

namespace sigsub {
namespace engine {
namespace {

/// Per-distinct-sequence state built once per batch and shared by every
/// job targeting that record. The PrefixCounts build is lazy: the first
/// kernel task that needs the record builds it under `build_once`, so
/// there is no build-all barrier before any kernel may start — records
/// with cheap builds begin scanning while large builds are still running.
struct SequenceState {
  std::once_flag build_once;
  std::optional<seq::PrefixCounts> counts;
  uint64_t fingerprint = 0;

  const seq::PrefixCounts& CountsFor(const seq::Sequence& sequence) {
    std::call_once(build_once, [&] { counts.emplace(sequence); });
    return *counts;
  }
};

/// Per-distinct-model state (keyed by the probability vector).
struct ModelState {
  core::ChiSquareContext context;
  uint64_t fingerprint = 0;
};

Status ValidateSpec(const Corpus& corpus, const JobSpec& spec,
                    size_t job_index) {
  auto fail = [&](const std::string& detail) {
    return Status::InvalidArgument(
        StrCat("job ", job_index, " (", JobKindToString(spec.kind),
               "): ", detail));
  };
  if (spec.sequence_index < 0 || spec.sequence_index >= corpus.size()) {
    return fail(StrCat("sequence index ", spec.sequence_index,
                       " out of range [0, ", corpus.size(), ")"));
  }
  if (!spec.probs.empty() &&
      static_cast<int>(spec.probs.size()) != corpus.alphabet().size()) {
    return fail(StrCat("model has ", spec.probs.size(),
                       " probabilities but the corpus alphabet has ",
                       corpus.alphabet().size(), " symbols"));
  }
  switch (spec.kind) {
    case JobKind::kTopT:
    case JobKind::kTopDisjoint:
      if (spec.params.t < 1) {
        return fail(StrCat("t must be >= 1, got ", spec.params.t));
      }
      if (spec.params.min_length < 1 && spec.kind == JobKind::kTopDisjoint) {
        return fail(
            StrCat("min_length must be >= 1, got ", spec.params.min_length));
      }
      break;
    case JobKind::kMinLength:
      if (spec.params.min_length < 1) {
        return fail(
            StrCat("min_length must be >= 1, got ", spec.params.min_length));
      }
      break;
    case JobKind::kThreshold:
      if (spec.params.alpha0 < 0.0) {
        return fail(StrCat("alpha0 must be >= 0, got ", spec.params.alpha0));
      }
      if (spec.params.max_matches < 0) {
        return fail(
            StrCat("max_matches must be >= 0, got ", spec.params.max_matches));
      }
      break;
    case JobKind::kMss:
      break;
  }
  return Status::OK();
}

/// Shapes a best-substring result (kMss and the sharded scan) into the
/// cached payload — one place, so sharded and unsharded MSS jobs cannot
/// diverge in result shape.
CachedResult MssCachedResult(const core::Substring& best) {
  CachedResult out;
  out.best = best;
  out.substrings = {best};
  out.match_count = best.length() > 0 ? 1 : 0;
  return out;
}

/// Runs the job's kernel against prebuilt state. Pure function of its
/// inputs — safe to call concurrently for distinct jobs.
CachedResult RunKernel(const JobSpec& spec, const seq::PrefixCounts& counts,
                       const core::ChiSquareContext& context,
                       core::ScanStats* stats) {
  CachedResult out;
  switch (spec.kind) {
    case JobKind::kMss: {
      core::MssResult result = core::FindMss(counts, context);
      out = MssCachedResult(result.best);
      *stats = result.stats;
      break;
    }
    case JobKind::kMinLength: {
      core::MssResult result =
          core::FindMssMinLength(counts, context, spec.params.min_length);
      out.best = result.best;
      out.substrings = {result.best};
      out.match_count = result.best.length() > 0 ? 1 : 0;
      *stats = result.stats;
      break;
    }
    case JobKind::kTopT: {
      core::TopTResult result = core::FindTopT(counts, context, spec.params.t);
      out.substrings = std::move(result.top);
      if (!out.substrings.empty()) out.best = out.substrings.front();
      out.match_count = static_cast<int64_t>(out.substrings.size());
      *stats = result.stats;
      break;
    }
    case JobKind::kTopDisjoint: {
      core::TopDisjointOptions options;
      options.t = spec.params.t;
      options.min_length = spec.params.min_length;
      options.min_chi_square = spec.params.min_chi_square;
      out.substrings = core::FindTopDisjoint(counts, context, options);
      if (!out.substrings.empty()) out.best = out.substrings.front();
      out.match_count = static_cast<int64_t>(out.substrings.size());
      break;
    }
    case JobKind::kThreshold: {
      core::ThresholdOptions options;
      options.max_matches = spec.params.max_matches;
      core::ThresholdResult result = core::FindAboveThreshold(
          counts, context, spec.params.alpha0, options);
      out.substrings = std::move(result.matches);
      out.best = result.best;
      out.match_count = result.match_count;
      *stats = result.stats;
      break;
    }
  }
  return out;
}

}  // namespace

uint64_t FingerprintJobParams(JobKind kind, const JobParams& params) {
  Fnv1a hasher;
  hasher.UpdateI64(static_cast<int64_t>(kind));
  switch (kind) {
    case JobKind::kMss:
      break;
    case JobKind::kTopT:
      hasher.UpdateI64(params.t);
      break;
    case JobKind::kTopDisjoint:
      hasher.UpdateI64(params.t);
      hasher.UpdateI64(params.min_length);
      hasher.UpdateDouble(params.min_chi_square);
      break;
    case JobKind::kThreshold:
      hasher.UpdateDouble(params.alpha0);
      hasher.UpdateI64(params.max_matches);
      break;
    case JobKind::kMinLength:
      hasher.UpdateI64(params.min_length);
      break;
  }
  return hasher.Digest();
}

Engine::Engine(EngineOptions options)
    : cache_(options.cache_capacity),
      pool_(options.num_threads),
      shard_min_sequence_(options.shard_min_sequence),
      x2_dispatch_(options.x2_dispatch) {}

Result<std::vector<JobResult>> Engine::ExecuteBatch(
    const Corpus& corpus, const std::vector<JobSpec>& jobs) {
  for (size_t i = 0; i < jobs.size(); ++i) {
    SIGSUB_RETURN_IF_ERROR(ValidateSpec(corpus, jobs[i], i));
  }

  const int k = corpus.alphabet().size();
  const std::vector<double> uniform(static_cast<size_t>(k), 1.0 / k);

  // Distinct models across the batch, keyed by the probability vector
  // (empty probs resolve to uniform). ChiSquareContext::Make re-validates,
  // catching non-normalized or non-positive vectors that ValidateSpec
  // cannot judge cheaply.
  std::map<std::vector<double>, std::unique_ptr<ModelState>> models;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const std::vector<double>& probs =
        jobs[i].probs.empty() ? uniform : jobs[i].probs;
    if (models.contains(probs)) continue;
    auto context = core::ChiSquareContext::Make(probs, x2_dispatch_);
    if (!context.ok()) {
      return Status::InvalidArgument(StrCat("job ", i, ": invalid model: ",
                                            context.status().message()));
    }
    models.emplace(probs,
                   std::make_unique<ModelState>(ModelState{
                       std::move(context).value(), FingerprintProbs(probs)}));
  }

  // Fingerprint every referenced record (cheap, O(n)) so the cache can be
  // consulted before any PrefixCounts exist: a fully-warm batch must not
  // pay the O(k·n) builds that context reuse is meant to amortize.
  std::vector<std::unique_ptr<SequenceState>> states(
      static_cast<size_t>(corpus.size()));
  for (const JobSpec& spec : jobs) {
    auto& state = states[static_cast<size_t>(spec.sequence_index)];
    if (state) continue;
    state = std::make_unique<SequenceState>();
    state->fingerprint =
        FingerprintSequence(corpus.sequence(spec.sequence_index));
  }

  // Resolve cache hits; group the misses by cache key so identical jobs
  // (duplicate specs, or distinct records with identical content) run
  // their kernel exactly once per distinct computation.
  std::vector<JobResult> results(jobs.size());
  std::unordered_map<CacheKey, std::vector<size_t>, CacheKeyHash> miss_groups;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& spec = jobs[i];
    JobResult& result = results[i];
    result.job_index = static_cast<int64_t>(i);
    result.sequence_index = spec.sequence_index;
    result.kind = spec.kind;

    const std::vector<double>& probs =
        spec.probs.empty() ? uniform : spec.probs;
    const ModelState& model = *models.at(probs);
    const CacheKey key{
        states[static_cast<size_t>(spec.sequence_index)]->fingerprint,
        model.fingerprint, FingerprintJobParams(spec.kind, spec.params)};
    if (std::optional<CachedResult> cached = cache_.Lookup(key)) {
      result.substrings = std::move(cached->substrings);
      result.best = cached->best;
      result.match_count = cached->match_count;
      result.cache_hit = true;
      continue;
    }
    miss_groups[key].push_back(i);
  }

  // Publishes a computed payload to the group's JobResults and the cache.
  // Duplicates are served by the lead's run: payload identical, flagged as
  // cache hits, no scan stats of their own.
  auto publish = [&](const std::vector<size_t>& indices, const CacheKey& key,
                     CachedResult computed) {
    JobResult& lead = results[indices.front()];
    lead.substrings = computed.substrings;
    lead.best = computed.best;
    lead.match_count = computed.match_count;
    for (size_t d = 1; d < indices.size(); ++d) {
      JobResult& dup = results[indices[d]];
      dup.substrings = computed.substrings;
      dup.best = computed.best;
      dup.match_count = computed.match_count;
      dup.cache_hit = true;
    }
    cache_.Insert(key, std::move(computed));
  };

  // Per sharded group: the shared skip bound and one result slot per
  // shard, merged on the orchestrating thread after the pool drains.
  struct ShardedGroup {
    const CacheKey* key;
    const std::vector<size_t>* indices;
    core::AtomicMax shared_best;
    std::vector<core::MssResult> shards;
  };
  std::vector<std::unique_ptr<ShardedGroup>> sharded;

  for (const auto& [key, job_indices] : miss_groups) {
    const JobSpec& spec = jobs[job_indices.front()];
    const std::vector<double>& probs =
        spec.probs.empty() ? uniform : spec.probs;
    SequenceState* state =
        states[static_cast<size_t>(spec.sequence_index)].get();
    const seq::Sequence* sequence = &corpus.sequence(spec.sequence_index);
    const core::ChiSquareContext* context = &models.at(probs)->context;

    // In-record sharding: one oversized MSS record is strided across the
    // pool instead of pinning a single worker.
    const int64_t n = sequence->size();
    int num_shards = static_cast<int>(std::min<int64_t>(
        pool_.num_threads(), std::max<int64_t>(1, n)));
    if (spec.kind == JobKind::kMss && shard_min_sequence_ > 0 &&
        n >= shard_min_sequence_ && num_shards > 1) {
      auto group = std::make_unique<ShardedGroup>();
      group->key = &key;
      group->indices = &job_indices;
      group->shards.resize(static_cast<size_t>(num_shards));
      for (int shard = 0; shard < num_shards; ++shard) {
        ShardedGroup* g = group.get();
        pool_.Submit([state, sequence, context, shard, num_shards, g] {
          // First shard to arrive builds the record's counts; the rest
          // block on call_once only until that build finishes.
          const seq::PrefixCounts& counts = state->CountsFor(*sequence);
          g->shards[static_cast<size_t>(shard)] = core::MssShardScan(
              counts, *context, shard, num_shards, &g->shared_best);
        });
      }
      sharded.push_back(std::move(group));
      continue;
    }

    const JobSpec* spec_ptr = &spec;
    const std::vector<size_t>* indices = &job_indices;
    std::vector<JobResult>* out = &results;
    CacheKey key_copy = key;
    pool_.Submit([spec_ptr, state, sequence, context, key_copy, indices, out,
                  &publish] {
      JobResult* lead = &(*out)[indices->front()];
      CachedResult computed = RunKernel(
          *spec_ptr, state->CountsFor(*sequence), *context, &lead->stats);
      publish(*indices, key_copy, std::move(computed));
    });
  }
  pool_.Wait();

  for (const std::unique_ptr<ShardedGroup>& group : sharded) {
    core::MssResult merged = core::MergeShardResults(group->shards);
    results[group->indices->front()].stats = merged.stats;
    publish(*group->indices, *group->key, MssCachedResult(merged.best));
  }
  return results;
}

Result<std::vector<JobResult>> Engine::ExecuteUniform(const Corpus& corpus,
                                                      JobKind kind,
                                                      const JobParams& params) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<size_t>(corpus.size()));
  for (int64_t i = 0; i < corpus.size(); ++i) {
    JobSpec spec;
    spec.kind = kind;
    spec.sequence_index = i;
    spec.params = params;
    jobs.push_back(std::move(spec));
  }
  return ExecuteBatch(corpus, jobs);
}

}  // namespace engine
}  // namespace sigsub
