#ifndef SIGSUB_ENGINE_FINGERPRINT_H_
#define SIGSUB_ENGINE_FINGERPRINT_H_

#include <cstdint>

#include "common/fnv1a.h"
#include "seq/sequence.h"

namespace sigsub {
namespace engine {

/// The hasher itself lives in common/fnv1a.h so layers below the engine
/// (notably api/ canonical-query fingerprinting) can share the exact same
/// byte-stream semantics; this alias preserves the historical name.
/// (The old per-model FingerprintProbs is gone: model identity now rides
/// in the canonical query bytes, api::FingerprintQuery.)
using Fnv1a = ::sigsub::Fnv1a;

/// Fingerprint of a sequence's content: alphabet size, length and symbols.
uint64_t FingerprintSequence(const seq::Sequence& sequence);

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_FINGERPRINT_H_
