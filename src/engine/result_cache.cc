#include "engine/result_cache.h"

#include <iterator>
#include <utility>

namespace sigsub {
namespace engine {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

size_t ResultCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

std::optional<CachedResult> ResultCache::Lookup(const CacheKey& key) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->value;
}

void ResultCache::Insert(const CacheKey& key, CachedResult value) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  // A cleared cache restarts its accounting: stale hit/miss/insertion/
  // eviction counters would otherwise misreport the hit rate of every
  // batch that follows the clear.
  stats_ = CacheStats{};
}

void ResultCache::ResetStats() {
  MutexLock lock(mutex_);
  stats_ = CacheStats{};
}

std::vector<CacheEntry> ResultCache::Export() const {
  MutexLock lock(mutex_);
  std::vector<CacheEntry> entries;
  entries.reserve(lru_.size());
  for (const Entry& entry : lru_) {
    entries.push_back(CacheEntry{entry.key, entry.value});
  }
  return entries;
}

void ResultCache::Import(const std::vector<CacheEntry>& entries) {
  if (capacity_ == 0) return;
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  // Entries arrive MRU-first; appending to the back in that order
  // reconstitutes the recency list exactly.
  for (const CacheEntry& entry : entries) {
    if (lru_.size() >= capacity_) break;
    if (index_.contains(entry.key)) continue;
    lru_.push_back(Entry{entry.key, entry.value});
    index_.emplace(entry.key, std::prev(lru_.end()));
  }
}

CacheStats ResultCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace engine
}  // namespace sigsub
