#ifndef SIGSUB_ENGINE_CORPUS_H_
#define SIGSUB_ENGINE_CORPUS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/mmap_corpus.h"
#include "seq/alphabet.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace engine {

/// A batch of sequences sharing one alphabet — the unit the engine mines
/// over. Corpora come from in-memory strings, a text file with one record
/// per line, or one column of a CSV file. Empty records are skipped (a
/// trailing newline does not create a phantom record); `source_index()`
/// maps each kept record back to its position in the original input so
/// reports can cite the user's line/row numbers.
///
/// When `alphabet_chars` is empty the alphabet is inferred as the sorted
/// distinct characters across *all* records, so every record is decodable
/// and X² values are comparable corpus-wide (padded to two symbols when
/// the corpus is unary, as X² needs k >= 2).
class Corpus {
 public:
  /// Builds from in-memory records.
  static Result<Corpus> FromStrings(const std::vector<std::string>& records,
                                    const std::string& alphabet_chars = "");

  /// Reads `path`, one record per line ('\r' tolerated).
  static Result<Corpus> FromLines(const std::string& path,
                                  const std::string& alphabet_chars = "");

  /// Reads column `column` (0-based) of the CSV at `path`; `has_header`
  /// skips the first row. Rows without the column are an error.
  static Result<Corpus> FromCsvColumn(const std::string& path, int64_t column,
                                      bool has_header,
                                      const std::string& alphabet_chars = "");

  /// Memory-maps `path` as ONE record mined in place — the path for
  /// records too large to decode into RAM. One trailing newline ("\n" or
  /// "\r\n") and a leading UTF-8 BOM are excluded from the record; every
  /// other byte is data. The alphabet is inferred over the mapped bytes
  /// with the same rule as the text loaders (streamed, no decoded copy)
  /// unless `alphabet_chars` pins it, in which case every byte must be in
  /// it. A mapped corpus has no `sequence()`/`text()`: consumers read
  /// `mapped_record()` through `decode_table()`, build counts with
  /// BuildMappedPrefixCounts(), and key caches on `mapped_fingerprint()`
  /// (identical to FingerprintSequence of the decoded record, computed
  /// streaming).
  static Result<Corpus> FromMappedFile(const std::string& path,
                                       const std::string& alphabet_chars = "");

  /// The alphabet-inference rule shared by Corpus and the single-string
  /// CLI path: sorted distinct characters across all records, padded to
  /// two symbols when unary (X² needs k >= 2). Records must not all be
  /// empty.
  static std::string InferAlphabetChars(
      const std::vector<std::string>& records);

  const seq::Alphabet& alphabet() const { return alphabet_; }
  int64_t size() const {
    return is_mapped() ? 1 : static_cast<int64_t>(sequences_.size());
  }
  bool empty() const { return size() == 0; }

  /// Decoded record `index`. Mapped corpora have none (is_mapped());
  /// consumers that need a decoded sequence must reject mapped input.
  const seq::Sequence& sequence(int64_t index) const {
    return sequences_[static_cast<size_t>(index)];
  }
  /// The record's original text (for reports).
  const std::string& text(int64_t index) const {
    return texts_[static_cast<size_t>(index)];
  }
  /// 0-based position of the record in the original input (line number
  /// for FromLines, data-row number for FromCsvColumn, element index for
  /// FromStrings) — stable even when empty records were skipped.
  int64_t source_index(int64_t index) const {
    return is_mapped() ? 0 : source_indices_[static_cast<size_t>(index)];
  }

  /// Mapped-corpus surface (FromMappedFile). The record is the mapped
  /// bytes; decode_table() translates byte -> symbol (io::kInvalidByte
  /// never occurs — bytes were validated at load).
  bool is_mapped() const { return mapped_ != nullptr; }
  std::span<const uint8_t> mapped_record() const { return mapped_record_; }
  const std::array<uint8_t, 256>& decode_table() const { return decode_; }

  /// FNV-1a fingerprint of the mapped record's decoded content —
  /// bit-identical to engine::FingerprintSequence of the same record
  /// loaded through a text path, so cache entries are shared across
  /// loaders.
  uint64_t mapped_fingerprint() const { return mapped_fingerprint_; }

  /// Chunk-streamed seq::PrefixCounts over the mapped record (the O(n·k)
  /// layout — callers opting into interval kernels on mapped input; the
  /// suffix path does not need it).
  Result<seq::PrefixCounts> BuildMappedPrefixCounts() const;

 private:
  Corpus(seq::Alphabet alphabet, std::vector<seq::Sequence> sequences,
         std::vector<std::string> texts, std::vector<int64_t> source_indices);

  seq::Alphabet alphabet_;
  std::vector<seq::Sequence> sequences_;
  std::vector<std::string> texts_;
  std::vector<int64_t> source_indices_;

  // Mapped mode. shared_ptr keeps Corpus movable/copyable; the mapping
  // itself is immutable and read-only after load.
  std::shared_ptr<io::MappedFile> mapped_;
  std::span<const uint8_t> mapped_record_;
  std::array<uint8_t, 256> decode_{};
  uint64_t mapped_fingerprint_ = 0;
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_CORPUS_H_
