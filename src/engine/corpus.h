#ifndef SIGSUB_ENGINE_CORPUS_H_
#define SIGSUB_ENGINE_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "seq/alphabet.h"
#include "seq/sequence.h"

namespace sigsub {
namespace engine {

/// A batch of sequences sharing one alphabet — the unit the engine mines
/// over. Corpora come from in-memory strings, a text file with one record
/// per line, or one column of a CSV file. Empty records are skipped (a
/// trailing newline does not create a phantom record); `source_index()`
/// maps each kept record back to its position in the original input so
/// reports can cite the user's line/row numbers.
///
/// When `alphabet_chars` is empty the alphabet is inferred as the sorted
/// distinct characters across *all* records, so every record is decodable
/// and X² values are comparable corpus-wide (padded to two symbols when
/// the corpus is unary, as X² needs k >= 2).
class Corpus {
 public:
  /// Builds from in-memory records.
  static Result<Corpus> FromStrings(const std::vector<std::string>& records,
                                    const std::string& alphabet_chars = "");

  /// Reads `path`, one record per line ('\r' tolerated).
  static Result<Corpus> FromLines(const std::string& path,
                                  const std::string& alphabet_chars = "");

  /// Reads column `column` (0-based) of the CSV at `path`; `has_header`
  /// skips the first row. Rows without the column are an error.
  static Result<Corpus> FromCsvColumn(const std::string& path, int64_t column,
                                      bool has_header,
                                      const std::string& alphabet_chars = "");

  /// The alphabet-inference rule shared by Corpus and the single-string
  /// CLI path: sorted distinct characters across all records, padded to
  /// two symbols when unary (X² needs k >= 2). Records must not all be
  /// empty.
  static std::string InferAlphabetChars(
      const std::vector<std::string>& records);

  const seq::Alphabet& alphabet() const { return alphabet_; }
  int64_t size() const { return static_cast<int64_t>(sequences_.size()); }
  bool empty() const { return sequences_.empty(); }

  const seq::Sequence& sequence(int64_t index) const {
    return sequences_[static_cast<size_t>(index)];
  }
  /// The record's original text (for reports).
  const std::string& text(int64_t index) const {
    return texts_[static_cast<size_t>(index)];
  }
  /// 0-based position of the record in the original input (line number
  /// for FromLines, data-row number for FromCsvColumn, element index for
  /// FromStrings) — stable even when empty records were skipped.
  int64_t source_index(int64_t index) const {
    return source_indices_[static_cast<size_t>(index)];
  }

 private:
  Corpus(seq::Alphabet alphabet, std::vector<seq::Sequence> sequences,
         std::vector<std::string> texts, std::vector<int64_t> source_indices);

  seq::Alphabet alphabet_;
  std::vector<seq::Sequence> sequences_;
  std::vector<std::string> texts_;
  std::vector<int64_t> source_indices_;
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_CORPUS_H_
