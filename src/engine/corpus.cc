#include "engine/corpus.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <utility>

#include "common/fnv1a.h"
#include "common/str_util.h"
#include "io/csv.h"

namespace sigsub {
namespace engine {
namespace {

std::string StripTrailingCr(std::string line) {
  while (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Strips a leading UTF-8 byte-order mark. Editors on Windows routinely
/// prepend one; left in place it reaches alphabet inference and silently
/// adds three junk symbols (EF BB BF), shrinking every p_c and skewing
/// every X² computed over the corpus.
void StripUtf8Bom(std::string* line) {
  if (line->size() >= 3 && (*line)[0] == '\xEF' && (*line)[1] == '\xBB' &&
      (*line)[2] == '\xBF') {
    line->erase(0, 3);
  }
}

}  // namespace

Corpus::Corpus(seq::Alphabet alphabet, std::vector<seq::Sequence> sequences,
               std::vector<std::string> texts,
               std::vector<int64_t> source_indices)
    : alphabet_(std::move(alphabet)),
      sequences_(std::move(sequences)),
      texts_(std::move(texts)),
      source_indices_(std::move(source_indices)) {}

Result<Corpus> Corpus::FromStrings(const std::vector<std::string>& records,
                                   const std::string& alphabet_chars) {
  std::vector<std::string> texts;
  std::vector<int64_t> source_indices;
  texts.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].empty()) continue;
    texts.push_back(records[i]);
    source_indices.push_back(static_cast<int64_t>(i));
  }
  if (texts.empty()) {
    return Status::InvalidArgument("corpus has no non-empty records");
  }
  std::string chars =
      alphabet_chars.empty() ? InferAlphabetChars(texts) : alphabet_chars;
  SIGSUB_ASSIGN_OR_RETURN(seq::Alphabet alphabet,
                          seq::Alphabet::FromCharacters(chars));
  std::vector<seq::Sequence> sequences;
  sequences.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    auto sequence = seq::Sequence::FromString(alphabet, texts[i]);
    if (!sequence.ok()) {
      // Cite the record's position in the caller's input, not the
      // post-skip index.
      return Status::InvalidArgument(StrCat("record ", source_indices[i],
                                            ": ",
                                            sequence.status().message()));
    }
    sequences.push_back(std::move(sequence).value());
  }
  return Corpus(std::move(alphabet), std::move(sequences), std::move(texts),
                std::move(source_indices));
}

Result<Corpus> Corpus::FromLines(const std::string& path,
                                 const std::string& alphabet_chars) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path, "'"));
  }
  std::vector<std::string> records;
  std::string line;
  while (std::getline(in, line)) {
    if (records.empty()) StripUtf8Bom(&line);
    records.push_back(StripTrailingCr(std::move(line)));
  }
  return FromStrings(records, alphabet_chars);
}

Result<Corpus> Corpus::FromCsvColumn(const std::string& path, int64_t column,
                                     bool has_header,
                                     const std::string& alphabet_chars) {
  if (column < 0) {
    return Status::InvalidArgument(
        StrCat("CSV column must be >= 0, got ", column));
  }
  SIGSUB_ASSIGN_OR_RETURN(auto rows, io::ReadCsvFile(path));
  std::vector<std::string> records;
  records.reserve(rows.size());
  for (size_t r = has_header ? 1 : 0; r < rows.size(); ++r) {
    // Number records like source_index() does: data rows from 0, the
    // header excluded — one identifier per record everywhere.
    size_t record_index = r - (has_header ? 1 : 0);
    if (rows[r].size() <= static_cast<size_t>(column)) {
      return Status::InvalidArgument(
          StrCat("CSV record ", record_index, " has ", rows[r].size(),
                 " cells; column ", column, " requested"));
    }
    records.push_back(rows[r][static_cast<size_t>(column)]);
  }
  return FromStrings(records, alphabet_chars);
}

Result<Corpus> Corpus::FromMappedFile(const std::string& path,
                                      const std::string& alphabet_chars) {
  SIGSUB_ASSIGN_OR_RETURN(io::MappedFile file, io::MappedFile::Open(path));
  file.AdviseSequential();
  std::span<const uint8_t> record = file.bytes();
  // Mirror the text loaders: a leading UTF-8 BOM and one trailing newline
  // are framing, not data.
  if (record.size() >= 3 && record[0] == 0xEF && record[1] == 0xBB &&
      record[2] == 0xBF) {
    record = record.subspan(3);
  }
  if (!record.empty() && record.back() == '\n') {
    record = record.first(record.size() - 1);
    if (!record.empty() && record.back() == '\r') {
      record = record.first(record.size() - 1);
    }
  }
  if (record.empty()) {
    return Status::InvalidArgument("corpus has no non-empty records");
  }

  std::string chars =
      alphabet_chars.empty() ? io::InferAlphabetBytes(record) : alphabet_chars;
  SIGSUB_ASSIGN_OR_RETURN(seq::Alphabet alphabet,
                          seq::Alphabet::FromCharacters(chars));
  std::array<uint8_t, 256> decode =
      io::MakeDecodeTable(alphabet.characters());
  if (!alphabet_chars.empty()) {
    // Inferred alphabets cover every present byte by construction; a
    // pinned one must be checked.
    int64_t bad = io::FindInvalidByte(record, decode);
    if (bad >= 0) {
      return Status::InvalidArgument(
          StrCat("record 0: byte value ", static_cast<int>(record[bad]),
                 " at offset ", bad, " is outside the alphabet"));
    }
  }

  // Streaming fingerprint of the *decoded* content — the exact byte
  // stream FingerprintSequence hashes, without materializing it.
  Fnv1a hasher;
  hasher.UpdateI64(alphabet.size());
  hasher.UpdateI64(static_cast<int64_t>(record.size()));
  std::array<uint8_t, 1 << 16> buffer;
  for (size_t offset = 0; offset < record.size(); offset += buffer.size()) {
    size_t end = std::min(record.size(), offset + buffer.size());
    for (size_t i = offset; i < end; ++i) {
      buffer[i - offset] = decode[record[i]];
    }
    hasher.Update(buffer.data(), end - offset);
  }

  Corpus corpus(std::move(alphabet), {}, {}, {});
  corpus.mapped_ = std::make_shared<io::MappedFile>(std::move(file));
  corpus.mapped_record_ = record;
  corpus.decode_ = decode;
  corpus.mapped_fingerprint_ = hasher.Digest();
  return corpus;
}

Result<seq::PrefixCounts> Corpus::BuildMappedPrefixCounts() const {
  if (!is_mapped()) {
    return Status::InvalidArgument(
        "BuildMappedPrefixCounts requires a mapped corpus");
  }
  return seq::PrefixCounts::FromBytes(mapped_record_, decode_,
                                      alphabet_.size());
}

std::string Corpus::InferAlphabetChars(
    const std::vector<std::string>& records) {
  std::set<char> distinct;
  for (const std::string& record : records) {
    distinct.insert(record.begin(), record.end());
  }
  std::string chars(distinct.begin(), distinct.end());
  if (chars.size() == 1) chars += chars[0] == '0' ? '1' : '0';
  return chars;
}

}  // namespace engine
}  // namespace sigsub
