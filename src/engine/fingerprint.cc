#include "engine/fingerprint.h"

namespace sigsub {
namespace engine {

uint64_t FingerprintSequence(const seq::Sequence& sequence) {
  Fnv1a hasher;
  hasher.UpdateI64(sequence.alphabet_size());
  hasher.UpdateI64(sequence.size());
  std::span<const uint8_t> symbols = sequence.symbols();
  hasher.Update(symbols.data(), symbols.size());
  return hasher.Digest();
}

}  // namespace engine
}  // namespace sigsub
