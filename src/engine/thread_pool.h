#ifndef SIGSUB_ENGINE_THREAD_POOL_H_
#define SIGSUB_ENGINE_THREAD_POOL_H_

// ThreadPool moved to common/ so core-layer scans (core::FindMssParallel)
// can share the engine's execution substrate without a layering inversion.
// This forwarder keeps the engine::ThreadPool spelling working.
#include "common/thread_pool.h"

namespace sigsub {
namespace engine {

using ::sigsub::ThreadPool;

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_THREAD_POOL_H_
