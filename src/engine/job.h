#ifndef SIGSUB_ENGINE_JOB_H_
#define SIGSUB_ENGINE_JOB_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "common/result.h"
#include "core/scan_types.h"

namespace sigsub {
namespace engine {

/// Legacy flat job surface, kept as a thin compatibility shim over the
/// typed api::QuerySpec representation the engine executes natively
/// (api/query.h). JobSpec reaches only the five original kernels and
/// multinomial models; new code should build QuerySpecs (or parse them
/// with api::ParseQuery) and call Engine::ExecuteQueries.
///
/// The five problem kernels this shim can express. One enumerator per
/// library entry point:
///   kMss         -> core::FindMss            (Problem 1)
///   kTopT        -> core::FindTopT           (Problem 2)
///   kTopDisjoint -> core::FindTopDisjoint    (library extension)
///   kThreshold   -> core::FindAboveThreshold (Problem 3)
///   kMinLength   -> core::FindMssMinLength   (Problem 4)
enum class JobKind {
  kMss = 0,
  kTopT = 1,
  kTopDisjoint = 2,
  kThreshold = 3,
  kMinLength = 4,
};

/// Stable lowercase name ("mss", "topt", "disjoint", "threshold",
/// "minlen") — the same vocabulary the CLI uses.
std::string_view JobKindToString(JobKind kind);

/// Inverse of JobKindToString; InvalidArgument on unknown names.
Result<JobKind> ParseJobKind(std::string_view name);

/// Kernel parameters. Only the fields relevant to the job's kind are
/// consulted (and validated); the rest are ignored.
struct JobParams {
  int64_t t = 10;              // kTopT, kTopDisjoint: result count.
  int64_t min_length = 1;      // kMinLength, kTopDisjoint: length floor.
  double alpha0 = 0.0;         // kThreshold: X² threshold.
  int64_t max_matches =        // kThreshold: cap on materialized matches.
      std::numeric_limits<int64_t>::max();
  double min_chi_square = 0.0;  // kTopDisjoint: score floor.
};

/// One unit of work for the engine: run `kind` with `params` against
/// corpus record `sequence_index`, scoring under the multinomial model
/// `probs` (empty selects the uniform model over the corpus alphabet).
struct JobSpec {
  JobKind kind = JobKind::kMss;
  int64_t sequence_index = 0;
  std::vector<double> probs;
  JobParams params;
};

/// Lowers the flat spec into the typed query representation: kind selects
/// the request struct, only the kind-relevant JobParams fields are copied
/// (so two JobSpecs that differ only in irrelevant params lower to equal
/// QuerySpecs and share a cache entry — structurally, not by special-cased
/// hashing), and `probs` becomes a ModelSpec (empty = uniform).
api::QuerySpec ToQuerySpec(const JobSpec& spec);

/// Outcome of one job. `substrings` is ordered best-first for kMss /
/// kMinLength (single entry, possibly empty when nothing qualifies), rank
/// order for kTopT / kTopDisjoint, and scan order for kThreshold.
struct JobResult {
  int64_t job_index = 0;       // Position in the submitted batch.
  int64_t sequence_index = 0;  // Echo of the spec.
  JobKind kind = JobKind::kMss;

  std::vector<core::Substring> substrings;
  core::Substring best;      // Highest-X² substring (zero-length if none).
  int64_t match_count = 0;   // kThreshold: exact total above alpha0.
  core::ScanStats stats;     // Zero for cache hits (no scan ran) and for
                             // kTopDisjoint (its kernel reports none).
  bool cache_hit = false;
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_JOB_H_
