#ifndef SIGSUB_ENGINE_ENGINE_H_
#define SIGSUB_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "common/result.h"
#include "core/x2_dispatch.h"
#include "engine/corpus.h"
#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"

namespace sigsub {
namespace engine {

struct EngineOptions {
  /// Worker threads for batch execution; <= 0 selects the hardware
  /// concurrency.
  int num_threads = 1;
  /// Result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 4096;
  /// In-record sharding threshold: an MSS query whose record is at least
  /// this many symbols long is split into strided shards
  /// (core::MssShardScan) that run concurrently on the pool, so one
  /// multi-megabyte record cannot pin a single worker. <= 0 disables
  /// sharding. Sharded queries return the same X² value as the sequential
  /// kernel (the witness among tied maxima may differ; see
  /// core::FindMssParallel).
  int64_t shard_min_sequence = 1 << 20;
  /// Fused X² kernel implementation for every context this engine builds
  /// (CLI `--x2-dispatch`). kScalar pins the bit-reproducible scalar path
  /// for audits; kAuto follows the process default (typically SIMD).
  core::X2Dispatch x2_dispatch = core::X2Dispatch::kAuto;
};

/// Concurrent batch-mining engine: executes heterogeneous mining queries
/// (every sequence kernel — mss, topt, disjoint, threshold, minlen,
/// lenbound, arlm, agmm, blocked; multinomial or Markov null models) over
/// a corpus of sequences. api::QuerySpec is the native job representation;
/// the legacy JobSpec surface lowers into it (engine/job.h).
///
/// Two things make a batch cheaper than issuing the same queries as
/// independent `FindMss`-style calls:
///
///   1. Context reuse — `seq::PrefixCounts` (O(k·n) to build, the
///      dominant fixed cost of a one-shot call) is built once per
///      distinct corpus record per batch and shared by every query on that
///      record, and one `core::ChiSquareContext` is shared per distinct
///      null model. The builds themselves run on the pool.
///   2. Result caching — completed queries are stored in an LRU cache
///      keyed by (sequence FNV-1a fingerprint, FNV-1a of the query's
///      canonical serialization bytes — api::FingerprintQuery), so
///      repeated queries against hot sequences are served in O(1) without
///      rescanning. The cache is consulted before any PrefixCounts are
///      built, so a fully-warm batch skips the builds too. The cache
///      persists across batches for the lifetime of the engine.
///
/// Results are bit-identical to the direct kernel calls: each query runs
/// the same sequential kernel with the same summation order, whatever
/// `num_threads` is — parallelism is across queries, not within them. The
/// one exception is an MSS query on a record at least
/// `shard_min_sequence` symbols long, which is split across the pool
/// via core::MssShardScan: its X² value is still bit-identical to the
/// sequential kernel's, but when several substrings tie at the maximum
/// the reported witness may differ (the parallel-scan contract).
///
/// Thread safety: one batch at a time per engine (calls from multiple
/// threads must be serialized by the caller); the cache itself is
/// thread-safe.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Validates every query (sequence index in range, model compatible
  /// with the corpus alphabet, kind-specific parameter ranges — failures
  /// name the offending query and field), then executes the batch.
  /// `results[i]` corresponds to `queries[i]`. Validation failures fail
  /// the whole batch before any kernel runs. Queries with identical cache
  /// keys run their kernel once; the duplicates receive the same payload
  /// and are reported as cache hits.
  Result<std::vector<api::QueryResult>> ExecuteQueries(
      const Corpus& corpus, const std::vector<api::QuerySpec>& queries);

  /// Compatibility shim: lowers each JobSpec into an api::QuerySpec,
  /// executes them natively, and reshapes the payloads into JobResults.
  Result<std::vector<JobResult>> ExecuteBatch(const Corpus& corpus,
                                              const std::vector<JobSpec>& jobs);

  /// Convenience: one job of kind `kind` with `params` per corpus record,
  /// scored under the uniform model.
  Result<std::vector<JobResult>> ExecuteUniform(const Corpus& corpus,
                                                JobKind kind,
                                                const JobParams& params = {});

  int num_threads() const { return pool_.num_threads(); }
  CacheStats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }
  size_t cache_capacity() const { return cache_.capacity(); }
  void ClearCache() { cache_.Clear(); }
  /// The result cache itself (thread-safe) — persist/cache_store.{h,cc}
  /// exports it on drain and imports it on restart so the warm cache
  /// survives a daemon restart.
  ResultCache& result_cache() { return cache_; }
  const ResultCache& result_cache() const { return cache_; }

  /// Lifetime execution counters (successful batches only; a batch that
  /// fails validation counts nothing). Atomic reads — safe from any
  /// thread, including concurrently with an executing batch.
  int64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }
  int64_t batches_executed() const {
    return batches_executed_.load(std::memory_order_relaxed);
  }

 private:
  /// `label` names the unit in validation errors ("query" natively,
  /// "job" through the JobSpec shim), so legacy callers keep legacy
  /// wording.
  Result<std::vector<api::QueryResult>> ExecuteQueriesInternal(
      const Corpus& corpus, const std::vector<api::QuerySpec>& queries,
      std::string_view label);

  ResultCache cache_;
  ThreadPool pool_;
  int64_t shard_min_sequence_;
  core::X2Dispatch x2_dispatch_;
  std::atomic<int64_t> queries_executed_{0};
  std::atomic<int64_t> batches_executed_{0};
  // Debug enforcement of the one-batch-at-a-time contract above: set for
  // the duration of ExecuteQueriesInternal, SIGSUB_DCHECKed against
  // reentry. Atomic (not GUARDED_BY a mutex) because the contract is
  // exactly that there is no concurrent batch to exclude.
  std::atomic<bool> batch_active_{false};
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_ENGINE_H_
