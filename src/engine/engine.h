#ifndef SIGSUB_ENGINE_ENGINE_H_
#define SIGSUB_ENGINE_ENGINE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/x2_dispatch.h"
#include "engine/corpus.h"
#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/thread_pool.h"

namespace sigsub {
namespace engine {

struct EngineOptions {
  /// Worker threads for batch execution; <= 0 selects the hardware
  /// concurrency.
  int num_threads = 1;
  /// Result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 4096;
  /// In-record sharding threshold: an MSS job whose record is at least
  /// this many symbols long is split into strided shards
  /// (core::MssShardScan) that run concurrently on the pool, so one
  /// multi-megabyte record cannot pin a single worker. <= 0 disables
  /// sharding. Sharded jobs return the same X² value as the sequential
  /// kernel (the witness among tied maxima may differ; see
  /// core::FindMssParallel).
  int64_t shard_min_sequence = 1 << 20;
  /// Fused X² kernel implementation for every context this engine builds
  /// (CLI `--x2-dispatch`). kScalar pins the bit-reproducible scalar path
  /// for audits; kAuto follows the process default (typically SIMD).
  core::X2Dispatch x2_dispatch = core::X2Dispatch::kAuto;
};

/// Concurrent batch-mining engine: executes heterogeneous mining jobs
/// (all five problem kernels) over a corpus of sequences.
///
/// Two things make a batch cheaper than issuing the same jobs as
/// independent `FindMss`-style calls:
///
///   1. Context reuse — `seq::PrefixCounts` (O(k·n) to build, the
///      dominant fixed cost of a one-shot call) is built once per
///      distinct corpus record per batch and shared by every job on that
///      record, and one `core::ChiSquareContext` is shared per distinct
///      null model. The builds themselves run on the pool.
///   2. Result caching — completed jobs are stored in an LRU cache keyed
///      by (sequence FNV-1a fingerprint, model fingerprint, job-kind +
///      params fingerprint), so repeated queries against hot sequences
///      are served in O(1) without rescanning. The cache is consulted
///      before any PrefixCounts are built, so a fully-warm batch skips
///      the builds too. The cache persists across batches for the
///      lifetime of the engine.
///
/// Results are bit-identical to the direct kernel calls: each job runs
/// the same sequential kernel with the same summation order, whatever
/// `num_threads` is — parallelism is across jobs, not within them. The
/// one exception is an MSS job on a record at least
/// `shard_min_sequence` symbols long, which is split across the pool
/// via core::MssShardScan: its X² value is still bit-identical to the
/// sequential kernel's, but when several substrings tie at the maximum
/// the reported witness may differ (the parallel-scan contract).
///
/// Thread safety: one batch at a time per engine (calls from multiple
/// threads must be serialized by the caller); the cache itself is
/// thread-safe.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Validates every spec (sequence index in range, probs compatible
  /// with the corpus alphabet, kind-specific parameter ranges), then
  /// executes the batch. `results[i]` corresponds to `jobs[i]`.
  /// Validation failures name the offending job and fail the whole
  /// batch before any kernel runs. Jobs with identical cache keys run
  /// their kernel once; the duplicates receive the same payload and are
  /// reported as cache hits.
  Result<std::vector<JobResult>> ExecuteBatch(const Corpus& corpus,
                                              const std::vector<JobSpec>& jobs);

  /// Convenience: one job of kind `kind` with `params` per corpus record,
  /// scored under the uniform model.
  Result<std::vector<JobResult>> ExecuteUniform(const Corpus& corpus,
                                                JobKind kind,
                                                const JobParams& params = {});

  int num_threads() const { return pool_.num_threads(); }
  CacheStats cache_stats() const { return cache_.stats(); }
  size_t cache_size() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }

 private:
  ResultCache cache_;
  ThreadPool pool_;
  int64_t shard_min_sequence_;
  core::X2Dispatch x2_dispatch_;
};

/// Fingerprint of (kind, kind-relevant params) — the third cache-key
/// component. Exposed for tests; irrelevant params do not perturb it, so
/// e.g. two MSS jobs differing only in `t` share a cache entry.
uint64_t FingerprintJobParams(JobKind kind, const JobParams& params);

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_ENGINE_H_
