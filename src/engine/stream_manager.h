#ifndef SIGSUB_ENGINE_STREAM_MANAGER_H_
#define SIGSUB_ENGINE_STREAM_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/streaming.h"
#include "core/x2_dispatch.h"

namespace sigsub {
namespace engine {

struct StreamManagerOptions {
  /// Worker threads for batched ingestion; <= 0 selects the hardware
  /// concurrency.
  int num_threads = 1;
  /// Alarms retained per stream (oldest evicted first); snapshots report
  /// how many were dropped. Must be >= 1.
  size_t max_alarms_per_stream = 256;
  /// Fused X² kernel implementation for every context this manager
  /// builds, mirroring EngineOptions::x2_dispatch (CLI `--x2-dispatch`).
  core::X2Dispatch x2_dispatch = core::X2Dispatch::kAuto;
};

/// Monotonic counters over the manager's lifetime (thread-safe reads).
struct StreamManagerStats {
  int64_t streams_created = 0;
  int64_t streams_closed = 0;
  int64_t symbols_ingested = 0;
  int64_t alarms_raised = 0;
};

/// Point-in-time view of one stream.
struct StreamSnapshot {
  std::string name;
  int64_t position = 0;      // Symbols consumed.
  int64_t alarms_total = 0;  // Alarms raised over the stream's lifetime.
  int64_t alarms_dropped = 0;  // Evicted from the bounded log.
  std::vector<core::StreamingDetector::Alarm> recent_alarms;  // Oldest first.
  std::vector<int64_t> scales;
  std::vector<double> thresholds;    // Parallel to scales.
  std::vector<double> chi_squares;   // Current per-scale X².
};

/// One named append for AppendBatch.
struct StreamAppend {
  std::string name;
  std::vector<uint8_t> symbols;
};

/// Serializable image of one stream — everything RestoreStream needs to
/// rebuild it bit-identically: the null model and detector options (the
/// derived state Make() recomputes), the detector's mutable state, and
/// the bounded alarm log. persist/snapshot.{h,cc} encodes this struct.
struct PersistedStream {
  std::string name;
  std::vector<double> probs;
  core::StreamingDetector::Options options;
  core::StreamingDetector::State state;
  std::vector<core::StreamingDetector::Alarm> alarms;  // Oldest first.
  int64_t alarms_dropped = 0;
};

/// Many concurrent monitored streams over shared infrastructure — the
/// online counterpart of engine::Engine. Each stream is a named
/// core::StreamingDetector with a bounded alarm log; ingestion is chunked
/// (StreamingDetector::AppendChunk) and batched ingestion fans the
/// affected streams across the shared common::ThreadPool. Mirroring the
/// Engine's context-reuse design, one core::ChiSquareContext is built per
/// distinct null model (keyed by the probability vector, under
/// StreamManagerOptions::x2_dispatch) and shared by every stream
/// monitored under that model.
///
/// Thread safety: all public methods are safe to call concurrently.
/// Appends to one stream are serialized by a per-stream mutex; appends to
/// distinct streams proceed in parallel. AppendBatch applies a batch's
/// appends to any one stream in batch order.
class StreamManager {
 public:
  explicit StreamManager(StreamManagerOptions options = {});

  /// Creates stream `name` monitored under the multinomial model `probs`
  /// (validated; must sum to 1). Fails with InvalidArgument if the name
  /// is already in use or the detector options are invalid. The detector
  /// options' x2_dispatch field is overridden by
  /// StreamManagerOptions::x2_dispatch, which governs both the shared
  /// context and the detector's scoring kernel.
  Status CreateStream(const std::string& name, std::vector<double> probs,
                      core::StreamingDetector::Options options = {});

  /// Appends `symbols` to stream `name` synchronously; returns the number
  /// of alarms the chunk raised. NotFound for unknown streams;
  /// InvalidArgument (stream unchanged) when a symbol is outside the
  /// stream's alphabet.
  Result<int64_t> Append(const std::string& name,
                         std::span<const uint8_t> symbols);

  /// Like Append, but returns the alarms themselves (in raise order)
  /// instead of just their count — the server's ingestion path, which
  /// pushes each alarm's details to subscribed connections.
  Result<std::vector<core::StreamingDetector::Alarm>> AppendCollect(
      const std::string& name, std::span<const uint8_t> symbols);

  /// Batched ingestion: validates every stream name, then fans the
  /// appends across the worker pool — one task per distinct stream, each
  /// applying that stream's appends in batch order. Returns the total
  /// number of alarms raised. On a symbol-range error the remaining
  /// appends to that stream are skipped (other streams are unaffected)
  /// and the first error is returned; appends that already completed
  /// stay applied.
  Result<int64_t> AppendBatch(const std::vector<StreamAppend>& appends);

  /// Snapshot of one stream's state (position, alarm log tail, per-scale
  /// X² and thresholds). NotFound for unknown streams.
  Result<StreamSnapshot> Snapshot(const std::string& name) const;

  /// Removes the stream. NotFound for unknown streams.
  Status CloseStream(const std::string& name);

  /// Exports every open stream for persistence, sorted by name. Each
  /// stream's image is internally consistent (taken under its mutex),
  /// but cross-stream consistency is the caller's problem: for a
  /// point-in-time snapshot, quiesce ingestion first (the server calls
  /// this from the executor thread between slices, which owns all
  /// stream mutations).
  std::vector<PersistedStream> ExportStreams() const;

  /// Recreates one exported stream: CreateStream(name, probs, options)
  /// followed by a validated detector-state restore and alarm-log
  /// adoption. Fails (and removes the half-created stream) if the name
  /// is taken, the options are invalid, or the state fails
  /// StreamingDetector::RestoreState validation — a corrupt snapshot is
  /// named, never silently adopted.
  Status RestoreStream(const PersistedStream& stream);

  /// Names of all open streams, sorted.
  std::vector<std::string> StreamNames() const;

  /// True while stream `name` is open. Cheap (manager mutex only) — the
  /// server's SUBSCRIBE validation.
  bool HasStream(const std::string& name) const;

  /// Number of currently open streams.
  size_t open_stream_count() const;

  StreamManagerStats stats() const;

  int num_threads() const { return pool_.num_threads(); }
  /// Distinct null models the manager has built a shared context for.
  size_t context_count() const;

 private:
  struct Stream {
    Stream(std::string stream_name, std::vector<double> stream_probs,
           core::StreamingDetector d)
        : name(std::move(stream_name)),
          probs(std::move(stream_probs)),
          detector(std::move(d)) {}

    const std::string name;
    // The null model the stream was created under — what a snapshot
    // must persist to rebuild the shared context on restore.
    const std::vector<double> probs;
    mutable Mutex mutex;  // Serializes detector access.
    core::StreamingDetector detector SIGSUB_GUARDED_BY(mutex);
    // Bounded log.
    std::deque<core::StreamingDetector::Alarm> alarms SIGSUB_GUARDED_BY(mutex);
    int64_t alarms_dropped SIGSUB_GUARDED_BY(mutex) = 0;
  };

  /// Looks up a stream under mutex_; the returned shared_ptr keeps it
  /// alive even if CloseStream races.
  std::shared_ptr<Stream> FindStream(const std::string& name) const
      SIGSUB_EXCLUDES(mutex_);

  /// Takes the stream's mutex, applies one chunk, and records its alarms.
  /// Returns the alarms raised, in raise order.
  Result<std::vector<core::StreamingDetector::Alarm>> AppendLocked(
      Stream& stream, std::span<const uint8_t> symbols)
      SIGSUB_EXCLUDES(stream.mutex);

  StreamManagerOptions options_ SIGSUB_THREAD_CONFINED(init);
  ThreadPool pool_;  // Internally synchronized.

  // Canonical order: the manager map lock comes before any per-stream
  // lock (lookups resolve the shared_ptr under mutex_, then operate on
  // the stream under its own mutex — ExportStreams documents why the
  // two are never actually nested).
  // sigsub-lint: order StreamManager::mutex_ < StreamManager::Stream::mutex
  mutable Mutex mutex_;  // Guards streams_ and contexts_.
  std::map<std::string, std::shared_ptr<Stream>> streams_
      SIGSUB_GUARDED_BY(mutex_);
  // One shared evaluation context per distinct model (Engine's
  // context-reuse design, persisted for the manager's lifetime).
  std::map<std::vector<double>, std::shared_ptr<const core::ChiSquareContext>>
      contexts_ SIGSUB_GUARDED_BY(mutex_);

  std::atomic<int64_t> streams_created_{0};
  std::atomic<int64_t> streams_closed_{0};
  std::atomic<int64_t> symbols_ingested_{0};
  std::atomic<int64_t> alarms_raised_{0};
};

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_STREAM_MANAGER_H_
