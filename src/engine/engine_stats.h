#ifndef SIGSUB_ENGINE_ENGINE_STATS_H_
#define SIGSUB_ENGINE_ENGINE_STATS_H_

#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "engine/result_cache.h"
#include "engine/stream_manager.h"

namespace sigsub {
namespace engine {

/// One point-in-time snapshot of the mining engine's operational
/// counters — the single source of truth shared by the sigsubd STATS
/// endpoint and the CLI's `batch --verbose` report, so the two can never
/// drift apart in what they count or how they spell it.
///
/// Collection is lock-light by design: every field is either an atomic
/// read (engine/stream counters) or taken under one short-lived internal
/// mutex (the cache's stats mutex, the stream map's size); no lock is
/// held across the whole dump, so a snapshot under full load observes a
/// near-point-in-time but never blocks the serving path.
struct EngineStats {
  // Batch engine (zero when collected without an engine).
  CacheStats cache;
  int64_t cache_entries = 0;
  int64_t cache_capacity = 0;
  int64_t queries_executed = 0;
  int64_t batches_executed = 0;
  int num_threads = 0;
  // Streaming (zero when collected without a stream manager).
  StreamManagerStats streams;
  int64_t open_streams = 0;
};

/// Snapshots `engine` and/or `streams`; either may be null (the CLI's
/// batch path has no stream manager, a pure monitoring deployment may
/// have no batch engine).
EngineStats CollectEngineStats(const Engine* engine,
                               const StreamManager* streams);

/// Canonical single-line `key=value key=value ...` rendering, embedded
/// verbatim in the server's STATS reply and printed by `batch
/// --verbose`. Stable key names; greppable.
std::string FormatEngineStats(const EngineStats& stats);

}  // namespace engine
}  // namespace sigsub

#endif  // SIGSUB_ENGINE_ENGINE_STATS_H_
