#include "engine/job.h"

#include "common/str_util.h"

namespace sigsub {
namespace engine {

std::string_view JobKindToString(JobKind kind) {
  switch (kind) {
    case JobKind::kMss:
      return "mss";
    case JobKind::kTopT:
      return "topt";
    case JobKind::kTopDisjoint:
      return "disjoint";
    case JobKind::kThreshold:
      return "threshold";
    case JobKind::kMinLength:
      return "minlen";
  }
  return "unknown";
}

Result<JobKind> ParseJobKind(std::string_view name) {
  for (JobKind kind :
       {JobKind::kMss, JobKind::kTopT, JobKind::kTopDisjoint,
        JobKind::kThreshold, JobKind::kMinLength}) {
    if (name == JobKindToString(kind)) return kind;
  }
  return Status::InvalidArgument(
      StrCat("unknown job kind \"", std::string(name),
             "\" (expected mss|topt|disjoint|threshold|minlen)"));
}

}  // namespace engine
}  // namespace sigsub
