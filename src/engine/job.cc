#include "engine/job.h"

#include "common/str_util.h"

namespace sigsub {
namespace engine {

std::string_view JobKindToString(JobKind kind) {
  switch (kind) {
    case JobKind::kMss:
      return "mss";
    case JobKind::kTopT:
      return "topt";
    case JobKind::kTopDisjoint:
      return "disjoint";
    case JobKind::kThreshold:
      return "threshold";
    case JobKind::kMinLength:
      return "minlen";
  }
  return "unknown";
}

Result<JobKind> ParseJobKind(std::string_view name) {
  for (JobKind kind :
       {JobKind::kMss, JobKind::kTopT, JobKind::kTopDisjoint,
        JobKind::kThreshold, JobKind::kMinLength}) {
    if (name == JobKindToString(kind)) return kind;
  }
  return Status::InvalidArgument(
      StrCat("unknown job kind \"", std::string(name),
             "\" (expected mss|topt|disjoint|threshold|minlen)"));
}

api::QuerySpec ToQuerySpec(const JobSpec& spec) {
  api::QuerySpec query;
  query.sequence_index = spec.sequence_index;
  query.model = spec.probs.empty()
                    ? api::ModelSpec::Uniform()
                    : api::ModelSpec::Multinomial(spec.probs);
  switch (spec.kind) {
    case JobKind::kMss:
      query.request = api::MssQuery{};
      break;
    case JobKind::kTopT:
      query.request = api::TopTQuery{spec.params.t};
      break;
    case JobKind::kTopDisjoint:
      query.request = api::TopDisjointQuery{spec.params.t,
                                            spec.params.min_length,
                                            spec.params.min_chi_square};
      break;
    case JobKind::kThreshold:
      // JobParams::alpha0 was always a raw X² cutoff (never a p-value);
      // the typed form keeps alpha_p unset.
      query.request = api::ThresholdQuery{spec.params.alpha0, -1.0,
                                          spec.params.max_matches};
      break;
    case JobKind::kMinLength:
      query.request = api::MinLengthQuery{spec.params.min_length};
      break;
  }
  return query;
}

}  // namespace engine
}  // namespace sigsub
