#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "server/protocol.h"

namespace sigsub {
namespace server {
namespace {

/// Jitter in [0.5, 1.5) of `base_ms` from a splitmix64 step over a
/// time-derived seed — deliberately not rand() (process-global, banned
/// by the lint) and not <random> (heavyweight for one draw). The goal
/// is decorrelating restarting clients, not statistical quality.
int64_t Jittered(int64_t base_ms, uint64_t* seed) {
  *seed += 0x9e3779b97f4a7c15ULL;
  uint64_t z = *seed;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1).
  const double scaled = static_cast<double>(base_ms) * (0.5 + unit);
  return scaled < 1.0 ? 1 : static_cast<int64_t>(scaled);
}

/// EINTR-tolerant millisecond sleep (poll with no fds).
void SleepMs(int64_t ms) {
  const int64_t deadline = MonotonicMillis() + ms;
  for (;;) {
    int64_t remaining = deadline - MonotonicMillis();
    if (remaining <= 0) return;
    ::poll(nullptr, 0, static_cast<int>(remaining));
  }
}

}  // namespace

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rbuf_(std::move(other.rbuf_)),
      eof_(other.eof_) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    eof_ = other.eof_;
  }
  return *this;
}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  eof_ = false;
}

Result<LineClient> LineClient::Connect(const std::string& host, int port,
                                       int64_t timeout_ms) {
  IgnoreSigpipe();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrCat("not an IPv4 address: \"", host, "\""));
  }

  // Non-blocking connect so the timeout is honored even against a
  // blackholed address, then back to blocking for the send path.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status status = Status::IOError(StrCat("connect ", host, ":", port, ": ",
                                           std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int64_t deadline = MonotonicMillis() + timeout_ms;
    for (;;) {
      int64_t remaining = deadline - MonotonicMillis();
      if (remaining <= 0) {
        ::close(fd);
        return Status::IOError(
            StrCat("connect ", host, ":", port, ": timeout after ",
                   timeout_ms, "ms"));
      }
      int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (ready < 0 && errno == EINTR) continue;
      if (ready > 0) break;
      if (ready < 0) {
        Status status =
            Status::IOError(StrCat("poll: ", std::strerror(errno)));
        ::close(fd);
        return status;
      }
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) < 0 ||
        error != 0) {
      Status status = Status::IOError(
          StrCat("connect ", host, ":", port, ": ",
                 std::strerror(error != 0 ? error : errno)));
      ::close(fd);
      return status;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // Restore blocking mode.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return LineClient(fd);
}

Result<LineClient> LineClient::ConnectWithRetry(const std::string& host,
                                                int port,
                                                const RetryPolicy& policy) {
  uint64_t seed = static_cast<uint64_t>(MonotonicMillis()) ^
                  (static_cast<uint64_t>(::getpid()) << 32);
  const int attempts = policy.retries < 0 ? 1 : policy.retries + 1;
  int64_t backoff = policy.backoff_ms < 1 ? 1 : policy.backoff_ms;
  Result<LineClient> attempt = Status::IOError("no connect attempt made");
  for (int n = 0; n < attempts; ++n) {
    if (n > 0) {
      SleepMs(Jittered(backoff, &seed));
      // Doubling with a ceiling: past ~30s per wait the backoff is no
      // longer protecting anything, it is just dead air.
      backoff = std::min<int64_t>(backoff * 2, 30000);
    }
    attempt = Connect(host, port, policy.timeout_ms);
    if (attempt.ok()) return attempt;
    // Only transport failures are worth retrying; a malformed address
    // is deterministic and fails the whole call immediately.
    if (attempt.status().code() != StatusCode::kIOError) return attempt;
  }
  return attempt;
}

Status LineClient::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed += '\n';
  return WriteFdAll(fd_, framed);
}

Result<std::string> LineClient::ReadLine(int64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  const int64_t deadline = MonotonicMillis() + timeout_ms;
  for (;;) {
    std::optional<std::string> line = protocol::ExtractLine(&rbuf_);
    if (line.has_value()) return *std::move(line);
    if (eof_) return Status::IOError("connection closed");

    int64_t remaining = deadline - MonotonicMillis();
    if (remaining <= 0) {
      return Status::IOError(
          StrCat("timeout after ", timeout_ms, "ms waiting for a line"));
    }
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrCat("poll: ", std::strerror(errno)));
    }
    if (ready == 0) continue;  // Re-checks the deadline above.

    char buffer[1 << 14];
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      rbuf_.append(buffer, static_cast<size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      return Status::IOError(StrCat("read: ", std::strerror(errno)));
    }
  }
}

}  // namespace server
}  // namespace sigsub
