#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "engine/engine_stats.h"

namespace sigsub {
namespace server {
namespace {

/// Poll tick: the upper bound on how stale idle-timeout and drain-budget
/// checks can be. Everything latency-critical is woken explicitly via the
/// self-pipe, so this only paces housekeeping.
constexpr int kPollTickMs = 50;

/// After the drain condition first holds, the I/O loop lingers this long
/// before closing: request bytes already on the wire when the drain
/// signal landed are still read and answered (with EDRAIN) instead of
/// being obliterated by an RST from closing a socket with unread input.
constexpr int64_t kDrainLingerMs = 2 * kPollTickMs;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(
        StrCat("fcntl(O_NONBLOCK): ", std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

/// Per-connection state. Touched ONLY by the I/O thread (the executor
/// communicates through the response queue), so it needs no locking and
/// stays data-race-free by construction.
struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::string rbuf;
  std::string wbuf;
  int inflight = 0;    // Admitted engine-bound requests not yet replied.
  bool closing = false;  // Close once wbuf is flushed and inflight == 0.
  bool discard_input = false;  // Post-ETOOBIG: stop parsing this client.
  int64_t last_activity_ms = 0;
  std::set<std::string> subscriptions;
};

Server::Server(engine::Corpus corpus, ServerOptions options)
    : corpus_(std::move(corpus)),
      options_(std::move(options)),
      engine_(engine::EngineOptions{
          .num_threads = options_.engine_threads,
          .cache_capacity = options_.cache_capacity,
          .shard_min_sequence = options_.shard_min_sequence,
          .x2_dispatch = options_.x2_dispatch,
      }),
      streams_(engine::StreamManagerOptions{
          .num_threads = options_.engine_threads,
          .x2_dispatch = options_.x2_dispatch,
      }) {
  if (options_.batch_max < 1) options_.batch_max = 1;
  if (options_.max_inflight_per_client < 1) {
    options_.max_inflight_per_client = 1;
  }
}

Status Server::Start() {
  IgnoreSigpipe();  // A dying client must not kill the daemon.

  // Recovery precedes everything: both threads are born into a world
  // where the stream manager already holds the replayed state, so no
  // synchronization is needed. A corrupt snapshot fails Start() with
  // its named Status — refusing to serve beats silently serving a
  // subset of the durable state.
  if (!options_.state_dir.empty() && state_ == nullptr) {
    SIGSUB_ASSIGN_OR_RETURN(
        persist::StateStore store,
        persist::StateStore::Open(
            options_.state_dir,
            persist::StateStoreOptions{
                .fsync_policy = options_.fsync_policy,
                .snapshot_interval_ms = options_.snapshot_interval_ms,
            },
            &streams_, &engine_.result_cache(), &recovery_));
    state_ = std::make_unique<persist::StateStore>(std::move(store));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("not an IPv4 address: \"", options_.host, "\""));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IOError(StrCat("bind ", options_.host, ":",
                                           options_.port, ": ",
                                           std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status status = Status::IOError(StrCat("listen: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  SIGSUB_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    Status status = Status::IOError(StrCat("pipe: ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  wakeup_read_fd_ = pipe_fds[0];
  wakeup_write_fd_ = pipe_fds[1];
  SIGSUB_RETURN_IF_ERROR(SetNonBlocking(wakeup_read_fd_));
  SIGSUB_RETURN_IF_ERROR(SetNonBlocking(wakeup_write_fd_));

  started_ms_ = MonotonicMillis();
  io_thread_ = std::thread([this] { IoLoop(); });
  executor_thread_ = std::thread([this] { ExecutorLoop(); });
  started_ = true;
  return Status::OK();
}

void Server::RequestDrain() {
  // Async-signal-safe: one atomic store and one write(2). Everything
  // else (closing the listener, refusing work, flushing) happens on the
  // I/O thread when it observes the flag.
  draining_.store(true, std::memory_order_release);
  Wakeup();
}

void Server::Wakeup() {
  if (wakeup_write_fd_ < 0) return;
  char byte = 1;
  for (;;) {
    // RawWrite stays async-signal-safe (atomics only in its shim
    // check), which this path requires: serve installs RequestDrain as
    // the SIGTERM action.
    ssize_t n = RawWrite(wakeup_write_fd_, &byte, 1);
    if (n >= 0 || errno != EINTR) break;  // A full pipe already wakes.
  }
}

void Server::Join() {
  if (!started_ || joined_) return;
  if (io_thread_.joinable()) io_thread_.join();
  if (executor_thread_.joinable()) executor_thread_.join();
  joined_ = true;
}

Server::~Server() {
  if (started_ && !joined_) {
    RequestDrain();
    Join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wakeup_read_fd_ >= 0) ::close(wakeup_read_fd_);
  if (wakeup_write_fd_ >= 0) ::close(wakeup_write_fd_);
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_current =
      connections_current_.load(std::memory_order_relaxed);
  stats.requests_admitted =
      requests_admitted_.load(std::memory_order_relaxed);
  stats.control_requests = control_requests_.load(std::memory_order_relaxed);
  stats.shed_busy = shed_busy_.load(std::memory_order_relaxed);
  stats.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  stats.shed_drain = shed_drain_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.slow_disconnects =
      slow_disconnects_.load(std::memory_order_relaxed);
  stats.alarms_pushed = alarms_pushed_.load(std::memory_order_relaxed);
  stats.persist_errors = persist_errors_.load(std::memory_order_relaxed);
  stats.uptime_ms = started_ms_ == 0 ? 0 : MonotonicMillis() - started_ms_;
  return stats;
}

// ---------------------------------------------------------------- executor

void Server::ExecutorLoop() {
  for (;;) {
    std::vector<Work> slice;
    queue_mutex_.Lock();
    while (!stop_executor_.load(std::memory_order_acquire) &&
           queue_.empty()) {
      queue_cv_.Wait(queue_mutex_);
    }
    if (queue_.empty()) {  // stop requested, nothing admitted left.
      queue_mutex_.Unlock();
      if (state_ != nullptr) {
        // Snapshot-on-drain: every admitted op has executed, so this is
        // a perfectly quiescent point in time; the journal truncates to
        // empty and the warm result cache goes to disk alongside it.
        if (!state_->Snapshot(streams_, &engine_.result_cache()).ok()) {
          persist_errors_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    if (options_.executor_hook) {
      // Test seam: runs unlocked so a blocking hook freezes execution
      // without freezing admission — saturation tests become
      // deterministic.
      queue_mutex_.Unlock();
      options_.executor_hook();
      queue_mutex_.Lock();
    }
    size_t take = std::min(queue_.size(), options_.batch_max);
    slice.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      slice.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    queue_mutex_.Unlock();
    ExecuteSlice(std::move(slice));
    if (state_ != nullptr) {
      // Between slices no stream mutation is in flight (this thread is
      // the only mutator), so the periodic snapshot sees a consistent
      // point in time. Failures are counted, not fatal: the journal
      // still has every record the snapshot would have absorbed.
      if (!state_->MaybeSnapshot(streams_, &engine_.result_cache()).ok()) {
        persist_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void Server::ExecuteSlice(std::vector<Work> slice) {
  std::vector<std::string> replies(slice.size());
  std::vector<Outbound> outbound;

  // Hoist every QUERY in the slice into one engine batch: concurrent
  // clients querying the same records share PrefixCounts builds and cache
  // entries within the call — the shared-daemon payoff.
  std::vector<size_t> query_pos;
  std::vector<api::QuerySpec> specs;
  for (size_t i = 0; i < slice.size(); ++i) {
    if (slice[i].request.kind == protocol::CommandKind::kQuery) {
      query_pos.push_back(i);
      specs.push_back(slice[i].request.query);
    }
  }
  if (!specs.empty()) {
    auto batch = engine_.ExecuteQueries(corpus_, specs);
    if (batch.ok()) {
      for (size_t j = 0; j < query_pos.size(); ++j) {
        replies[query_pos[j]] =
            StrCat("OK ", protocol::FormatQueryResult(
                              (*batch)[j], options_.max_result_rows));
      }
    } else {
      // Batch validation fails whole-batch by contract; one client's bad
      // query must not fail its neighbors', so re-run one by one.
      for (size_t j = 0; j < query_pos.size(); ++j) {
        auto single = engine_.ExecuteQueries(corpus_, {specs[j]});
        if (single.ok()) {
          replies[query_pos[j]] =
              StrCat("OK ", protocol::FormatQueryResult(
                                single->front(), options_.max_result_rows));
        } else {
          replies[query_pos[j]] = protocol::FormatError(
              protocol::ErrorCodeForStatus(single.status()),
              single.status().message());
        }
      }
    }
  }

  for (size_t i = 0; i < slice.size(); ++i) {
    const protocol::Request& request = slice[i].request;
    switch (request.kind) {
      case protocol::CommandKind::kQuery:
        break;  // Replied above.
      case protocol::CommandKind::kStreamCreate: {
        // Journal-before-apply (also for APPEND/CLOSE below): once a
        // client reads "OK", the op is durable per the fsync policy.
        // On a journal failure the op is NOT applied — the client sees
        // EPERSIST and in-memory state still matches what recovery
        // would rebuild from disk.
        if (state_ != nullptr) {
          Status journaled = state_->RecordCreate(
              request.stream, request.probs, request.detector);
          if (!journaled.ok()) {
            persist_errors_.fetch_add(1, std::memory_order_relaxed);
            replies[i] = protocol::FormatError(
                protocol::ErrorCode::kPersist, journaled.message());
            break;
          }
        }
        Status status = streams_.CreateStream(request.stream, request.probs,
                                              request.detector);
        replies[i] = status.ok()
                         ? StrCat("OK created ", request.stream)
                         : protocol::FormatError(
                               protocol::ErrorCodeForStatus(status),
                               status.message());
        break;
      }
      case protocol::CommandKind::kStreamAppend: {
        if (state_ != nullptr) {
          Status journaled =
              state_->RecordAppend(request.stream, request.symbols);
          if (!journaled.ok()) {
            persist_errors_.fetch_add(1, std::memory_order_relaxed);
            replies[i] = protocol::FormatError(
                protocol::ErrorCode::kPersist, journaled.message());
            break;
          }
        }
        auto alarms = streams_.AppendCollect(request.stream, request.symbols);
        if (!alarms.ok()) {
          replies[i] = protocol::FormatError(
              protocol::ErrorCodeForStatus(alarms.status()),
              alarms.status().message());
          break;
        }
        replies[i] = StrCat("OK alarms=", alarms->size());
        for (const core::StreamingDetector::Alarm& alarm : *alarms) {
          // conn_id 0 = broadcast; the I/O thread owns the subscriber
          // map, so fan-out resolves there.
          outbound.push_back(Outbound{
              0, protocol::FormatAlarm(request.stream, alarm), false,
              request.stream});
        }
        break;
      }
      case protocol::CommandKind::kStreamSnapshot: {
        auto snapshot = streams_.Snapshot(request.stream);
        replies[i] = snapshot.ok()
                         ? StrCat("OK ", protocol::FormatSnapshot(*snapshot))
                         : protocol::FormatError(
                               protocol::ErrorCodeForStatus(snapshot.status()),
                               snapshot.status().message());
        break;
      }
      case protocol::CommandKind::kStreamClose: {
        if (state_ != nullptr) {
          Status journaled = state_->RecordClose(request.stream);
          if (!journaled.ok()) {
            persist_errors_.fetch_add(1, std::memory_order_relaxed);
            replies[i] = protocol::FormatError(
                protocol::ErrorCode::kPersist, journaled.message());
            break;
          }
        }
        Status status = streams_.CloseStream(request.stream);
        replies[i] = status.ok()
                         ? StrCat("OK closed ", request.stream)
                         : protocol::FormatError(
                               protocol::ErrorCodeForStatus(status),
                               status.message());
        break;
      }
      default:
        // Control commands never reach the queue.
        replies[i] = protocol::FormatError(protocol::ErrorCode::kInternal,
                                           "control command in work queue");
        break;
    }
  }

  std::vector<Outbound> lines;
  lines.reserve(slice.size() + outbound.size());
  for (size_t i = 0; i < slice.size(); ++i) {
    lines.push_back(
        Outbound{slice[i].conn_id, std::move(replies[i]), true, {}});
  }
  for (Outbound& push : outbound) lines.push_back(std::move(push));
  PostOutbound(std::move(lines));
}

void Server::PostOutbound(std::vector<Outbound> lines) {
  {
    MutexLock lock(response_mutex_);
    for (Outbound& line : lines) responses_.push_back(std::move(line));
  }
  Wakeup();
}

// --------------------------------------------------------------- I/O loop

void Server::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // Parallel to fds: conn id or 0.
  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);
    const int64_t now = MonotonicMillis();

    if (draining && listen_fd_ >= 0) {
      // Adopt connections already through the TCP handshake first:
      // closing the listener resets its backlog, and a client that
      // connected before the drain signal deserves EDRAIN replies, not a
      // reset. Only then stop accepting.
      AcceptPending(now);
      ::close(listen_fd_);
      listen_fd_ = -1;
      drain_started_ms_ = now;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wakeup_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : connections_) {
      short events = conn->discard_input ? 0 : POLLIN;
      if (!conn->wbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    int ready = ::poll(fds.data(), fds.size(), kPollTickMs);
    if (ready < 0 && errno != EINTR) break;  // Unrecoverable.

    // Drain the wakeup pipe (edge payloads carry no data beyond "look
    // at your queues").
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wakeup_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }

    DrainResponseQueue();

    if (listen_fd_ >= 0) {
      for (size_t i = 1; i < fds.size(); ++i) {
        if (fds[i].fd == listen_fd_ && (fds[i].revents & POLLIN)) {
          AcceptPending(now);
        }
      }
    }

    for (size_t i = 0; i < fds.size(); ++i) {
      uint64_t id = fd_conn[i];
      if (id == 0) continue;
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Closed this iteration.
      Connection& conn = *it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer is gone; its in-flight replies (if any) are dropped at
        // delivery time but still complete their accounting.
        CloseConnection(id);
        continue;
      }
      if (fds[i].revents & POLLIN) ReadFromConnection(conn, now);
      if (connections_.find(id) == connections_.end()) continue;
      if (!conn.wbuf.empty()) FlushWrites(conn);
    }

    // Close-after-flush connections (QUIT, ETIMEOUT, ETOOBIG).
    std::vector<uint64_t> finished;
    for (const auto& [id, conn] : connections_) {
      if (conn->closing && conn->wbuf.empty() && conn->inflight == 0) {
        finished.push_back(id);
      }
    }
    for (uint64_t id : finished) CloseConnection(id);

    if (!draining && options_.idle_timeout_ms > 0) HarvestIdle(now);

    if (draining) {
      if (now - drain_started_ms_ >= options_.drain_timeout_ms) break;
      if (DrainComplete()) {
        // Quiet — but bytes the clients wrote before the drain signal may
        // still be in flight. Linger a couple of ticks so they are read
        // and answered (EDRAIN) rather than reset away; any such arrival
        // makes DrainComplete false again and restarts the clock.
        if (drain_quiesce_ms_ == 0) drain_quiesce_ms_ = now;
        if (now - drain_quiesce_ms_ >= kDrainLingerMs) break;
      } else {
        drain_quiesce_ms_ = 0;
      }
    }
  }

  // Drained (or out of budget): shut the executor down — the queue is
  // empty on the graceful path, so no admitted request is abandoned.
  stop_executor_.store(true, std::memory_order_release);
  queue_cv_.NotifyAll();
  std::vector<uint64_t> remaining;
  for (const auto& [id, conn] : connections_) remaining.push_back(id);
  for (uint64_t id : remaining) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    // Half-close + consume: FIN tells the client no more replies are
    // coming, and reading out whatever it already sent prevents the
    // kernel from turning the close into an RST that would destroy
    // replies still sitting in the client's receive buffer.
    ::shutdown(it->second->fd, SHUT_WR);
    char sink[1 << 12];
    while (::read(it->second->fd, sink, sizeof(sink)) > 0) {
    }
    CloseConnection(id);
  }
}

void Server::AcceptPending(int64_t now_ms) {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or transient accept failure.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_current_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Over the connection cap: say why, then hang up. Best-effort —
      // the fd is still blocking here, but one short write to a fresh
      // socket buffer cannot block.
      std::string reply =
          protocol::FormatError(protocol::ErrorCode::kBusy, "server full") +
          "\n";
      (void)WriteFdAll(fd, reply);
      ::close(fd);
      shed_busy_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity_ms = now_ms;
    connections_current_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::ReadFromConnection(Connection& conn, int64_t now_ms) {
  const uint64_t id = conn.id;
  char buffer[1 << 14];
  for (;;) {
    ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn.rbuf.append(buffer, static_cast<size_t>(n));
      conn.last_activity_ms = now_ms;
      continue;
    }
    if (n == 0) {  // EOF.
      CloseConnection(conn.id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn.id);
    return;
  }

  bool too_big = false;
  while (!conn.discard_input) {
    std::optional<std::string> line = protocol::ExtractLine(&conn.rbuf);
    if (!line.has_value()) break;
    if (line->empty()) continue;  // Blank lines are keep-alive no-ops.
    if (line->size() > options_.max_line_bytes) {
      too_big = true;  // A complete line can still be over budget.
      break;
    }
    HandleLine(conn, *line, now_ms);
    if (!connections_.contains(id)) return;
  }
  if (!conn.discard_input &&
      (too_big || conn.rbuf.size() > options_.max_line_bytes)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    if (!QueueReply(conn,
                    protocol::FormatError(
                        protocol::ErrorCode::kTooBig,
                        StrCat("request line exceeds ",
                               options_.max_line_bytes,
                               " bytes; closing")))) {
      return;
    }
    conn.rbuf.clear();
    conn.discard_input = true;
    conn.closing = true;
  }
}

void Server::HandleLine(Connection& conn, const std::string& line,
                        int64_t now_ms) {
  (void)now_ms;
  auto parsed = protocol::ParseRequest(line);
  if (!parsed.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueReply(conn, protocol::FormatError(protocol::ErrorCode::kProto,
                                           parsed.status().message()));
    return;
  }
  protocol::Request& request = *parsed;
  if (!protocol::IsEngineBound(request.kind)) {
    control_requests_.fetch_add(1, std::memory_order_relaxed);
    HandleControl(conn, request);
    return;
  }

  // Admission, most-specific refusal first: a draining server sheds
  // everything (EDRAIN), a client over its own cap must read its replies
  // (EQUOTA), a full queue sheds globally (EBUSY). Each code tells the
  // client a different recovery story — see protocol.h.
  if (draining_.load(std::memory_order_acquire)) {
    shed_drain_.fetch_add(1, std::memory_order_relaxed);
    QueueReply(conn, protocol::FormatError(protocol::ErrorCode::kDrain,
                                           "server is draining"));
    return;
  }
  if (conn.inflight >= options_.max_inflight_per_client) {
    shed_quota_.fetch_add(1, std::memory_order_relaxed);
    QueueReply(conn,
               protocol::FormatError(
                   protocol::ErrorCode::kQuota,
                   StrCat("connection in-flight cap (",
                          options_.max_inflight_per_client,
                          ") reached; read replies before sending more")));
    return;
  }
  {
    MutexLock lock(queue_mutex_);
    if (queue_.size() >= options_.max_queue) {
      shed_busy_.fetch_add(1, std::memory_order_relaxed);
      QueueReply(conn, protocol::FormatError(
                           protocol::ErrorCode::kBusy,
                           "admission queue full; retry with backoff"));
      return;
    }
    queue_.push_back(Work{conn.id, std::move(request)});
  }
  ++conn.inflight;
  inflight_total_.fetch_add(1, std::memory_order_relaxed);
  requests_admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.NotifyOne();
}

void Server::HandleControl(Connection& conn,
                           const protocol::Request& request) {
  switch (request.kind) {
    case protocol::CommandKind::kPing:
      QueueReply(conn, "OK pong");
      break;
    case protocol::CommandKind::kHealth:
      QueueReply(conn,
                 StrCat("OK status=",
                        draining_.load(std::memory_order_acquire)
                            ? "draining"
                            : "serving",
                        " uptime_ms=", MonotonicMillis() - started_ms_));
      break;
    case protocol::CommandKind::kStats:
      QueueReply(conn, StrCat("OK ", StatsReplyPayload()));
      break;
    case protocol::CommandKind::kSubscribe:
      if (!streams_.HasStream(request.stream)) {
        QueueReply(conn, protocol::FormatError(
                             protocol::ErrorCode::kNotFound,
                             StrCat("no stream named \"", request.stream,
                                    "\"")));
        break;
      }
      conn.subscriptions.insert(request.stream);
      QueueReply(conn, StrCat("OK subscribed ", request.stream));
      break;
    case protocol::CommandKind::kUnsubscribe:
      conn.subscriptions.erase(request.stream);
      QueueReply(conn, StrCat("OK unsubscribed ", request.stream));
      break;
    case protocol::CommandKind::kQuit:
      if (!QueueReply(conn, "OK bye")) break;
      conn.discard_input = true;
      conn.closing = true;  // Closes once replies (and wbuf) drain.
      break;
    default:
      QueueReply(conn, protocol::FormatError(protocol::ErrorCode::kInternal,
                                             "unroutable control command"));
      break;
  }
}

std::string Server::StatsReplyPayload() const {
  size_t queue_depth;
  {
    MutexLock lock(queue_mutex_);
    queue_depth = queue_.size();
  }
  ServerStats s = stats();
  return StrCat(
      "uptime_ms=", s.uptime_ms, " conns=", s.connections_current,
      " accepted=", s.connections_accepted, " admitted=", s.requests_admitted,
      " control=", s.control_requests, " queue_depth=", queue_depth,
      " inflight=", inflight_total_.load(std::memory_order_relaxed),
      " shed_busy=", s.shed_busy, " shed_quota=", s.shed_quota,
      " shed_drain=", s.shed_drain, " proto_errors=", s.protocol_errors,
      " idle_timeouts=", s.idle_timeouts,
      " slow_disconnects=", s.slow_disconnects,
      " alarms_pushed=", s.alarms_pushed,
      " persist_errors=", s.persist_errors, " ",
      engine::FormatEngineStats(
          engine::CollectEngineStats(&engine_, &streams_)));
}

bool Server::QueueReply(Connection& conn, std::string line) {
  const uint64_t id = conn.id;
  conn.wbuf += line;
  conn.wbuf += '\n';
  if (conn.wbuf.size() > options_.max_write_buffer) {
    // A consumer this far behind is holding server memory hostage;
    // disconnecting is the bounded-memory guarantee.
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id);
    return false;
  }
  FlushWrites(conn);
  return connections_.contains(id);
}

void Server::FlushWrites(Connection& conn) {
  while (!conn.wbuf.empty()) {
    ssize_t n = RawWrite(conn.fd, conn.wbuf.data(), conn.wbuf.size());
    if (n > 0) {
      conn.wbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseConnection(conn.id);  // EPIPE and friends.
    return;
  }
}

void Server::DrainResponseQueue() {
  std::vector<Outbound> batch;
  {
    MutexLock lock(response_mutex_);
    batch.swap(responses_);
  }
  for (Outbound& out : batch) {
    if (out.conn_id == 0) {
      // Alarm broadcast: deliver to every connection subscribed to the
      // stream (the subscriber map lives here, on the I/O thread).
      // Targets are collected first — QueueReply can close a slow
      // connection, which would invalidate a live map iterator.
      std::vector<uint64_t> targets;
      for (const auto& [id, conn] : connections_) {
        if (conn->subscriptions.contains(out.stream)) targets.push_back(id);
      }
      for (uint64_t id : targets) {
        auto it = connections_.find(id);
        if (it == connections_.end()) continue;
        alarms_pushed_.fetch_add(1, std::memory_order_relaxed);
        QueueReply(*it->second, out.line);
      }
      continue;
    }
    if (out.completes_inflight) {
      inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    }
    auto it = connections_.find(out.conn_id);
    if (it == connections_.end()) continue;  // Client left; reply evaporates.
    if (out.completes_inflight) --it->second->inflight;
    QueueReply(*it->second, std::move(out.line));
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::close(it->second->fd);
  connections_.erase(it);
  connections_current_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::HarvestIdle(int64_t now_ms) {
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->closing || conn->inflight > 0 || !conn->wbuf.empty()) {
      continue;  // Waiting on us (or on flushing) is not idling.
    }
    if (now_ms - conn->last_activity_ms >= options_.idle_timeout_ms) {
      idle.push_back(id);
    }
  }
  for (uint64_t id : idle) {
    auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
    if (!QueueReply(*it->second,
                    protocol::FormatError(protocol::ErrorCode::kTimeout,
                                          "idle timeout; closing"))) {
      continue;
    }
    it = connections_.find(id);
    if (it == connections_.end()) continue;
    it->second->discard_input = true;
    it->second->closing = true;
  }
}

bool Server::DrainComplete() const {
  if (inflight_total_.load(std::memory_order_acquire) != 0) return false;
  {
    MutexLock lock(queue_mutex_);
    if (!queue_.empty()) return false;
  }
  {
    MutexLock lock(response_mutex_);
    if (!responses_.empty()) return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn->wbuf.empty()) return false;
  }
  return true;
}

}  // namespace server
}  // namespace sigsub
