#ifndef SIGSUB_SERVER_SERVER_H_
#define SIGSUB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/x2_dispatch.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "engine/stream_manager.h"
#include "persist/state_store.h"
#include "server/protocol.h"

namespace sigsub {
namespace server {

struct ServerOptions {
  /// Bind address. The default loopback/ephemeral pair is what tests and
  /// the bench harness want; `port() ` reports the kernel's pick.
  std::string host = "127.0.0.1";
  int port = 0;

  // Engine construction (mirrors EngineOptions / StreamManagerOptions).
  int engine_threads = 1;
  size_t cache_capacity = 4096;
  int64_t shard_min_sequence = 1 << 20;
  core::X2Dispatch x2_dispatch = core::X2Dispatch::kAuto;

  /// Accepted connections beyond this are greeted with `ERR EBUSY server
  /// full` and closed immediately.
  int max_connections = 64;
  /// Admission-queue depth across all connections; an engine-bound
  /// request arriving with the queue full is shed with EBUSY (it never
  /// executes — the client retries with backoff).
  size_t max_queue = 256;
  /// Engine-bound requests one connection may have queued or executing;
  /// the excess is refused with EQUOTA until its own replies drain.
  int max_inflight_per_client = 32;
  /// A connection idle this long with nothing in flight gets ERR
  /// ETIMEOUT and is closed. <= 0 disables idle harvesting.
  int64_t idle_timeout_ms = 60000;
  /// Graceful-drain budget: connections still open this long after
  /// RequestDrain are force-closed (their queued work has already been
  /// answered by then unless the executor itself is stuck).
  int64_t drain_timeout_ms = 5000;

  /// A request line longer than this (no newline seen) is a protocol
  /// abuse: ERR ETOOBIG, then close.
  size_t max_line_bytes = 1 << 16;
  /// A connection whose unsent reply/alarm backlog exceeds this is a slow
  /// consumer holding server memory hostage; it is disconnected.
  size_t max_write_buffer = 1 << 20;
  /// Executor slice: up to this many queued requests are popped per wake,
  /// and their QUERYs execute as one engine batch (context reuse across
  /// concurrent clients — the whole point of a shared daemon).
  size_t batch_max = 64;
  /// Substring rows materialized per query reply (protocol::FormatQueryResult).
  size_t max_result_rows = 64;

  /// Test seam: when set, the executor calls this after waking and BEFORE
  /// popping its slice. A test that blocks in the hook freezes admission
  /// -> queue/quota saturation becomes deterministic instead of a race.
  std::function<void()> executor_hook;

  // --- Durability (src/persist/) -----------------------------------------
  /// When non-empty, the server is crash-safe: Start() replays the
  /// directory's snapshot + journal tail into the stream manager (and
  /// warms the result cache), every acknowledged stream op is journaled
  /// on the executor thread BEFORE it is applied (a journal failure is
  /// replied EPERSIST and NOT applied), snapshots are written
  /// periodically and on drain, and each snapshot truncates the
  /// journal. Empty (the default) disables persistence entirely.
  std::string state_dir;
  /// Journal fsync policy (kAlways survives power loss; kNone only
  /// process crashes). Ignored without state_dir.
  persist::FsyncPolicy fsync_policy = persist::FsyncPolicy::kAlways;
  /// Milliseconds between periodic snapshots; <= 0 leaves only the
  /// snapshot-on-drain. Ignored without state_dir.
  int64_t snapshot_interval_ms = 30000;
};

/// Monotonic server-level counters (atomic snapshot via Server::stats()).
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_current = 0;
  int64_t requests_admitted = 0;
  int64_t control_requests = 0;
  int64_t shed_busy = 0;        // EBUSY: admission queue full.
  int64_t shed_quota = 0;       // EQUOTA: per-connection cap.
  int64_t shed_drain = 0;       // EDRAIN: refused while draining.
  int64_t protocol_errors = 0;  // EPROTO / EINVALID replies.
  int64_t idle_timeouts = 0;
  int64_t slow_disconnects = 0;  // Write backlog over max_write_buffer.
  int64_t alarms_pushed = 0;     // ALARM lines delivered to subscribers.
  int64_t persist_errors = 0;    // EPERSIST replies + failed snapshots.
  int64_t uptime_ms = 0;
};

/// sigsubd: the mining daemon. One poll()-looped I/O thread speaks the
/// newline-delimited protocol (server/protocol.h) to many concurrent
/// clients; one executor thread owns the engine (whose contract is one
/// batch at a time) and executes admitted work in slices, batching
/// concurrent clients' QUERYs into single Engine::ExecuteQueries calls.
/// Stream commands run against an engine::StreamManager; alarms raised by
/// STREAM.APPEND fan out to every connection SUBSCRIBEd to that stream.
///
/// Backpressure is explicit, never silent: admission checks run in order
/// drain -> per-client quota -> global queue, and each refusal is a
/// distinct wire code (EDRAIN / EQUOTA / EBUSY) so clients can tell "back
/// off everywhere" from "read your own replies first". Control commands
/// (PING/STATS/HEALTH/SUBSCRIBE/UNSUBSCRIBE/QUIT) are answered inline by
/// the I/O thread and deliberately overtake queued work — monitoring must
/// keep answering precisely when the server is saturated. Within each
/// class, replies preserve per-connection request order.
///
/// Shutdown: RequestDrain() is async-signal-safe (an atomic flag plus one
/// self-pipe byte), so `serve` installs it directly as its SIGTERM/SIGINT
/// action. Draining stops accepting, sheds new engine-bound work with
/// EDRAIN, finishes everything already admitted, flushes every reply and
/// alarm buffer, then closes — zero admitted requests are dropped.
class Server {
 public:
  /// The corpus is fixed at construction (the daemon serves queries
  /// against it); streams are created dynamically by clients.
  Server(engine::Corpus corpus, ServerOptions options = {});

  /// Not movable: RequestDrain may be latched into a signal handler.
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the I/O and executor threads. IOError if
  /// the socket cannot be bound.
  Status Start();

  /// The bound port (after Start) — the ephemeral-port answer.
  int port() const { return port_; }

  /// Initiates graceful drain. Async-signal-safe: sets an atomic flag and
  /// writes one byte to the wakeup pipe. Idempotent.
  void RequestDrain();

  /// Blocks until the server has fully drained and both threads exited.
  void Join();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;

  /// What replay-on-startup found (zero-valued without state_dir or
  /// before Start). Stable once Start() returns.
  const persist::RecoveryStats& recovery() const { return recovery_; }

  /// Drains (if still running) and joins.
  ~Server();

 private:
  struct Connection;

  /// One admitted engine-bound request.
  struct Work {
    uint64_t conn_id = 0;
    protocol::Request request;
  };

  /// One line owed to a connection (reply), or — when conn_id is 0 — an
  /// alarm line to broadcast to `stream`'s subscribers.
  struct Outbound {
    uint64_t conn_id = 0;
    std::string line;
    bool completes_inflight = false;
    std::string stream;
  };

  void IoLoop();
  void ExecutorLoop() SIGSUB_EXCLUDES(queue_mutex_);

  /// Executes one slice of admitted work: all QUERYs as one engine batch
  /// (falling back to per-query execution if the batch fails validation),
  /// stream ops one by one in slice order; posts replies and alarm pushes.
  void ExecuteSlice(std::vector<Work> slice);

  // --- I/O-thread-only helpers -------------------------------------------
  void AcceptPending(int64_t now_ms);
  void ReadFromConnection(Connection& conn, int64_t now_ms);
  void HandleLine(Connection& conn, const std::string& line, int64_t now_ms)
      SIGSUB_EXCLUDES(queue_mutex_);
  void HandleControl(Connection& conn, const protocol::Request& request);
  std::string StatsReplyPayload() const SIGSUB_EXCLUDES(queue_mutex_);
  /// Appends `line` + '\n' to the connection's write buffer and flushes
  /// what the socket will take. Returns false when this killed the
  /// connection (write error, or backlog over max_write_buffer) — the
  /// caller's reference is dead then.
  bool QueueReply(Connection& conn, std::string line);
  void FlushWrites(Connection& conn);
  void DrainResponseQueue() SIGSUB_EXCLUDES(response_mutex_);
  void CloseConnection(uint64_t conn_id);
  void HarvestIdle(int64_t now_ms);
  /// True when every connection's write buffer is empty and nothing is in
  /// flight — the drain-completion condition.
  bool DrainComplete() const
      SIGSUB_EXCLUDES(queue_mutex_, response_mutex_);

  void PostOutbound(std::vector<Outbound> lines)
      SIGSUB_EXCLUDES(response_mutex_);
  void Wakeup();

  engine::Corpus corpus_ SIGSUB_THREAD_CONFINED(init);
  ServerOptions options_ SIGSUB_THREAD_CONFINED(init);
  engine::Engine engine_ SIGSUB_THREAD_CONFINED(executor);
  engine::StreamManager streams_;  // Internally synchronized.

  // Durability (engaged only with options_.state_dir). Touched by the
  // executor thread after Start(); Start() itself runs recovery before
  // either thread exists.
  std::unique_ptr<persist::StateStore> state_ SIGSUB_THREAD_CONFINED(executor);
  persist::RecoveryStats recovery_ SIGSUB_THREAD_CONFINED(init);

  // Sockets: opened in Start() before either thread spawns, immutable
  // until Stop() joins them again.
  int listen_fd_ SIGSUB_THREAD_CONFINED(init) = -1;
  int port_ SIGSUB_THREAD_CONFINED(init) = 0;
  int wakeup_read_fd_ SIGSUB_THREAD_CONFINED(init) = -1;
  int wakeup_write_fd_ SIGSUB_THREAD_CONFINED(init) = -1;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_executor_{false};
  std::atomic<int64_t> inflight_total_{0};

  // Admission queue: I/O thread pushes, executor pops slices. Never held
  // together with response_mutex_ (DrainComplete takes them in separate
  // scopes); the declared order matches the request pipeline direction.
  mutable Mutex queue_mutex_ SIGSUB_ACQUIRED_BEFORE(response_mutex_);
  CondVar queue_cv_;
  std::deque<Work> queue_ SIGSUB_GUARDED_BY(queue_mutex_);

  // Response queue: executor pushes, I/O thread drains (after a wakeup
  // byte). Connection state itself is touched only by the I/O thread.
  mutable Mutex response_mutex_;
  std::vector<Outbound> responses_ SIGSUB_GUARDED_BY(response_mutex_);

  // I/O-thread-only state (no locks; never touched elsewhere).
  std::map<uint64_t, std::unique_ptr<Connection>> connections_
      SIGSUB_THREAD_CONFINED(io);
  uint64_t next_conn_id_ SIGSUB_THREAD_CONFINED(io) = 1;
  int64_t drain_started_ms_ SIGSUB_THREAD_CONFINED(io) = 0;
  // First moment the drain condition held; the loop lingers kDrainLingerMs
  // past it to catch request bytes that were on the wire at drain time.
  int64_t drain_quiesce_ms_ SIGSUB_THREAD_CONFINED(io) = 0;

  // Counters (any thread).
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_admitted_{0};
  std::atomic<int64_t> control_requests_{0};
  std::atomic<int64_t> shed_busy_{0};
  std::atomic<int64_t> shed_quota_{0};
  std::atomic<int64_t> shed_drain_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> idle_timeouts_{0};
  std::atomic<int64_t> slow_disconnects_{0};
  std::atomic<int64_t> alarms_pushed_{0};
  std::atomic<int64_t> persist_errors_{0};
  std::atomic<int64_t> connections_current_{0};
  int64_t started_ms_ SIGSUB_THREAD_CONFINED(init) = 0;

  // Lifecycle state, touched only by the thread driving Start()/Stop().
  std::thread io_thread_ SIGSUB_THREAD_CONFINED(lifecycle);
  std::thread executor_thread_ SIGSUB_THREAD_CONFINED(lifecycle);
  bool started_ SIGSUB_THREAD_CONFINED(lifecycle) = false;
  bool joined_ SIGSUB_THREAD_CONFINED(lifecycle) = false;
};

}  // namespace server
}  // namespace sigsub

#endif  // SIGSUB_SERVER_SERVER_H_
