#ifndef SIGSUB_SERVER_PROTOCOL_H_
#define SIGSUB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "common/result.h"
#include "core/streaming.h"
#include "engine/stream_manager.h"

namespace sigsub {
namespace server {
namespace protocol {

/// The sigsubd line protocol: newline-delimited text over TCP. Every
/// request is one line; every reply is one line, so framing is trivial
/// for shell scripts, netcat, and load generators alike.
///
/// Requests:
///
///   QUERY <spec>                 one api::QuerySpec in its canonical
///                                compact or JSON form (api/serde.h); the
///                                rest of the line is the spec verbatim
///   STREAM.CREATE <name> probs=p1;p2;... [alpha=A] [max_window=W]
///   STREAM.APPEND <name> <symbols>   symbols as one character per
///                                symbol: '0'-'9' -> 0-9, 'a'-'z' ->
///                                10-35 (alphabets up to k = 36)
///   STREAM.SNAPSHOT <name>
///   STREAM.CLOSE <name>
///   SUBSCRIBE <name>             push this stream's alarms to this
///                                connection as they are raised
///   UNSUBSCRIBE <name>
///   STATS | HEALTH | PING | QUIT
///
/// Replies (one per request, in per-class order — see server.h for the
/// overtaking rule between control and engine-bound commands):
///
///   OK <payload>
///   ERR <CODE> <message>
///
/// Asynchronous pushes to subscribed connections are distinguishable by
/// their leading token:
///
///   ALARM stream=<name> end=<e> length=<l> x2=<v> p=<v>
///
/// Error codes and backpressure semantics: EBUSY (admission queue full)
/// and EDRAIN (server draining) are load-shedding replies — the request
/// was not executed and SHOULD be retried with exponential backoff.
/// EQUOTA (per-connection in-flight cap) clears as soon as this
/// connection's own replies arrive — read them, then retry. ETIMEOUT /
/// ETOOBIG precede a server-side close. EPROTO / EINVALID / ENOTFOUND
/// are non-retryable client errors; EINTERNAL is a server-side bug.
/// EPERSIST reports a durability failure (--state-dir journal write):
/// the op was NOT applied, so in-memory and recoverable state still
/// agree; it clears only once the operator fixes the state volume.
enum class ErrorCode {
  kProto,     // EPROTO: malformed request line.
  kInvalid,   // EINVALID: well-formed but semantically invalid.
  kNotFound,  // ENOTFOUND: unknown stream.
  kBusy,      // EBUSY: admission queue (or connection slots) full; retry.
  kQuota,     // EQUOTA: per-connection in-flight cap reached.
  kDrain,     // EDRAIN: draining; no new work accepted; retry elsewhere.
  kTimeout,   // ETIMEOUT: idle too long; connection will close.
  kTooBig,    // ETOOBIG: request line over the size cap; closing.
  kInternal,  // EINTERNAL: unexpected server-side failure.
  kPersist,   // EPERSIST: durability failure — the op could not be
              // journaled and was NOT applied; state is unchanged.
};

/// Wire name of a code ("EBUSY"...).
std::string_view ErrorCodeName(ErrorCode code);

/// True for the load-shedding codes a well-behaved client retries with
/// exponential backoff (EBUSY, EDRAIN).
bool IsRetryable(ErrorCode code);

/// "ERR <CODE> <message>" (no trailing newline).
std::string FormatError(ErrorCode code, std::string_view message);

/// Maps a library Status onto the wire vocabulary: NotFound ->
/// ENOTFOUND, InvalidArgument/OutOfRange -> EINVALID, rest -> EINTERNAL.
ErrorCode ErrorCodeForStatus(const Status& status);

enum class CommandKind {
  kQuery,
  kStreamCreate,
  kStreamAppend,
  kStreamSnapshot,
  kStreamClose,
  kSubscribe,
  kUnsubscribe,
  kStats,
  kHealth,
  kPing,
  kQuit,
};

/// True for the commands that execute on the engine/stream subsystem and
/// therefore flow through the admission queue (QUERY, STREAM.*); control
/// commands are answered inline even under saturation.
bool IsEngineBound(CommandKind kind);

/// One parsed request line.
struct Request {
  CommandKind kind = CommandKind::kPing;
  api::QuerySpec query;                       // kQuery.
  std::string stream;                         // stream ops + (un)subscribe.
  std::vector<double> probs;                  // kStreamCreate.
  core::StreamingDetector::Options detector;  // kStreamCreate (alpha, window).
  std::vector<uint8_t> symbols;               // kStreamAppend.
};

/// Parses one request line (no trailing newline). Errors name the
/// offending piece; the caller wraps them as EPROTO/EINVALID.
Result<Request> ParseRequest(std::string_view line);

/// Renders a query result as the single-line OK payload:
///   kind=<kind> seq=<i> cache=<0|1> matches=<m> rows=<s:e:x2;...>
/// Substrings-query rows carry two extra colon fields — occurrence count
/// and p-value (`s:e:x2:count:p`). At most `max_rows` substrings are
/// materialized into `rows=` (the exact total stays in `matches=`);
/// doubles print in shortest round-trip form so equal results serialize
/// to equal bytes.
std::string FormatQueryResult(const api::QueryResult& result,
                              size_t max_rows);

/// "ALARM stream=<name> end=.. length=.. x2=.. p=.." push line.
std::string FormatAlarm(std::string_view stream,
                        const core::StreamingDetector::Alarm& alarm);

/// Single-line stream snapshot payload for STREAM.SNAPSHOT.
std::string FormatSnapshot(const engine::StreamSnapshot& snapshot);

/// Symbol-text codec for STREAM.APPEND payloads ('0'-'9','a'-'z').
Result<std::vector<uint8_t>> DecodeSymbols(std::string_view text);
std::string EncodeSymbols(const std::vector<uint8_t>& symbols);

/// Pops one '\n'-terminated line off the front of `buffer` (a trailing
/// '\r' is dropped, so CRLF clients work); nullopt when no complete line
/// is buffered yet.
std::optional<std::string> ExtractLine(std::string* buffer);

}  // namespace protocol
}  // namespace server
}  // namespace sigsub

#endif  // SIGSUB_SERVER_PROTOCOL_H_
