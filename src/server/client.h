#ifndef SIGSUB_SERVER_CLIENT_H_
#define SIGSUB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace sigsub {
namespace server {

/// Bounded-retry policy for ConnectWithRetry. Attempt n (0-based) that
/// fails with IOError sleeps `backoff_ms * 2^n` milliseconds, jittered
/// uniformly in [0.5, 1.5) of that value so a fleet of restarting
/// clients does not stampede the daemon in lockstep, then tries again —
/// up to `retries` extra attempts after the first.
struct RetryPolicy {
  /// Additional attempts after the first (0 = plain Connect).
  int retries = 0;
  /// Base backoff before the first retry; doubles per attempt.
  int64_t backoff_ms = 100;
  /// Per-attempt connect timeout.
  int64_t timeout_ms = 5000;
};

/// Minimal blocking client for the sigsubd line protocol — the transport
/// under the CLI `client` command, the server tests, and the loopback
/// load bench. One TCP connection, '\n'-framed lines, explicit timeouts;
/// EINTR and partial reads/writes are handled internally.
///
/// Not thread-safe; one thread per LineClient.
class LineClient {
 public:
  LineClient() = default;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  ~LineClient();

  /// Connects to host:port; IOError on refusal or after `timeout_ms`.
  static Result<LineClient> Connect(const std::string& host, int port,
                                    int64_t timeout_ms = 5000);

  /// Connect with bounded, jittered exponential-backoff retry — the
  /// polite way to reach a daemon that is restarting (crash recovery
  /// replay takes a moment). Only IOError is retried; InvalidArgument
  /// (a bad address will not get better) fails immediately. Returns the
  /// last attempt's error after the budget is spent.
  static Result<LineClient> ConnectWithRetry(const std::string& host,
                                             int port,
                                             const RetryPolicy& policy);

  /// Sends `line` plus the terminating '\n'.
  Status SendLine(std::string_view line);

  /// Next '\n'-terminated line (without the newline; a trailing '\r' is
  /// stripped). IOError("timeout ...") if none arrives within
  /// `timeout_ms`; IOError("connection closed") at orderly EOF with no
  /// buffered line.
  Result<std::string> ReadLine(int64_t timeout_ms = 5000);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string rbuf_;
  bool eof_ = false;
};

}  // namespace server
}  // namespace sigsub

#endif  // SIGSUB_SERVER_CLIENT_H_
