#include "server/protocol.h"

#include <charconv>
#include <cstddef>

#include "api/serde.h"
#include "common/str_util.h"

namespace sigsub {
namespace server {
namespace protocol {
namespace {

// Shortest round-trip number spellings (the serde.cc discipline): equal
// values produce equal reply bytes, so replies are diffable in tests.
std::string FormatI(int64_t value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, ptr);
}

std::string FormatF(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, ptr);
}

Result<double> ParseF(std::string_view text, std::string_view what) {
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(StrCat("field ", what,
                                          " expects a number, got \"",
                                          std::string(text), "\""));
  }
  return value;
}

Result<int64_t> ParseI(std::string_view text, std::string_view what) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(StrCat("field ", what,
                                          " expects an integer, got \"",
                                          std::string(text), "\""));
  }
  return value;
}

/// Splits on single spaces, skipping runs of them (a shell-ish
/// tokenizer; payloads that may contain spaces — the QUERY spec — are
/// taken as rest-of-line before this runs).
std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

Status ExpectNoArgs(std::string_view verb, std::string_view rest) {
  for (char c : rest) {
    if (c != ' ') {
      return Status::InvalidArgument(
          StrCat(verb, " takes no arguments, got \"", std::string(rest),
                 "\""));
    }
  }
  return Status::OK();
}

/// `STREAM.CREATE <name> probs=p1;p2;... [alpha=A] [max_window=W]`.
Result<Request> ParseStreamCreate(std::string_view rest) {
  std::vector<std::string_view> tokens = Tokenize(rest);
  if (tokens.empty()) {
    return Status::InvalidArgument("STREAM.CREATE needs a stream name");
  }
  Request request;
  request.kind = CommandKind::kStreamCreate;
  request.stream = std::string(tokens[0]);
  bool saw_probs = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    std::string_view token = tokens[i];
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("STREAM.CREATE expects key=value options, got \"",
                 std::string(token), "\""));
    }
    std::string_view key = token.substr(0, eq);
    std::string_view value = token.substr(eq + 1);
    if (key == "probs") {
      for (const std::string& part :
           StrSplit(std::string(value), ';')) {
        SIGSUB_ASSIGN_OR_RETURN(double p, ParseF(part, "probs"));
        request.probs.push_back(p);
      }
      saw_probs = true;
    } else if (key == "alpha") {
      SIGSUB_ASSIGN_OR_RETURN(request.detector.alpha,
                              ParseF(value, "alpha"));
    } else if (key == "max_window") {
      SIGSUB_ASSIGN_OR_RETURN(request.detector.max_window,
                              ParseI(value, "max_window"));
    } else if (key == "rearm") {
      SIGSUB_ASSIGN_OR_RETURN(request.detector.rearm_fraction,
                              ParseF(value, "rearm"));
    } else {
      return Status::InvalidArgument(
          StrCat("STREAM.CREATE does not understand option \"",
                 std::string(key), "\""));
    }
  }
  if (!saw_probs || request.probs.empty()) {
    return Status::InvalidArgument(
        "STREAM.CREATE needs probs=p1;p2;... (the stream's null model)");
  }
  return request;
}

Result<Request> ParseOneNameCommand(CommandKind kind, std::string_view verb,
                                    std::string_view rest) {
  std::vector<std::string_view> tokens = Tokenize(rest);
  if (tokens.size() != 1) {
    return Status::InvalidArgument(
        StrCat(verb, " expects exactly one stream name"));
  }
  Request request;
  request.kind = kind;
  request.stream = std::string(tokens[0]);
  return request;
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProto:
      return "EPROTO";
    case ErrorCode::kInvalid:
      return "EINVALID";
    case ErrorCode::kNotFound:
      return "ENOTFOUND";
    case ErrorCode::kBusy:
      return "EBUSY";
    case ErrorCode::kQuota:
      return "EQUOTA";
    case ErrorCode::kDrain:
      return "EDRAIN";
    case ErrorCode::kTimeout:
      return "ETIMEOUT";
    case ErrorCode::kTooBig:
      return "ETOOBIG";
    case ErrorCode::kInternal:
      return "EINTERNAL";
    case ErrorCode::kPersist:
      return "EPERSIST";
  }
  return "EINTERNAL";
}

bool IsRetryable(ErrorCode code) {
  return code == ErrorCode::kBusy || code == ErrorCode::kDrain;
}

std::string FormatError(ErrorCode code, std::string_view message) {
  return StrCat("ERR ", ErrorCodeName(code), " ", message);
}

ErrorCode ErrorCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ErrorCode::kInvalid;
    default:
      return ErrorCode::kInternal;
  }
}

bool IsEngineBound(CommandKind kind) {
  switch (kind) {
    case CommandKind::kQuery:
    case CommandKind::kStreamCreate:
    case CommandKind::kStreamAppend:
    case CommandKind::kStreamSnapshot:
    case CommandKind::kStreamClose:
      return true;
    default:
      return false;
  }
}

Result<Request> ParseRequest(std::string_view line) {
  // Verb = up to the first space; the verb's parser decides what the
  // rest of the line means (QUERY takes it verbatim — JSON specs may
  // contain spaces).
  size_t space = line.find(' ');
  std::string_view verb = line.substr(0, space);
  std::string_view rest =
      space == std::string_view::npos ? std::string_view() :
                                        line.substr(space + 1);
  if (verb == "QUERY") {
    size_t start = 0;
    while (start < rest.size() && rest[start] == ' ') ++start;
    if (start == rest.size()) {
      return Status::InvalidArgument("QUERY needs a serialized query spec");
    }
    Request request;
    request.kind = CommandKind::kQuery;
    SIGSUB_ASSIGN_OR_RETURN(request.query,
                            api::ParseQuery(rest.substr(start)));
    return request;
  }
  if (verb == "STREAM.CREATE") return ParseStreamCreate(rest);
  if (verb == "STREAM.APPEND") {
    std::vector<std::string_view> tokens = Tokenize(rest);
    if (tokens.size() != 2) {
      return Status::InvalidArgument(
          "STREAM.APPEND expects a stream name and a symbol payload");
    }
    Request request;
    request.kind = CommandKind::kStreamAppend;
    request.stream = std::string(tokens[0]);
    SIGSUB_ASSIGN_OR_RETURN(request.symbols, DecodeSymbols(tokens[1]));
    return request;
  }
  if (verb == "STREAM.SNAPSHOT") {
    return ParseOneNameCommand(CommandKind::kStreamSnapshot,
                               "STREAM.SNAPSHOT", rest);
  }
  if (verb == "STREAM.CLOSE") {
    return ParseOneNameCommand(CommandKind::kStreamClose, "STREAM.CLOSE",
                               rest);
  }
  if (verb == "SUBSCRIBE") {
    return ParseOneNameCommand(CommandKind::kSubscribe, "SUBSCRIBE", rest);
  }
  if (verb == "UNSUBSCRIBE") {
    return ParseOneNameCommand(CommandKind::kUnsubscribe, "UNSUBSCRIBE",
                               rest);
  }
  Request request;
  if (verb == "STATS") {
    request.kind = CommandKind::kStats;
  } else if (verb == "HEALTH") {
    request.kind = CommandKind::kHealth;
  } else if (verb == "PING") {
    request.kind = CommandKind::kPing;
  } else if (verb == "QUIT") {
    request.kind = CommandKind::kQuit;
  } else {
    return Status::InvalidArgument(
        StrCat("unknown command \"", std::string(verb), "\""));
  }
  SIGSUB_RETURN_IF_ERROR(ExpectNoArgs(verb, rest));
  return request;
}

std::string FormatQueryResult(const api::QueryResult& result,
                              size_t max_rows) {
  std::span<const core::Substring> subs = result.substrings();
  const size_t rows = std::min(subs.size(), max_rows);
  std::string out =
      StrCat("kind=", api::QueryKindToString(result.kind),
             " seq=", FormatI(result.sequence_index),
             " cache=", result.cache_hit ? 1 : 0,
             " matches=", FormatI(result.match_count()), " rows=");
  // Substrings rows carry two extra fields (occurrence count, p-value);
  // the shared start:end:x2 prefix keeps row parsing uniform.
  const auto* substrings =
      std::get_if<api::SubstringsPayload>(&result.payload);
  for (size_t i = 0; i < rows; ++i) {
    if (i > 0) out += ';';
    out += StrCat(FormatI(subs[i].start), ":", FormatI(subs[i].end), ":",
                  FormatF(subs[i].chi_square));
    if (substrings != nullptr) {
      out += StrCat(":", FormatI(substrings->counts[i]), ":",
                    FormatF(substrings->p_values[i]));
    }
  }
  return out;
}

std::string FormatAlarm(std::string_view stream,
                        const core::StreamingDetector::Alarm& alarm) {
  return StrCat("ALARM stream=", stream, " end=", FormatI(alarm.end),
                " length=", FormatI(alarm.length),
                " x2=", FormatF(alarm.chi_square),
                " p=", FormatF(alarm.p_value));
}

std::string FormatSnapshot(const engine::StreamSnapshot& snapshot) {
  return StrCat("stream=", snapshot.name,
                " position=", FormatI(snapshot.position),
                " alarms=", FormatI(snapshot.alarms_total),
                " dropped=", FormatI(snapshot.alarms_dropped),
                " scales=", FormatI(static_cast<int64_t>(
                                snapshot.scales.size())));
}

Result<std::vector<uint8_t>> DecodeSymbols(std::string_view text) {
  std::vector<uint8_t> symbols;
  symbols.reserve(text.size());
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      symbols.push_back(static_cast<uint8_t>(c - '0'));
    } else if (c >= 'a' && c <= 'z') {
      symbols.push_back(static_cast<uint8_t>(10 + (c - 'a')));
    } else {
      return Status::InvalidArgument(
          StrCat("symbol payload may use '0'-'9' and 'a'-'z' only, got '",
                 std::string(1, c), "'"));
    }
  }
  return symbols;
}

std::string EncodeSymbols(const std::vector<uint8_t>& symbols) {
  std::string out;
  out.reserve(symbols.size());
  for (uint8_t s : symbols) {
    out += s < 10 ? static_cast<char>('0' + s)
                  : static_cast<char>('a' + (s - 10));
  }
  return out;
}

std::optional<std::string> ExtractLine(std::string* buffer) {
  size_t newline = buffer->find('\n');
  if (newline == std::string::npos) return std::nullopt;
  std::string line = buffer->substr(0, newline);
  buffer->erase(0, newline + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace protocol
}  // namespace server
}  // namespace sigsub
