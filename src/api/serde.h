#ifndef SIGSUB_API_SERDE_H_
#define SIGSUB_API_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "api/query.h"
#include "common/result.h"

namespace sigsub {
namespace api {

/// Canonical serialization of QuerySpec. Two text forms:
///
/// Compact (the CLI's `--query=` vocabulary):
///
///   kind:key=val,key=val,...
///
///   mss:seq=0,model=uniform
///   topt:seq=2,t=5,model=probs(0.25;0.75)
///   disjoint:seq=0,t=10,min_length=4,min_x2=0,model=uniform
///   threshold:seq=0,alpha_p=0.001,model=uniform
///   minlen:seq=1,min_length=50,model=uniform
///   lenbound:seq=0,min_length=8,max_length=64,model=uniform
///   arlm:seq=0,model=uniform
///   agmm:seq=0,model=uniform
///   blocked:seq=0,block_size=64,model=uniform
///   mss:seq=0,model=markov1(0.9;0.1;0.1;0.9|0.5;0.5)
///
/// JSON (interchange form; ParseQuery auto-detects a leading '{'):
///
///   {"kind":"topt","seq":2,"t":5,
///    "model":{"kind":"multinomial","probs":[0.25,0.75]}}
///
/// Canonical rules — FormatQuery emits exactly one spelling per spec:
///   * `seq` first, the kind's parameters in declaration order, `model`
///     last.
///   * every parameter is emitted, except threshold's `alpha0`/`alpha_p`
///     (emitted only when set, i.e. >= 0) and `max_matches` (emitted only
///     when a cap is set, i.e. != INT64_MAX).
///   * doubles print in shortest round-trip form (std::to_chars), so equal
///     specs always serialize to equal bytes and distinct doubles to
///     distinct bytes.
///   * model spells as `uniform`, `probs(p1;p2;...)`, or
///     `markov<order>(t11;...;tkk|i1;...;ik)` (the `|initial` part omitted
///     when the initial distribution is empty = uniform start).
///
/// ParseQuery(FormatQuery(q)) == q for every representable spec; parsing
/// is strict (unknown kinds/keys, duplicate keys, malformed numbers and
/// trailing bytes are InvalidArgument errors naming the offending piece).
std::string FormatQuery(const QuerySpec& spec);

/// The JSON spelling of the same canonical content.
std::string FormatQueryJson(const QuerySpec& spec);

/// Parses either form (leading '{' selects JSON).
Result<QuerySpec> ParseQuery(std::string_view text);

/// The canonical cache-identity bytes of a query: FormatQuery minus the
/// `seq` field. The engine's result cache keys on (sequence-content
/// fingerprint, FNV-1a of these bytes), so what a query *computes* is
/// identified by content, never by which record index it happened to be
/// addressed to — and any change to the canonical grammar deliberately
/// invalidates cached results.
std::string CanonicalQueryKey(const QuerySpec& spec);

/// FNV-1a digest of CanonicalQueryKey(spec). Replaces the legacy
/// per-field JobParams/model hashing as the cache's job fingerprint.
uint64_t FingerprintQuery(const QuerySpec& spec);

}  // namespace api
}  // namespace sigsub

#endif  // SIGSUB_API_SERDE_H_
