#include "api/serde.h"

#include <charconv>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/fnv1a.h"
#include "common/str_util.h"

namespace sigsub {
namespace api {
namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

// ------------------------------------------------------------- numbers
//
// std::to_chars prints the shortest digit string that round-trips, which
// is what makes the serialization canonical: equal doubles produce equal
// bytes, distinct doubles distinct bytes.

std::string FormatI(int64_t value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, ptr);
}

std::string FormatF(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, ptr);
}

Result<int64_t> ParseI(std::string_view text, std::string_view what) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(StrCat("query field ", what,
                                          " expects an integer, got \"",
                                          std::string(text), "\""));
  }
  return value;
}

Result<double> ParseF(std::string_view text, std::string_view what) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(StrCat("query field ", what,
                                          " expects a number, got \"",
                                          std::string(text), "\""));
  }
  return value;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r' || text.back() == '\n')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string JoinF(std::span<const double> values, char sep) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += sep;
    out += FormatF(values[i]);
  }
  return out;
}

Result<std::vector<double>> SplitF(std::string_view text, char sep,
                                   std::string_view what) {
  std::vector<double> values;
  while (true) {
    size_t at = text.find(sep);
    std::string_view part =
        at == std::string_view::npos ? text : text.substr(0, at);
    SIGSUB_ASSIGN_OR_RETURN(double v, ParseF(Trim(part), what));
    values.push_back(v);
    if (at == std::string_view::npos) break;
    text.remove_prefix(at + 1);
  }
  return values;
}

// -------------------------------------------------------------- models

std::string FormatModel(const ModelSpec& model) {
  switch (model.kind) {
    case ModelKind::kUniform:
      return "uniform";
    case ModelKind::kMultinomial:
      return StrCat("probs(", JoinF(model.probs, ';'), ")");
    case ModelKind::kMarkov: {
      std::string out = StrCat("markov", model.order, "(",
                               JoinF(model.transitions, ';'));
      if (!model.initial.empty()) {
        out += '|';
        out += JoinF(model.initial, ';');
      }
      out += ')';
      return out;
    }
  }
  return "uniform";
}

Result<ModelSpec> ParseModel(std::string_view text) {
  text = Trim(text);
  if (text == "uniform") return ModelSpec::Uniform();
  auto inner_of = [&](std::string_view head) -> Result<std::string_view> {
    if (text.back() != ')') {
      return Status::InvalidArgument(
          StrCat("model \"", std::string(text), "\" is missing ')'"));
    }
    return text.substr(head.size(), text.size() - head.size() - 1);
  };
  if (text.rfind("probs(", 0) == 0) {
    SIGSUB_ASSIGN_OR_RETURN(std::string_view inner, inner_of("probs("));
    SIGSUB_ASSIGN_OR_RETURN(std::vector<double> probs,
                            SplitF(inner, ';', "model.probs"));
    return ModelSpec::Multinomial(std::move(probs));
  }
  if (text.rfind("markov", 0) == 0) {
    size_t paren = text.find('(');
    if (paren == std::string_view::npos || text.back() != ')') {
      return Status::InvalidArgument(
          StrCat("model \"", std::string(text),
                 "\" expects markov<order>(t11;...|i1;...)"));
    }
    SIGSUB_ASSIGN_OR_RETURN(
        int64_t order, ParseI(text.substr(6, paren - 6), "model.order"));
    std::string_view inner = text.substr(paren + 1,
                                         text.size() - paren - 2);
    std::string_view transitions_part = inner;
    std::string_view initial_part;
    size_t bar = inner.find('|');
    if (bar != std::string_view::npos) {
      transitions_part = inner.substr(0, bar);
      initial_part = inner.substr(bar + 1);
    }
    SIGSUB_ASSIGN_OR_RETURN(
        std::vector<double> transitions,
        SplitF(transitions_part, ';', "model.transitions"));
    std::vector<double> initial;
    if (bar != std::string_view::npos) {
      SIGSUB_ASSIGN_OR_RETURN(initial,
                              SplitF(initial_part, ';', "model.initial"));
    }
    ModelSpec spec = ModelSpec::Markov(std::move(transitions),
                                       std::move(initial));
    spec.order = static_cast<int>(order);
    return spec;
  }
  return Status::InvalidArgument(
      StrCat("unknown model \"", std::string(text),
             "\" (expected uniform, probs(...), or markov<order>(...))"));
}

// ------------------------------------------------- field emission order
//
// One list of (key, value) pairs per spec, shared by the compact and JSON
// writers so the two forms can never disagree on content or order. All
// values are bare numbers, valid verbatim in both forms; the model is
// spelled separately per form (FormatModel / FormatModelJson).

std::vector<std::pair<std::string, std::string>> RequestFields(
    const QueryRequest& request) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::visit(
      Overloaded{
          [&](const MssQuery&) {},
          [&](const TopTQuery& q) { fields.emplace_back("t", FormatI(q.t)); },
          [&](const TopDisjointQuery& q) {
            fields.emplace_back("t", FormatI(q.t));
            fields.emplace_back("min_length", FormatI(q.min_length));
            fields.emplace_back("min_x2", FormatF(q.min_chi_square));
          },
          [&](const ThresholdQuery& q) {
            if (q.alpha0 >= 0.0) {
              fields.emplace_back("alpha0", FormatF(q.alpha0));
            }
            if (q.alpha_p >= 0.0) {
              fields.emplace_back("alpha_p", FormatF(q.alpha_p));
            }
            if (q.max_matches != std::numeric_limits<int64_t>::max()) {
              fields.emplace_back("max_matches", FormatI(q.max_matches));
            }
          },
          [&](const MinLengthQuery& q) {
            fields.emplace_back("min_length", FormatI(q.min_length));
          },
          [&](const LengthBoundedQuery& q) {
            fields.emplace_back("min_length", FormatI(q.min_length));
            fields.emplace_back("max_length", FormatI(q.max_length));
          },
          [&](const ArlmQuery&) {},
          [&](const AgmmQuery&) {},
          [&](const BlockedQuery& q) {
            fields.emplace_back("block_size", FormatI(q.block_size));
          },
          [&](const SubstringsQuery& q) {
            fields.emplace_back("top", FormatI(q.top));
            fields.emplace_back("min_length", FormatI(q.min_length));
            fields.emplace_back("max_length", FormatI(q.max_length));
            fields.emplace_back("min_count", FormatI(q.min_count));
            fields.emplace_back("maximal", FormatI(q.maximal ? 1 : 0));
            if (q.alpha0 >= 0.0) {
              fields.emplace_back("alpha0", FormatF(q.alpha0));
            }
            if (q.alpha_p >= 0.0) {
              fields.emplace_back("alpha_p", FormatF(q.alpha_p));
            }
          },
      },
      request);
  return fields;
}

// ------------------------------------------------------- field parsing

QueryRequest DefaultRequestFor(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMss:
      return MssQuery{};
    case QueryKind::kTopT:
      return TopTQuery{};
    case QueryKind::kTopDisjoint:
      return TopDisjointQuery{};
    case QueryKind::kThreshold:
      return ThresholdQuery{};
    case QueryKind::kMinLength:
      return MinLengthQuery{};
    case QueryKind::kLengthBounded:
      return LengthBoundedQuery{};
    case QueryKind::kArlm:
      return ArlmQuery{};
    case QueryKind::kAgmm:
      return AgmmQuery{};
    case QueryKind::kBlocked:
      return BlockedQuery{};
    case QueryKind::kSubstrings:
      return SubstringsQuery{};
  }
  return MssQuery{};
}

/// Applies one `key=value` field to the request. Unknown keys are an
/// error that names both the key and the kind.
Status ApplyField(QueryRequest* request, std::string_view key,
                  std::string_view value) {
  auto unknown = [&]() {
    return Status::InvalidArgument(
        StrCat("query kind \"",
               QueryKindToString(
                   static_cast<QueryKind>(request->index())),
               "\" has no field \"", std::string(key), "\""));
  };
  auto set_i = [&](int64_t* out) -> Status {
    SIGSUB_ASSIGN_OR_RETURN(*out, ParseI(value, key));
    return Status::OK();
  };
  auto set_f = [&](double* out) -> Status {
    SIGSUB_ASSIGN_OR_RETURN(*out, ParseF(value, key));
    return Status::OK();
  };
  return std::visit(
      Overloaded{
          [&](MssQuery&) { return unknown(); },
          [&](TopTQuery& q) {
            if (key == "t") return set_i(&q.t);
            return unknown();
          },
          [&](TopDisjointQuery& q) {
            if (key == "t") return set_i(&q.t);
            if (key == "min_length") return set_i(&q.min_length);
            if (key == "min_x2") return set_f(&q.min_chi_square);
            return unknown();
          },
          [&](ThresholdQuery& q) {
            if (key == "alpha0") return set_f(&q.alpha0);
            if (key == "alpha_p") return set_f(&q.alpha_p);
            if (key == "max_matches") return set_i(&q.max_matches);
            return unknown();
          },
          [&](MinLengthQuery& q) {
            if (key == "min_length") return set_i(&q.min_length);
            return unknown();
          },
          [&](LengthBoundedQuery& q) {
            if (key == "min_length") return set_i(&q.min_length);
            if (key == "max_length") return set_i(&q.max_length);
            return unknown();
          },
          [&](ArlmQuery&) { return unknown(); },
          [&](AgmmQuery&) { return unknown(); },
          [&](BlockedQuery& q) {
            if (key == "block_size") return set_i(&q.block_size);
            return unknown();
          },
          [&](SubstringsQuery& q) {
            if (key == "top") return set_i(&q.top);
            if (key == "min_length") return set_i(&q.min_length);
            if (key == "max_length") return set_i(&q.max_length);
            if (key == "min_count") return set_i(&q.min_count);
            if (key == "maximal") {
              // Strictly 0 or 1: a canonical form must not accept a
              // family of spellings for one flag value.
              int64_t flag = 0;
              Status status = set_i(&flag);
              if (!status.ok()) return status;
              if (flag != 0 && flag != 1) {
                return Status::InvalidArgument(
                    StrCat("query field maximal must be 0 or 1, got ",
                           flag));
              }
              q.maximal = flag == 1;
              return Status::OK();
            }
            if (key == "alpha0") return set_f(&q.alpha0);
            if (key == "alpha_p") return set_f(&q.alpha_p);
            return unknown();
          },
      },
      *request);
}

// ------------------------------------------------------- compact form

std::string FormatCompact(const QuerySpec& spec, bool include_seq) {
  std::string out(QueryKindToString(spec.kind()));
  out += ':';
  std::vector<std::string> parts;
  if (include_seq) {
    parts.push_back(StrCat("seq=", FormatI(spec.sequence_index)));
  }
  for (const auto& [key, value] : RequestFields(spec.request)) {
    parts.push_back(StrCat(key, "=", value));
  }
  parts.push_back(StrCat("model=", FormatModel(spec.model)));
  out += StrJoin(parts, ",");
  return out;
}

/// Splits the field body on commas at parenthesis depth 0, so model
/// payloads like probs(0.5;0.5) survive intact.
std::vector<std::string_view> SplitFields(std::string_view body) {
  std::vector<std::string_view> fields;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    if (body[i] == '(') ++depth;
    if (body[i] == ')') --depth;
    if (body[i] == ',' && depth == 0) {
      fields.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  fields.push_back(body.substr(start));
  return fields;
}

Result<QuerySpec> ParseCompact(std::string_view text) {
  size_t colon = text.find(':');
  std::string_view kind_name =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  SIGSUB_ASSIGN_OR_RETURN(QueryKind kind, ParseQueryKind(Trim(kind_name)));
  QuerySpec spec;
  spec.request = DefaultRequestFor(kind);
  if (colon == std::string_view::npos) return spec;

  std::set<std::string, std::less<>> seen;
  for (std::string_view field : SplitFields(text.substr(colon + 1))) {
    field = Trim(field);
    if (field.empty()) {
      return Status::InvalidArgument(
          StrCat("empty field in query \"", std::string(text), "\""));
    }
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("query field \"", std::string(field),
                 "\" is missing '='"));
    }
    std::string_view key = Trim(field.substr(0, eq));
    std::string_view value = Trim(field.substr(eq + 1));
    if (!seen.insert(std::string(key)).second) {
      return Status::InvalidArgument(
          StrCat("duplicate query field \"", std::string(key), "\""));
    }
    if (key == "seq") {
      SIGSUB_ASSIGN_OR_RETURN(spec.sequence_index, ParseI(value, "seq"));
    } else if (key == "model") {
      SIGSUB_ASSIGN_OR_RETURN(spec.model, ParseModel(value));
    } else {
      SIGSUB_RETURN_IF_ERROR(ApplyField(&spec.request, key, value));
    }
  }
  return spec;
}

// ---------------------------------------------------------- JSON form

void AppendJsonArray(std::string* out, std::span<const double> values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += FormatF(values[i]);
  }
  *out += ']';
}

std::string FormatModelJson(const ModelSpec& model) {
  switch (model.kind) {
    case ModelKind::kUniform:
      return "{\"kind\":\"uniform\"}";
    case ModelKind::kMultinomial: {
      std::string out = "{\"kind\":\"multinomial\",\"probs\":";
      AppendJsonArray(&out, model.probs);
      out += '}';
      return out;
    }
    case ModelKind::kMarkov: {
      std::string out = StrCat("{\"kind\":\"markov\",\"order\":",
                               model.order, ",\"transitions\":");
      AppendJsonArray(&out, model.transitions);
      if (!model.initial.empty()) {
        out += ",\"initial\":";
        AppendJsonArray(&out, model.initial);
      }
      out += '}';
      return out;
    }
  }
  return "{\"kind\":\"uniform\"}";
}

/// Minimal JSON value: enough for the query grammar (objects, arrays of
/// numbers, strings, numbers). Numbers keep their raw spelling so int64
/// fields parse without a double round-trip.
struct JsonValue {
  enum class Type { kString, kNumber, kArray, kObject };
  Type type = Type::kString;
  std::string text;  // kString: decoded; kNumber: raw spelling.
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()),
                                               end_(text.data() + text.size()) {}

  Result<JsonValue> Parse() {
    SIGSUB_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (p_ != end_) {
      return Status::InvalidArgument("trailing bytes after JSON query");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(StrCat("malformed JSON query: ", what));
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (p_ == end_) return Fail("unexpected end of input");
    if (*p_ == '{') return ParseObject();
    if (*p_ == '[') return ParseArray();
    if (*p_ == '"') return ParseString();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    ++p_;  // '{'
    SkipSpace();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return value;
    }
    while (true) {
      SkipSpace();
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      SIGSUB_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (p_ == end_ || *p_ != ':') return Fail("expected ':' after key");
      ++p_;
      SIGSUB_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      for (const auto& [k, unused] : value.object) {
        if (k == key.text) {
          return Fail(StrCat("duplicate key \"", key.text, "\""));
        }
      }
      value.object.emplace_back(std::move(key.text), std::move(member));
      SkipSpace();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return value;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    ++p_;  // '['
    SkipSpace();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return value;
    }
    while (true) {
      SIGSUB_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return value;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    JsonValue value;
    value.type = JsonValue::Type::kString;
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return Fail("unterminated escape");
        switch (*p_) {
          case '"':
          case '\\':
          case '/':
            value.text += *p_;
            break;
          case 'n':
            value.text += '\n';
            break;
          case 't':
            value.text += '\t';
            break;
          case 'r':
            value.text += '\r';
            break;
          default:
            return Fail(StrCat("unsupported escape \\", *p_));
        }
        ++p_;
        continue;
      }
      value.text += *p_;
      ++p_;
    }
    if (p_ == end_) return Fail("unterminated string");
    ++p_;  // closing '"'
    return value;
  }

  Result<JsonValue> ParseNumber() {
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    const char* start = p_;
    while (p_ != end_ &&
           (*p_ == '-' || *p_ == '+' || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || (*p_ >= '0' && *p_ <= '9'))) {
      ++p_;
    }
    if (p_ == start) return Fail(StrCat("unexpected character '", *p_, "'"));
    value.text.assign(start, p_);
    // Validate the spelling by round-tripping through from_chars.
    SIGSUB_RETURN_IF_ERROR(ParseF(value.text, "number").status());
    return value;
  }

  const char* p_;
  const char* end_;
};

Result<std::vector<double>> JsonDoubleArray(const JsonValue& value,
                                            std::string_view what) {
  if (value.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        StrCat("query field ", what, " expects an array of numbers"));
  }
  std::vector<double> out;
  out.reserve(value.array.size());
  for (const JsonValue& element : value.array) {
    if (element.type != JsonValue::Type::kNumber) {
      return Status::InvalidArgument(
          StrCat("query field ", what, " expects an array of numbers"));
    }
    SIGSUB_ASSIGN_OR_RETURN(double v, ParseF(element.text, what));
    out.push_back(v);
  }
  return out;
}

Result<ModelSpec> ModelFromJson(const JsonValue& value) {
  if (value.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("query field model expects an object");
  }
  const JsonValue* kind = value.Find("kind");
  if (kind == nullptr || kind->type != JsonValue::Type::kString) {
    return Status::InvalidArgument(
        "model object needs a string \"kind\" member");
  }
  auto check_members = [&](std::initializer_list<std::string_view> allowed)
      -> Status {
    for (const auto& [key, unused] : value.object) {
      bool ok = key == "kind";
      for (std::string_view name : allowed) ok = ok || key == name;
      if (!ok) {
        return Status::InvalidArgument(StrCat(
            "model kind \"", kind->text, "\" has no field \"", key, "\""));
      }
    }
    return Status::OK();
  };
  if (kind->text == "uniform") {
    SIGSUB_RETURN_IF_ERROR(check_members({}));
    return ModelSpec::Uniform();
  }
  if (kind->text == "multinomial") {
    SIGSUB_RETURN_IF_ERROR(check_members({"probs"}));
    const JsonValue* probs = value.Find("probs");
    if (probs == nullptr) {
      return Status::InvalidArgument("multinomial model needs \"probs\"");
    }
    SIGSUB_ASSIGN_OR_RETURN(std::vector<double> p,
                            JsonDoubleArray(*probs, "model.probs"));
    return ModelSpec::Multinomial(std::move(p));
  }
  if (kind->text == "markov") {
    SIGSUB_RETURN_IF_ERROR(check_members({"order", "transitions", "initial"}));
    const JsonValue* transitions = value.Find("transitions");
    if (transitions == nullptr) {
      return Status::InvalidArgument("markov model needs \"transitions\"");
    }
    SIGSUB_ASSIGN_OR_RETURN(
        std::vector<double> t,
        JsonDoubleArray(*transitions, "model.transitions"));
    std::vector<double> initial;
    if (const JsonValue* i = value.Find("initial")) {
      SIGSUB_ASSIGN_OR_RETURN(initial, JsonDoubleArray(*i, "model.initial"));
    }
    ModelSpec spec = ModelSpec::Markov(std::move(t), std::move(initial));
    if (const JsonValue* order = value.Find("order")) {
      if (order->type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("model.order expects a number");
      }
      SIGSUB_ASSIGN_OR_RETURN(int64_t o, ParseI(order->text, "model.order"));
      spec.order = static_cast<int>(o);
    }
    return spec;
  }
  return Status::InvalidArgument(
      StrCat("unknown model kind \"", kind->text,
             "\" (expected uniform, multinomial, or markov)"));
}

Result<QuerySpec> ParseJson(std::string_view text) {
  JsonParser parser(text);
  SIGSUB_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("JSON query must be an object");
  }
  const JsonValue* kind_member = root.Find("kind");
  if (kind_member == nullptr ||
      kind_member->type != JsonValue::Type::kString) {
    return Status::InvalidArgument(
        "JSON query needs a string \"kind\" member");
  }
  SIGSUB_ASSIGN_OR_RETURN(QueryKind kind, ParseQueryKind(kind_member->text));
  QuerySpec spec;
  spec.request = DefaultRequestFor(kind);
  for (const auto& [key, value] : root.object) {
    if (key == "kind") continue;
    if (key == "seq") {
      if (value.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("query field seq expects a number");
      }
      SIGSUB_ASSIGN_OR_RETURN(spec.sequence_index, ParseI(value.text, "seq"));
    } else if (key == "model") {
      SIGSUB_ASSIGN_OR_RETURN(spec.model, ModelFromJson(value));
    } else {
      if (value.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument(
            StrCat("query field ", key, " expects a number"));
      }
      SIGSUB_RETURN_IF_ERROR(ApplyField(&spec.request, key, value.text));
    }
  }
  return spec;
}

}  // namespace

std::string FormatQuery(const QuerySpec& spec) {
  return FormatCompact(spec, /*include_seq=*/true);
}

std::string FormatQueryJson(const QuerySpec& spec) {
  std::string out = StrCat("{\"kind\":\"", QueryKindToString(spec.kind()),
                           "\",\"seq\":", FormatI(spec.sequence_index));
  for (const auto& [key, value] : RequestFields(spec.request)) {
    out += StrCat(",\"", key, "\":", value);
  }
  out += ",\"model\":";
  out += FormatModelJson(spec.model);
  out += '}';
  return out;
}

Result<QuerySpec> ParseQuery(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (trimmed.front() == '{') return ParseJson(trimmed);
  return ParseCompact(trimmed);
}

std::string CanonicalQueryKey(const QuerySpec& spec) {
  return FormatCompact(spec, /*include_seq=*/false);
}

uint64_t FingerprintQuery(const QuerySpec& spec) {
  const std::string key = CanonicalQueryKey(spec);
  Fnv1a hasher;
  hasher.Update(key.data(), key.size());
  return hasher.Digest();
}

}  // namespace api
}  // namespace sigsub
