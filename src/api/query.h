#ifndef SIGSUB_API_QUERY_H_
#define SIGSUB_API_QUERY_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "core/scan_types.h"

namespace sigsub {
namespace api {

/// The typed query surface of the library: one request struct per sequence
/// kernel, a tagged `QuerySpec` union over them, a `ModelSpec` describing
/// the null model, and a `QueryResult` whose payload variant is faithful to
/// what the kernel actually computes. `QuerySpec` has a canonical
/// serialization (api/serde.h) whose bytes drive the engine's result-cache
/// fingerprints, so the serialized form, the cache identity and the typed
/// struct can never drift apart.

// ---------------------------------------------------------------- models

enum class ModelKind {
  kUniform = 0,      // Uniform multinomial over the corpus alphabet.
  kMultinomial = 1,  // Explicit probability vector.
  kMarkov = 2,       // Order-m Markov chain (m = 1 supported today).
};

/// Null model for a query, replacing the raw `std::vector<double> probs` of
/// the legacy engine::JobSpec. kUniform carries no numbers (it resolves
/// against the corpus alphabet at execution time); kMultinomial carries the
/// probability vector; kMarkov carries a row-major k×k transition matrix
/// plus an optional initial distribution (empty = uniform start).
///
/// Markov models are consumed by `mss` queries only (they run the exact
/// O(n²) Markov scan, core::FindMssMarkov); every other kernel scores the
/// multinomial X² of the paper and rejects a Markov model at validation
/// with an error naming the `model` field.
struct ModelSpec {
  ModelKind kind = ModelKind::kUniform;
  std::vector<double> probs;        // kMultinomial: k probabilities.
  int order = 1;                    // kMarkov: chain order (1 today).
  std::vector<double> transitions;  // kMarkov: row-major k*k.
  std::vector<double> initial;      // kMarkov: size k, or empty = uniform.

  static ModelSpec Uniform();
  static ModelSpec Multinomial(std::vector<double> probs);
  static ModelSpec Markov(std::vector<double> transitions,
                          std::vector<double> initial = {});

  friend bool operator==(const ModelSpec&, const ModelSpec&) = default;
};

// --------------------------------------------------------------- queries

/// One enumerator per executable sequence kernel. The first five match the
/// legacy engine::JobKind; the last four were core-only before the query
/// layer existed.
enum class QueryKind {
  kMss = 0,           // core::FindMss (Problem 1); Markov model -> FindMssMarkov.
  kTopT = 1,          // core::FindTopT (Problem 2).
  kTopDisjoint = 2,   // core::FindTopDisjoint (library extension).
  kThreshold = 3,     // core::FindAboveThreshold (Problem 3).
  kMinLength = 4,     // core::FindMssMinLength (Problem 4).
  kLengthBounded = 5, // core::FindMssLengthBounded (windowed MSS).
  kArlm = 6,          // core::FindMssArlm (PAKDD'10 local-maxima baseline).
  kAgmm = 7,          // core::FindMssAgmm (PAKDD'10 global-extrema baseline).
  kBlocked = 8,       // core::FindMssBlocked (blocking-technique exact scan).
  kSubstrings = 9,    // core::SuffixScan (all-substrings suffix-array scan).
};

/// Stable lowercase name ("mss", "topt", "disjoint", "threshold", "minlen",
/// "lenbound", "arlm", "agmm", "blocked", "substrings") — the vocabulary of
/// the CLI and of the serialized query form.
std::string_view QueryKindToString(QueryKind kind);

/// Inverse of QueryKindToString; InvalidArgument on unknown names.
Result<QueryKind> ParseQueryKind(std::string_view name);

/// Problem 1: the most significant substring. No parameters — under a
/// Markov ModelSpec this runs the Markov-statistic scan instead of the
/// multinomial skip scan.
struct MssQuery {
  friend bool operator==(const MssQuery&, const MssQuery&) = default;
};

/// Problem 2: the t highest-X² substrings, best first.
struct TopTQuery {
  int64_t t = 10;
  friend bool operator==(const TopTQuery&, const TopTQuery&) = default;
};

/// Extension: top-t pairwise-disjoint substrings.
struct TopDisjointQuery {
  int64_t t = 10;
  int64_t min_length = 1;
  double min_chi_square = 0.0;
  friend bool operator==(const TopDisjointQuery&,
                         const TopDisjointQuery&) = default;
};

/// Problem 3: every substring whose X² clears a cutoff. The cutoff can be
/// given directly (`alpha0`, an X² value) or as a per-substring p-value
/// (`alpha_p` in (0, 1), converted once at execution time via
/// stats::ChiSquaredDistribution(k-1).CriticalValue). When both are set,
/// `alpha_p` wins — a significance level is the principled spelling and
/// must not be silently overridden by a stale raw cutoff. Negative values
/// mean "unset"; at least one must be set.
struct ThresholdQuery {
  double alpha0 = -1.0;
  double alpha_p = -1.0;
  int64_t max_matches = std::numeric_limits<int64_t>::max();
  friend bool operator==(const ThresholdQuery&,
                         const ThresholdQuery&) = default;
};

/// Problem 4: MSS among substrings of length >= min_length.
struct MinLengthQuery {
  int64_t min_length = 1;
  friend bool operator==(const MinLengthQuery&,
                         const MinLengthQuery&) = default;
};

/// Windowed MSS: min_length <= length <= max_length. max_length = 0 means
/// "no upper bound" (the record's length).
struct LengthBoundedQuery {
  int64_t min_length = 1;
  int64_t max_length = 0;
  friend bool operator==(const LengthBoundedQuery&,
                         const LengthBoundedQuery&) = default;
};

/// ARLM heuristic baseline (run-boundary candidates, no guarantee).
struct ArlmQuery {
  friend bool operator==(const ArlmQuery&, const ArlmQuery&) = default;
};

/// AGMM heuristic baseline (deviation-walk extrema, no guarantee).
struct AgmmQuery {
  friend bool operator==(const AgmmQuery&, const AgmmQuery&) = default;
};

/// Blocked exact scan with a chain-cover bound per block of endpoints.
struct BlockedQuery {
  int64_t block_size = 64;
  friend bool operator==(const BlockedQuery&, const BlockedQuery&) = default;
};

/// All-substrings mining (core::SuffixScan): the `top` highest-X²
/// *distinct substrings* of the record — each with its occurrence count
/// and p-value — instead of one best interval. `maximal` keeps only
/// class-maximal substrings (every one-symbol right extension occurs
/// strictly fewer times); with maximal=0 every distinct substring is
/// enumerated, which is quadratic in the worst case, so the engine then
/// requires max_length > 0. The significance floor mirrors ThresholdQuery:
/// `alpha0` is a raw X² cutoff, `alpha_p` a per-substring p-value
/// (converted at execution; wins over alpha0 when both are set); negative
/// means unset, and with neither set every candidate qualifies. Markov
/// models are supported (the candidates' transition counts are scored with
/// the Markov X²).
struct SubstringsQuery {
  int64_t top = 10;        // 0 = report every match.
  int64_t min_length = 1;
  int64_t max_length = 0;  // 0 = unbounded.
  int64_t min_count = 2;   // Substrings occurring fewer times are skipped.
  bool maximal = true;
  double alpha0 = -1.0;
  double alpha_p = -1.0;
  friend bool operator==(const SubstringsQuery&,
                         const SubstringsQuery&) = default;
};

/// The request union. Alternative order mirrors QueryKind numerically, so
/// `request.index()` is the kind (static_asserted in query.cc).
using QueryRequest =
    std::variant<MssQuery, TopTQuery, TopDisjointQuery, ThresholdQuery,
                 MinLengthQuery, LengthBoundedQuery, ArlmQuery, AgmmQuery,
                 BlockedQuery, SubstringsQuery>;

/// One unit of work: run `request` against corpus record `sequence_index`
/// under `model`. This is the engine's native job representation; the
/// legacy engine::JobSpec lowers into it (engine/job.h).
struct QuerySpec {
  int64_t sequence_index = 0;
  ModelSpec model;
  QueryRequest request;  // Defaults to MssQuery.

  QueryKind kind() const { return static_cast<QueryKind>(request.index()); }

  friend bool operator==(const QuerySpec&, const QuerySpec&) = default;
};

// --------------------------------------------------------------- results

/// Payload of the best-substring kernels (mss, minlen, lenbound, arlm,
/// agmm, blocked): one substring, zero-length when nothing qualified.
struct BestPayload {
  core::Substring best;
  core::ScanStats stats;
};

/// Payload of the ranked kernels (topt, disjoint): substrings best-first
/// (disjoint kernels report no scan stats; the field stays zero).
struct RankedPayload {
  std::vector<core::Substring> ranked;
  core::ScanStats stats;
};

/// Payload of threshold queries: the materialized matches (possibly capped
/// by max_matches), the exact total, and the best match (valid iff
/// match_count > 0).
struct ThresholdPayload {
  std::vector<core::Substring> matches;
  int64_t match_count = 0;
  core::Substring best;
  core::ScanStats stats;
};

/// Payload of substrings queries: one entry per reported distinct
/// substring in the suffix scan's total order (X² descending, then length
/// ascending, then text ascending). `counts[i]` / `p_values[i]` parallel
/// `ranked[i]` — each ranked entry is a representative occurrence (its
/// smallest start), the count is the class occurrence count corpus-wide in
/// the record. `match_count` is the exact number of candidates that passed
/// the filters (>= ranked.size(); the excess was cut by `top`).
struct SubstringsPayload {
  std::vector<core::Substring> ranked;
  std::vector<int64_t> counts;
  std::vector<double> p_values;
  int64_t match_count = 0;
  core::ScanStats stats;
};

/// Outcome of one query. The payload alternative is determined by the
/// query's kind; `best()`/`substrings()`/`stats()` give shape-independent
/// access for tabular consumers.
struct QueryResult {
  int64_t query_index = 0;     // Position in the submitted batch.
  int64_t sequence_index = 0;  // Echo of the spec.
  QueryKind kind = QueryKind::kMss;
  bool cache_hit = false;
  std::variant<BestPayload, RankedPayload, ThresholdPayload,
               SubstringsPayload>
      payload;

  /// The highest-X² substring of any payload (zero-length when none).
  const core::Substring& best() const;
  /// Every materialized substring: {best} / ranked / matches. The
  /// best-substring kernels return an empty span when nothing qualified.
  std::span<const core::Substring> substrings() const;
  /// Scan statistics (zero for cache hits and for kernels that report
  /// none).
  const core::ScanStats& stats() const;
  /// Threshold and substrings queries: the exact match total. Other
  /// kinds: the number of materialized substrings.
  int64_t match_count() const;
};

}  // namespace api
}  // namespace sigsub

#endif  // SIGSUB_API_QUERY_H_
