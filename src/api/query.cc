#include "api/query.h"

#include <utility>

#include "common/str_util.h"

namespace sigsub {
namespace api {

// QueryKind doubles as the variant index; keep the two in lockstep.
static_assert(std::is_same_v<std::variant_alternative_t<0, QueryRequest>,
                             MssQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<1, QueryRequest>,
                             TopTQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<2, QueryRequest>,
                             TopDisjointQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<3, QueryRequest>,
                             ThresholdQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<4, QueryRequest>,
                             MinLengthQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<5, QueryRequest>,
                             LengthBoundedQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<6, QueryRequest>,
                             ArlmQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<7, QueryRequest>,
                             AgmmQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<8, QueryRequest>,
                             BlockedQuery>);
static_assert(std::is_same_v<std::variant_alternative_t<9, QueryRequest>,
                             SubstringsQuery>);

ModelSpec ModelSpec::Uniform() { return ModelSpec{}; }

ModelSpec ModelSpec::Multinomial(std::vector<double> probs) {
  ModelSpec spec;
  spec.kind = ModelKind::kMultinomial;
  spec.probs = std::move(probs);
  return spec;
}

ModelSpec ModelSpec::Markov(std::vector<double> transitions,
                            std::vector<double> initial) {
  ModelSpec spec;
  spec.kind = ModelKind::kMarkov;
  spec.order = 1;
  spec.transitions = std::move(transitions);
  spec.initial = std::move(initial);
  return spec;
}

std::string_view QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMss:
      return "mss";
    case QueryKind::kTopT:
      return "topt";
    case QueryKind::kTopDisjoint:
      return "disjoint";
    case QueryKind::kThreshold:
      return "threshold";
    case QueryKind::kMinLength:
      return "minlen";
    case QueryKind::kLengthBounded:
      return "lenbound";
    case QueryKind::kArlm:
      return "arlm";
    case QueryKind::kAgmm:
      return "agmm";
    case QueryKind::kBlocked:
      return "blocked";
    case QueryKind::kSubstrings:
      return "substrings";
  }
  return "unknown";
}

Result<QueryKind> ParseQueryKind(std::string_view name) {
  for (QueryKind kind :
       {QueryKind::kMss, QueryKind::kTopT, QueryKind::kTopDisjoint,
        QueryKind::kThreshold, QueryKind::kMinLength, QueryKind::kLengthBounded,
        QueryKind::kArlm, QueryKind::kAgmm, QueryKind::kBlocked,
        QueryKind::kSubstrings}) {
    if (name == QueryKindToString(kind)) return kind;
  }
  return Status::InvalidArgument(
      StrCat("unknown query kind \"", std::string(name),
             "\" (expected mss|topt|disjoint|threshold|minlen|lenbound|"
             "arlm|agmm|blocked|substrings)"));
}

namespace {
const core::Substring kEmptySubstring{};
const core::ScanStats kEmptyStats{};
}  // namespace

const core::Substring& QueryResult::best() const {
  if (const auto* b = std::get_if<BestPayload>(&payload)) return b->best;
  if (const auto* r = std::get_if<RankedPayload>(&payload)) {
    return r->ranked.empty() ? kEmptySubstring : r->ranked.front();
  }
  if (const auto* s = std::get_if<SubstringsPayload>(&payload)) {
    return s->ranked.empty() ? kEmptySubstring : s->ranked.front();
  }
  const auto& t = std::get<ThresholdPayload>(payload);
  return t.match_count > 0 ? t.best : kEmptySubstring;
}

std::span<const core::Substring> QueryResult::substrings() const {
  if (const auto* b = std::get_if<BestPayload>(&payload)) {
    return b->best.length() > 0 ? std::span<const core::Substring>(&b->best, 1)
                                : std::span<const core::Substring>();
  }
  if (const auto* r = std::get_if<RankedPayload>(&payload)) return r->ranked;
  if (const auto* s = std::get_if<SubstringsPayload>(&payload)) {
    return s->ranked;
  }
  return std::get<ThresholdPayload>(payload).matches;
}

const core::ScanStats& QueryResult::stats() const {
  if (const auto* b = std::get_if<BestPayload>(&payload)) return b->stats;
  if (const auto* r = std::get_if<RankedPayload>(&payload)) return r->stats;
  if (const auto* s = std::get_if<SubstringsPayload>(&payload)) {
    return s->stats;
  }
  return std::get<ThresholdPayload>(payload).stats;
}

int64_t QueryResult::match_count() const {
  if (const auto* t = std::get_if<ThresholdPayload>(&payload)) {
    return t->match_count;
  }
  if (const auto* s = std::get_if<SubstringsPayload>(&payload)) {
    return s->match_count;
  }
  return static_cast<int64_t>(substrings().size());
}

}  // namespace api
}  // namespace sigsub
