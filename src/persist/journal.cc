#include "persist/journal.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "persist/format.h"

namespace sigsub {
namespace persist {
namespace {

// Caps a CREATE's probability vector and an APPEND's symbol chunk far
// above anything legitimate; a corrupt count field fails by name
// instead of driving a giant loop.
constexpr uint32_t kMaxProbs = 1u << 16;

Status Truncated(std::string_view what) {
  return Status::FailedPrecondition(
      StrCat("journal record truncated at ", what));
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text) {
  if (text == "none") return FsyncPolicy::kNone;
  if (text == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument(
      StrCat("fsync policy must be none|always, got \"", std::string(text),
             "\""));
}

std::string_view FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone:
      return "none";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "always";
}

std::string EncodeJournalRecord(const JournalRecord& record) {
  BinaryWriter writer;
  writer.PutU64(record.lsn);
  writer.PutU8(static_cast<uint8_t>(record.op));
  writer.PutString(record.stream);
  switch (record.op) {
    case JournalOp::kCreate:
      writer.PutU32(static_cast<uint32_t>(record.probs.size()));
      for (double p : record.probs) writer.PutDouble(p);
      writer.PutI64(record.options.max_window);
      writer.PutDouble(record.options.alpha);
      writer.PutDouble(record.options.x2_threshold);
      writer.PutDouble(record.options.rearm_fraction);
      writer.PutU8(static_cast<uint8_t>(record.options.x2_dispatch));
      break;
    case JournalOp::kAppend:
      writer.PutBytes(record.symbols);
      break;
    case JournalOp::kClose:
      break;
  }
  return writer.Take();
}

Result<JournalRecord> DecodeJournalRecord(std::span<const uint8_t> bytes) {
  BinaryReader reader(bytes);
  JournalRecord record;
  uint8_t op = 0;
  if (!reader.GetU64(&record.lsn)) return Truncated("lsn");
  if (!reader.GetU8(&op)) return Truncated("op");
  if (op < static_cast<uint8_t>(JournalOp::kCreate) ||
      op > static_cast<uint8_t>(JournalOp::kClose)) {
    return Status::FailedPrecondition(
        StrCat("journal record has unknown op ", static_cast<int>(op)));
  }
  record.op = static_cast<JournalOp>(op);
  if (!reader.GetString(&record.stream)) return Truncated("stream name");
  switch (record.op) {
    case JournalOp::kCreate: {
      uint32_t probs = 0;
      if (!reader.GetU32(&probs)) return Truncated("model size");
      if (probs > kMaxProbs) {
        return Status::FailedPrecondition(
            StrCat("journal CREATE claims ", probs, " probabilities"));
      }
      record.probs.resize(probs);
      for (uint32_t i = 0; i < probs; ++i) {
        if (!reader.GetDouble(&record.probs[i])) return Truncated("model");
      }
      uint8_t dispatch = 0;
      if (!reader.GetI64(&record.options.max_window) ||
          !reader.GetDouble(&record.options.alpha) ||
          !reader.GetDouble(&record.options.x2_threshold) ||
          !reader.GetDouble(&record.options.rearm_fraction) ||
          !reader.GetU8(&dispatch)) {
        return Truncated("detector options");
      }
      if (dispatch > static_cast<uint8_t>(core::X2Dispatch::kSimd)) {
        return Status::FailedPrecondition(
            StrCat("journal CREATE has unknown dispatch ",
                   static_cast<int>(dispatch)));
      }
      record.options.x2_dispatch = static_cast<core::X2Dispatch>(dispatch);
      break;
    }
    case JournalOp::kAppend:
      if (!reader.GetBytes(&record.symbols)) return Truncated("symbols");
      break;
    case JournalOp::kClose:
      break;
  }
  if (!reader.exhausted()) {
    return Status::FailedPrecondition(
        StrCat("journal record has ", reader.remaining(),
               " trailing bytes"));
  }
  return record;
}

Result<JournalReplay> ParseJournal(std::span<const uint8_t> bytes) {
  SIGSUB_ASSIGN_OR_RETURN(
      size_t header_size,
      CheckFileHeader(bytes, FileKind::kJournal,
                      /*require_fingerprint=*/false));
  JournalReplay replay;
  FrameParser parser(bytes, header_size);
  replay.valid_bytes = parser.offset();
  for (;;) {
    std::span<const uint8_t> payload;
    FrameStatus status = parser.Next(&payload);
    if (status != FrameStatus::kOk) break;
    Result<JournalRecord> record = DecodeJournalRecord(payload);
    // A CRC-valid frame holding a malformed record is still a bad tail:
    // stop replay here, exactly as for a torn frame.
    if (!record.ok()) break;
    if (record->lsn < replay.next_lsn) break;  // LSNs must increase.
    replay.next_lsn = record->lsn + 1;
    replay.records.push_back(*std::move(record));
    replay.valid_bytes = parser.offset();
  }
  replay.truncated_bytes = bytes.size() - replay.valid_bytes;
  return replay;
}

Result<Journal> Journal::Open(std::string path, FsyncPolicy policy,
                              JournalReplay* replay) {
  Result<std::string> existing = ReadFileToString(path);
  if (!existing.ok() && existing.status().code() != StatusCode::kNotFound) {
    return std::move(existing).status();
  }

  JournalReplay parsed;
  bool fresh = !existing.ok() || existing->empty();
  if (!fresh) {
    SIGSUB_ASSIGN_OR_RETURN(parsed, ParseJournal(BytesOf(*existing)));
  }

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::IOError(
        StrCat("open(", path, "): ", std::strerror(errno)));
  }

  if (fresh) {
    std::string header = EncodeFileHeader(FileKind::kJournal);
    Status written = WriteFdAll(fd, header);
    if (written.ok() && RawFsync(fd) != 0) {
      written = Status::IOError(
          StrCat("fsync(", path, "): ", std::strerror(errno)));
    }
    if (!written.ok()) {
      ::close(fd);
      return written;
    }
    parsed.valid_bytes = header.size();
  } else if (parsed.truncated_bytes > 0) {
    // Drop the torn tail physically so the next crash-free append
    // starts at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(parsed.valid_bytes)) != 0) {
      Status status = Status::IOError(
          StrCat("ftruncate(", path, "): ", std::strerror(errno)));
      ::close(fd);
      return status;
    }
  }

  if (replay != nullptr) *replay = parsed;
  return Journal(std::move(path), fd, policy, parsed.next_lsn,
                 parsed.valid_bytes);
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      policy_(other.policy_),
      next_lsn_(other.next_lsn_),
      good_offset_(other.good_offset_),
      broken_(other.broken_) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    policy_ = other.policy_;
    next_lsn_ = other.next_lsn_;
    good_offset_ = other.good_offset_;
    broken_ = other.broken_;
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> Journal::Append(JournalRecord record) {
  if (broken_) {
    return Status::FailedPrecondition(
        StrCat("journal ", path_, " is broken after an unrecoverable "
                                  "write error; restart to recover"));
  }
  record.lsn = next_lsn_;
  std::string frame;
  AppendFrame(&frame, EncodeJournalRecord(record));
  Status written = WriteFdAll(fd_, frame);
  if (written.ok() && policy_ == FsyncPolicy::kAlways &&
      RawFsync(fd_) != 0) {
    written = Status::IOError(
        StrCat("fsync(", path_, "): ", std::strerror(errno)));
    // The bytes are in the page cache but their durability is unknown;
    // after a failed fsync no later fsync can be trusted to cover them
    // (the kernel may have dropped the dirty pages). Fail closed.
    broken_ = true;
    return written;
  }
  if (!written.ok()) {
    // A partial record may be on disk. Cut back to the last record
    // boundary so the file stays parseable for the ops already
    // acknowledged; if the cut fails too, refuse all further appends —
    // anything written after garbage would be unreachable at replay.
    if (::ftruncate(fd_, static_cast<off_t>(good_offset_)) != 0) {
      broken_ = true;
    }
    return written;
  }
  good_offset_ += frame.size();
  ++next_lsn_;
  return record.lsn;
}

Status Journal::Reset() {
  if (broken_) {
    return Status::FailedPrecondition(
        StrCat("journal ", path_, " is broken; cannot reset"));
  }
  const size_t header_size = EncodeFileHeader(FileKind::kJournal).size();
  if (::ftruncate(fd_, static_cast<off_t>(header_size)) != 0) {
    return Status::IOError(
        StrCat("ftruncate(", path_, "): ", std::strerror(errno)));
  }
  if (policy_ == FsyncPolicy::kAlways && RawFsync(fd_) != 0) {
    return Status::IOError(
        StrCat("fsync(", path_, "): ", std::strerror(errno)));
  }
  good_offset_ = header_size;
  return Status::OK();
}

}  // namespace persist
}  // namespace sigsub
