#ifndef SIGSUB_PERSIST_STATE_STORE_H_
#define SIGSUB_PERSIST_STATE_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/result_cache.h"
#include "engine/stream_manager.h"
#include "persist/journal.h"
#include "persist/snapshot.h"

namespace sigsub {
namespace persist {

struct StateStoreOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Milliseconds between periodic snapshots (each snapshot truncates
  /// the journal); <= 0 disables the timer, leaving only explicit
  /// Snapshot() calls (the server still snapshots on drain).
  int64_t snapshot_interval_ms = 30000;
};

/// What recovery found and did. The server logs this at startup.
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;
  int64_t streams_restored = 0;        // From the snapshot.
  int64_t journal_records_applied = 0;
  int64_t journal_records_skipped = 0;  // LSN <= snapshot (already in it).
  int64_t journal_records_failed = 0;   // Deterministic op failures.
  int64_t journal_bytes_truncated = 0;  // Torn tail dropped on open.
  int64_t cache_entries_loaded = 0;
  bool cache_discarded = false;  // Present but wrong build/corrupt.
};

/// The durability orchestrator tying journal + snapshot + cache store
/// to one state directory:
///
///   <dir>/journal.wal     write-ahead journal (Journal)
///   <dir>/snapshot.bin    latest point-in-time snapshot (atomic)
///   <dir>/cache.bin       persistent result cache (fingerprint-gated)
///
/// Ordering contract (why acknowledged state is never lost and failed
/// state is never invented): the caller journals an op via Record*()
/// BEFORE applying it to the StreamManager and only acknowledges after
/// both succeed. A Record*() failure means the op was never applied —
/// the client sees EPERSIST and in-memory state still matches what
/// recovery would rebuild. A crash after Record*() but before the
/// acknowledgment replays the op on restart: it was a real client
/// request, merely unconfirmed — at-least-once, never invented.
///
/// Threading: Record*/Snapshot/MaybeSnapshot are NOT thread-safe; the
/// server calls them from the executor thread only, which also owns
/// all stream mutations — that single-ownership is what makes the
/// exported snapshot a consistent point in time.
class StateStore {
 public:
  /// Opens (creating) `state_dir`, loads the snapshot (NotFound = cold
  /// start; corruption = named error, nothing restored), opens the
  /// journal (truncating any torn tail), replays the journal records
  /// past the snapshot's LSN into `*streams`, and loads the cache file
  /// into `*cache` when non-null (wrong-build caches discard quietly
  /// into `recovery->cache_discarded`). On success the journal is
  /// positioned for append and `*recovery` describes what happened.
  static Result<StateStore> Open(std::string state_dir,
                                 StateStoreOptions options,
                                 engine::StreamManager* streams,
                                 engine::ResultCache* cache,
                                 RecoveryStats* recovery);

  StateStore(StateStore&&) = default;
  StateStore& operator=(StateStore&&) = default;

  /// Journal one op before applying it (see the ordering contract).
  Status RecordCreate(const std::string& name,
                      const std::vector<double>& probs,
                      const core::StreamingDetector::Options& options);
  Status RecordAppend(const std::string& name,
                      std::span<const uint8_t> symbols);
  Status RecordClose(const std::string& name);

  /// Writes a point-in-time snapshot of `streams` (and `cache` when
  /// non-null), then truncates the journal. The caller must guarantee
  /// no stream mutations are in flight.
  Status Snapshot(const engine::StreamManager& streams,
                  const engine::ResultCache* cache);

  /// Snapshot() once snapshot_interval_ms has elapsed since the last
  /// one (or since Open); otherwise a cheap no-op.
  Status MaybeSnapshot(const engine::StreamManager& streams,
                       const engine::ResultCache* cache);

  uint64_t last_lsn() const { return journal_->last_lsn(); }
  const std::string& state_dir() const { return state_dir_; }

  static std::string JournalPath(const std::string& state_dir);
  static std::string SnapshotPath(const std::string& state_dir);
  static std::string CachePath(const std::string& state_dir);

 private:
  StateStore(std::string state_dir, StateStoreOptions options,
             Journal journal);

  std::string state_dir_;
  StateStoreOptions options_;
  /// optional<> only for move-assignability; engaged for the life of
  /// the store.
  std::optional<Journal> journal_;
  int64_t last_snapshot_ms_ = 0;
};

}  // namespace persist
}  // namespace sigsub

#endif  // SIGSUB_PERSIST_STATE_STORE_H_
