#include "persist/state_store.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/stat.h>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "persist/cache_store.h"

namespace sigsub {
namespace persist {
namespace {

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError(
      StrCat("mkdir(", path, "): ", std::strerror(errno)));
}

}  // namespace

std::string StateStore::JournalPath(const std::string& state_dir) {
  return StrCat(state_dir, "/journal.wal");
}

std::string StateStore::SnapshotPath(const std::string& state_dir) {
  return StrCat(state_dir, "/snapshot.bin");
}

std::string StateStore::CachePath(const std::string& state_dir) {
  return StrCat(state_dir, "/cache.bin");
}

StateStore::StateStore(std::string state_dir, StateStoreOptions options,
                       Journal journal)
    : state_dir_(std::move(state_dir)),
      options_(options),
      journal_(std::move(journal)),
      last_snapshot_ms_(MonotonicMillis()) {}

Result<StateStore> StateStore::Open(std::string state_dir,
                                    StateStoreOptions options,
                                    engine::StreamManager* streams,
                                    engine::ResultCache* cache,
                                    RecoveryStats* recovery) {
  RecoveryStats stats;
  SIGSUB_RETURN_IF_ERROR(EnsureDir(state_dir));

  // 1. Snapshot: the recovery baseline. Absence is a cold start;
  // damage is a named failure before any state is touched.
  uint64_t snapshot_lsn = 0;
  Result<SnapshotData> snapshot = ReadSnapshotFile(SnapshotPath(state_dir));
  if (snapshot.ok()) {
    stats.snapshot_loaded = true;
    snapshot_lsn = snapshot->last_lsn;
    stats.snapshot_lsn = snapshot_lsn;
    for (const engine::PersistedStream& stream : snapshot->streams) {
      Status restored = streams->RestoreStream(stream);
      if (!restored.ok()) {
        // A snapshot that decodes but fails semantic validation is as
        // corrupt as a bad checksum: refuse to start with partial
        // state rather than silently present a subset of streams.
        for (const engine::PersistedStream& undo : snapshot->streams) {
          (void)streams->CloseStream(undo.name);
        }
        return Status::FailedPrecondition(
            StrCat("snapshot ", SnapshotPath(state_dir),
                   ": ", restored.message()));
      }
      ++stats.streams_restored;
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return std::move(snapshot).status();
  }

  // 2. Journal: truncate the torn tail, then replay everything newer
  // than the snapshot. Re-applying an op can fail only the way it
  // failed (or would have failed) originally — CREATE of a name the
  // snapshot already holds, APPEND to a stream closed later in the
  // journal — so failures are counted, not fatal.
  JournalReplay replay;
  SIGSUB_ASSIGN_OR_RETURN(
      Journal journal,
      Journal::Open(JournalPath(state_dir), options.fsync_policy, &replay));
  stats.journal_bytes_truncated =
      static_cast<int64_t>(replay.truncated_bytes);
  for (const JournalRecord& record : replay.records) {
    if (record.lsn <= snapshot_lsn) {
      ++stats.journal_records_skipped;
      continue;
    }
    Status applied = Status::OK();
    switch (record.op) {
      case JournalOp::kCreate:
        applied = streams->CreateStream(record.stream, record.probs,
                                        record.options);
        break;
      case JournalOp::kAppend: {
        Result<int64_t> alarms =
            streams->Append(record.stream, record.symbols);
        if (!alarms.ok()) applied = std::move(alarms).status();
        break;
      }
      case JournalOp::kClose:
        applied = streams->CloseStream(record.stream);
        break;
    }
    if (applied.ok()) {
      ++stats.journal_records_applied;
    } else {
      ++stats.journal_records_failed;
    }
  }

  // 3. Result cache: best-effort warm start. A cache from another
  // build (or damaged) is discarded by name in the stats — correctness
  // never depends on it.
  if (cache != nullptr) {
    Result<int64_t> loaded =
        LoadResultCacheFile(CachePath(state_dir), cache);
    if (loaded.ok()) {
      stats.cache_entries_loaded = *loaded;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      stats.cache_discarded = true;
    }
  }

  if (recovery != nullptr) *recovery = stats;
  return StateStore(std::move(state_dir), options, std::move(journal));
}

Status StateStore::RecordCreate(
    const std::string& name, const std::vector<double>& probs,
    const core::StreamingDetector::Options& options) {
  JournalRecord record;
  record.op = JournalOp::kCreate;
  record.stream = name;
  record.probs = probs;
  record.options = options;
  return std::move(journal_->Append(std::move(record))).status();
}

Status StateStore::RecordAppend(const std::string& name,
                                std::span<const uint8_t> symbols) {
  JournalRecord record;
  record.op = JournalOp::kAppend;
  record.stream = name;
  record.symbols.assign(symbols.begin(), symbols.end());
  return std::move(journal_->Append(std::move(record))).status();
}

Status StateStore::RecordClose(const std::string& name) {
  JournalRecord record;
  record.op = JournalOp::kClose;
  record.stream = name;
  return std::move(journal_->Append(std::move(record))).status();
}

Status StateStore::Snapshot(const engine::StreamManager& streams,
                            const engine::ResultCache* cache) {
  SnapshotData snapshot;
  snapshot.last_lsn = journal_->last_lsn();
  snapshot.streams = streams.ExportStreams();
  SIGSUB_RETURN_IF_ERROR(
      WriteSnapshotFile(SnapshotPath(state_dir_), snapshot));
  // Only after the snapshot is durably in place do its records become
  // redundant. A crash between the two leaves snapshot + full journal;
  // replay skips by LSN, so nothing is applied twice.
  SIGSUB_RETURN_IF_ERROR(journal_->Reset());
  if (cache != nullptr) {
    SIGSUB_RETURN_IF_ERROR(
        SaveResultCacheFile(CachePath(state_dir_), *cache));
  }
  return Status::OK();
}

Status StateStore::MaybeSnapshot(const engine::StreamManager& streams,
                                 const engine::ResultCache* cache) {
  if (options_.snapshot_interval_ms <= 0) return Status::OK();
  const int64_t now = MonotonicMillis();
  if (now - last_snapshot_ms_ < options_.snapshot_interval_ms) {
    return Status::OK();
  }
  // Stamp before attempting: a snapshot failing on a full disk must
  // not retry at every executor slice.
  last_snapshot_ms_ = now;
  return Snapshot(streams, cache);
}

}  // namespace persist
}  // namespace sigsub
