#include "persist/cache_store.h"

#include <algorithm>
#include <utility>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "persist/format.h"

namespace sigsub {
namespace persist {
namespace {

constexpr uint32_t kMaxEntries = 1u << 20;

Status Truncated(std::string_view what) {
  return Status::FailedPrecondition(
      StrCat("result cache truncated at ", what));
}

void EncodeSubstring(BinaryWriter* writer, const core::Substring& s) {
  writer->PutI64(s.start);
  writer->PutI64(s.end);
  writer->PutDouble(s.chi_square);
}

bool DecodeSubstring(BinaryReader* reader, core::Substring* s) {
  return reader->GetI64(&s->start) && reader->GetI64(&s->end) &&
         reader->GetDouble(&s->chi_square);
}

}  // namespace

std::string EncodeResultCache(
    const std::vector<engine::CacheEntry>& entries) {
  BinaryWriter payload;
  payload.PutU32(static_cast<uint32_t>(entries.size()));
  for (const engine::CacheEntry& entry : entries) {
    payload.PutU64(entry.key.sequence_fp);
    payload.PutU64(entry.key.query_fp);
    payload.PutU32(static_cast<uint32_t>(entry.value.substrings.size()));
    for (const core::Substring& s : entry.value.substrings) {
      EncodeSubstring(&payload, s);
    }
    // Substrings-query entries carry per-substring counts and p-values
    // (empty for every other kind). Encoded with their own lengths so the
    // decoder needs no knowledge of which kind produced the entry.
    payload.PutU32(static_cast<uint32_t>(entry.value.counts.size()));
    for (int64_t count : entry.value.counts) payload.PutI64(count);
    payload.PutU32(static_cast<uint32_t>(entry.value.p_values.size()));
    for (double p : entry.value.p_values) payload.PutDouble(p);
    EncodeSubstring(&payload, entry.value.best);
    payload.PutI64(entry.value.match_count);
  }
  std::string out = EncodeFileHeader(FileKind::kResultCache);
  AppendFrame(&out, payload.bytes());
  return out;
}

Result<std::vector<engine::CacheEntry>> DecodeResultCache(
    std::span<const uint8_t> bytes) {
  SIGSUB_ASSIGN_OR_RETURN(
      size_t header_size,
      CheckFileHeader(bytes, FileKind::kResultCache,
                      /*require_fingerprint=*/true));
  FrameParser parser(bytes, header_size);
  std::span<const uint8_t> payload;
  switch (parser.Next(&payload)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kEnd:
      return Status::FailedPrecondition(
          "result cache has no payload frame");
    case FrameStatus::kTorn:
      return Status::FailedPrecondition("result cache payload truncated");
    case FrameStatus::kCorrupt:
      return Status::FailedPrecondition("result cache checksum mismatch");
  }

  BinaryReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetU32(&count)) return Truncated("entry count");
  if (count > kMaxEntries) {
    return Status::FailedPrecondition(
        StrCat("result cache claims ", count, " entries"));
  }
  std::vector<engine::CacheEntry> entries;
  entries.reserve(std::min<size_t>(count, reader.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    engine::CacheEntry entry;
    if (!reader.GetU64(&entry.key.sequence_fp) ||
        !reader.GetU64(&entry.key.query_fp)) {
      return Truncated("cache key");
    }
    uint32_t substrings = 0;
    if (!reader.GetU32(&substrings)) return Truncated("substring count");
    if (static_cast<size_t>(substrings) > reader.remaining() / 24) {
      return Status::FailedPrecondition(
          StrCat("result cache entry claims ", substrings,
                 " substrings with only ", reader.remaining(),
                 " bytes left"));
    }
    entry.value.substrings.resize(substrings);
    for (uint32_t j = 0; j < substrings; ++j) {
      if (!DecodeSubstring(&reader, &entry.value.substrings[j])) {
        return Truncated("substrings");
      }
    }
    uint32_t counts = 0;
    if (!reader.GetU32(&counts)) return Truncated("count count");
    if (static_cast<size_t>(counts) > reader.remaining() / 8) {
      return Status::FailedPrecondition(
          StrCat("result cache entry claims ", counts, " counts with only ",
                 reader.remaining(), " bytes left"));
    }
    entry.value.counts.resize(counts);
    for (uint32_t j = 0; j < counts; ++j) {
      if (!reader.GetI64(&entry.value.counts[j])) return Truncated("counts");
    }
    uint32_t p_values = 0;
    if (!reader.GetU32(&p_values)) return Truncated("p-value count");
    if (static_cast<size_t>(p_values) > reader.remaining() / 8) {
      return Status::FailedPrecondition(
          StrCat("result cache entry claims ", p_values,
                 " p-values with only ", reader.remaining(), " bytes left"));
    }
    entry.value.p_values.resize(p_values);
    for (uint32_t j = 0; j < p_values; ++j) {
      if (!reader.GetDouble(&entry.value.p_values[j])) {
        return Truncated("p-values");
      }
    }
    if (!DecodeSubstring(&reader, &entry.value.best) ||
        !reader.GetI64(&entry.value.match_count)) {
      return Truncated("entry summary");
    }
    entries.push_back(std::move(entry));
  }
  if (!reader.exhausted()) {
    return Status::FailedPrecondition(
        StrCat("result cache has ", reader.remaining(), " trailing bytes"));
  }
  return entries;
}

Status SaveResultCacheFile(const std::string& path,
                           const engine::ResultCache& cache) {
  return AtomicWriteFile(path, EncodeResultCache(cache.Export()));
}

Result<int64_t> LoadResultCacheFile(const std::string& path,
                                    engine::ResultCache* cache) {
  SIGSUB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  Result<std::vector<engine::CacheEntry>> entries =
      DecodeResultCache(BytesOf(bytes));
  if (!entries.ok()) {
    return Status::FailedPrecondition(
        StrCat("result cache ", path, ": ", entries.status().message()));
  }
  cache->Import(*entries);
  return static_cast<int64_t>(
      std::min(entries->size(), cache->capacity()));
}

}  // namespace persist
}  // namespace sigsub
