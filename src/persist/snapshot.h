#ifndef SIGSUB_PERSIST_SNAPSHOT_H_
#define SIGSUB_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/stream_manager.h"

namespace sigsub {
namespace persist {

/// Point-in-time snapshots of StreamManager state: every open stream's
/// model, detector options, counter blocks, symbol ring, hysteresis
/// flags, and bounded alarm log, plus the journal LSN the snapshot
/// reflects. Snapshots are written atomically (tmp + rename, see
/// AtomicWriteFile) so a crash mid-snapshot leaves the previous one
/// intact; recovery loads the snapshot and then replays only the
/// journal records with LSN > last_lsn.
struct SnapshotData {
  /// Highest journal LSN whose effect this snapshot includes (0 for a
  /// snapshot of a journal-less or empty state).
  uint64_t last_lsn = 0;
  std::vector<engine::PersistedStream> streams;
};

/// The full snapshot file image: versioned header + one CRC frame
/// around the encoded payload.
std::string EncodeSnapshot(const SnapshotData& snapshot);

/// Parses snapshot bytes in memory. Unlike the journal, a snapshot has
/// no legitimate torn state — AtomicWriteFile guarantees all-or-nothing
/// — so any damage (bad header, bad CRC, malformed payload) is named
/// corruption, never silently partial. fuzz/persist_fuzz.cc drives this
/// with arbitrary bytes.
Result<SnapshotData> DecodeSnapshot(std::span<const uint8_t> bytes);

/// Atomically replaces the snapshot at `path`.
Status WriteSnapshotFile(const std::string& path,
                         const SnapshotData& snapshot);

/// Reads and decodes the snapshot at `path`. NotFound when the file
/// does not exist (a clean cold start); FailedPrecondition naming the
/// damage when it exists but does not decode.
Result<SnapshotData> ReadSnapshotFile(const std::string& path);

}  // namespace persist
}  // namespace sigsub

#endif  // SIGSUB_PERSIST_SNAPSHOT_H_
