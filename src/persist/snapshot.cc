#include "persist/snapshot.h"

#include <algorithm>
#include <utility>

#include "common/posix_io.h"
#include "common/str_util.h"
#include "persist/format.h"

namespace sigsub {
namespace persist {
namespace {

// Sanity caps: a corrupt count field fails by name instead of driving
// a giant decode loop. All are far above anything legitimate.
constexpr uint32_t kMaxStreams = 1u << 20;
constexpr uint32_t kMaxProbs = 1u << 16;
constexpr uint32_t kMaxAlarms = 1u << 20;

Status Truncated(std::string_view what) {
  return Status::FailedPrecondition(
      StrCat("snapshot truncated at ", what));
}

void EncodeStream(BinaryWriter* writer,
                  const engine::PersistedStream& stream) {
  writer->PutString(stream.name);
  writer->PutU32(static_cast<uint32_t>(stream.probs.size()));
  for (double p : stream.probs) writer->PutDouble(p);
  writer->PutI64(stream.options.max_window);
  writer->PutDouble(stream.options.alpha);
  writer->PutDouble(stream.options.x2_threshold);
  writer->PutDouble(stream.options.rearm_fraction);
  writer->PutU8(static_cast<uint8_t>(stream.options.x2_dispatch));
  writer->PutI64(stream.state.position);
  writer->PutI64(stream.state.alarms_raised);
  writer->PutU32(static_cast<uint32_t>(stream.state.counts.size()));
  for (int64_t count : stream.state.counts) writer->PutI64(count);
  writer->PutBytes(stream.state.in_alarm);
  writer->PutBytes(stream.state.recent);
  writer->PutU32(static_cast<uint32_t>(stream.alarms.size()));
  for (const core::StreamingDetector::Alarm& alarm : stream.alarms) {
    writer->PutI64(alarm.end);
    writer->PutI64(alarm.length);
    writer->PutDouble(alarm.chi_square);
    writer->PutDouble(alarm.p_value);
  }
  writer->PutI64(stream.alarms_dropped);
}

Result<engine::PersistedStream> DecodeStream(BinaryReader* reader) {
  engine::PersistedStream stream;
  if (!reader->GetString(&stream.name)) return Truncated("stream name");
  uint32_t probs = 0;
  if (!reader->GetU32(&probs)) return Truncated("model size");
  if (probs > kMaxProbs) {
    return Status::FailedPrecondition(
        StrCat("snapshot stream claims ", probs, " probabilities"));
  }
  stream.probs.resize(probs);
  for (uint32_t i = 0; i < probs; ++i) {
    if (!reader->GetDouble(&stream.probs[i])) return Truncated("model");
  }
  uint8_t dispatch = 0;
  if (!reader->GetI64(&stream.options.max_window) ||
      !reader->GetDouble(&stream.options.alpha) ||
      !reader->GetDouble(&stream.options.x2_threshold) ||
      !reader->GetDouble(&stream.options.rearm_fraction) ||
      !reader->GetU8(&dispatch)) {
    return Truncated("detector options");
  }
  if (dispatch > static_cast<uint8_t>(core::X2Dispatch::kSimd)) {
    return Status::FailedPrecondition(
        StrCat("snapshot stream has unknown dispatch ",
               static_cast<int>(dispatch)));
  }
  stream.options.x2_dispatch = static_cast<core::X2Dispatch>(dispatch);
  if (!reader->GetI64(&stream.state.position) ||
      !reader->GetI64(&stream.state.alarms_raised)) {
    return Truncated("detector position");
  }
  uint32_t counts = 0;
  if (!reader->GetU32(&counts)) return Truncated("counter size");
  if (static_cast<size_t>(counts) > reader->remaining() / 8) {
    return Status::FailedPrecondition(
        StrCat("snapshot stream claims ", counts, " counters with only ",
               reader->remaining(), " bytes left"));
  }
  stream.state.counts.resize(counts);
  for (uint32_t i = 0; i < counts; ++i) {
    if (!reader->GetI64(&stream.state.counts[i])) {
      return Truncated("counters");
    }
  }
  if (!reader->GetBytes(&stream.state.in_alarm)) {
    return Truncated("hysteresis flags");
  }
  if (!reader->GetBytes(&stream.state.recent)) {
    return Truncated("symbol ring");
  }
  uint32_t alarms = 0;
  if (!reader->GetU32(&alarms)) return Truncated("alarm count");
  if (alarms > kMaxAlarms) {
    return Status::FailedPrecondition(
        StrCat("snapshot stream claims ", alarms, " alarms"));
  }
  stream.alarms.resize(alarms);
  for (uint32_t i = 0; i < alarms; ++i) {
    core::StreamingDetector::Alarm& alarm = stream.alarms[i];
    if (!reader->GetI64(&alarm.end) || !reader->GetI64(&alarm.length) ||
        !reader->GetDouble(&alarm.chi_square) ||
        !reader->GetDouble(&alarm.p_value)) {
      return Truncated("alarm log");
    }
  }
  if (!reader->GetI64(&stream.alarms_dropped)) {
    return Truncated("dropped-alarm count");
  }
  return stream;
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& snapshot) {
  BinaryWriter payload;
  payload.PutU64(snapshot.last_lsn);
  payload.PutU32(static_cast<uint32_t>(snapshot.streams.size()));
  for (const engine::PersistedStream& stream : snapshot.streams) {
    EncodeStream(&payload, stream);
  }
  std::string out = EncodeFileHeader(FileKind::kSnapshot);
  AppendFrame(&out, payload.bytes());
  return out;
}

Result<SnapshotData> DecodeSnapshot(std::span<const uint8_t> bytes) {
  SIGSUB_ASSIGN_OR_RETURN(
      size_t header_size,
      CheckFileHeader(bytes, FileKind::kSnapshot,
                      /*require_fingerprint=*/false));
  FrameParser parser(bytes, header_size);
  std::span<const uint8_t> payload;
  switch (parser.Next(&payload)) {
    case FrameStatus::kOk:
      break;
    case FrameStatus::kEnd:
      return Status::FailedPrecondition("snapshot has no payload frame");
    case FrameStatus::kTorn:
      return Status::FailedPrecondition("snapshot payload truncated");
    case FrameStatus::kCorrupt:
      return Status::FailedPrecondition("snapshot checksum mismatch");
  }
  std::span<const uint8_t> rest;
  if (parser.Next(&rest) != FrameStatus::kEnd) {
    return Status::FailedPrecondition(
        "snapshot has trailing bytes after its payload frame");
  }

  BinaryReader reader(payload);
  SnapshotData snapshot;
  if (!reader.GetU64(&snapshot.last_lsn)) return Truncated("lsn");
  uint32_t streams = 0;
  if (!reader.GetU32(&streams)) return Truncated("stream count");
  if (streams > kMaxStreams) {
    return Status::FailedPrecondition(
        StrCat("snapshot claims ", streams, " streams"));
  }
  snapshot.streams.reserve(
      std::min<size_t>(streams, reader.remaining()));
  for (uint32_t i = 0; i < streams; ++i) {
    SIGSUB_ASSIGN_OR_RETURN(engine::PersistedStream stream,
                            DecodeStream(&reader));
    snapshot.streams.push_back(std::move(stream));
  }
  if (!reader.exhausted()) {
    return Status::FailedPrecondition(
        StrCat("snapshot has ", reader.remaining(), " trailing bytes"));
  }
  return snapshot;
}

Status WriteSnapshotFile(const std::string& path,
                         const SnapshotData& snapshot) {
  return AtomicWriteFile(path, EncodeSnapshot(snapshot));
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path) {
  SIGSUB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  Result<SnapshotData> snapshot = DecodeSnapshot(BytesOf(bytes));
  if (!snapshot.ok()) {
    return Status::FailedPrecondition(
        StrCat("snapshot ", path, ": ", snapshot.status().message()));
  }
  return snapshot;
}

}  // namespace persist
}  // namespace sigsub
