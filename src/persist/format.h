#ifndef SIGSUB_PERSIST_FORMAT_H_
#define SIGSUB_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace sigsub {
namespace persist {

/// The on-disk byte discipline shared by the journal, snapshots, and the
/// persistent result cache: little-endian fixed-width scalars written by
/// BinaryWriter and read back by the bounds-checked BinaryReader, inside
/// CRC-framed records behind a versioned file header. Everything read
/// from disk is untrusted input — after a crash the tail of a file can
/// be any byte string — so every reader here fails with a Status instead
/// of asserting, and fuzz/persist_fuzz.cc drives them with arbitrary
/// bytes.

/// Bumped on any incompatible layout change; readers reject other
/// versions by name rather than misparse.
inline constexpr uint32_t kFormatVersion = 1;

/// Hard cap on a single frame payload. Nothing legitimate approaches
/// this; it bounds what a corrupt length prefix can make a reader do.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

enum class FileKind : uint32_t {
  kJournal = 1,
  kSnapshot = 2,
  kResultCache = 3,
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention), table-driven.
uint32_t Crc32(std::span<const uint8_t> data);
uint32_t Crc32(std::string_view data);

/// Fingerprint of the producing build: a hash over the compiler banner,
/// the format version, and the layout-bearing type sizes. Deliberately
/// excludes timestamps so identical builds agree. Same fingerprint =>
/// cached results are bit-reproducible by this binary; the result cache
/// discards entries from any other fingerprint, while journal and
/// snapshot readers accept them (pure data, valid across builds).
uint64_t BuildFingerprint();

/// Append-only little-endian encoder. Writes never fail; the buffer is
/// plain std::string so it can go straight to WriteFdAll.
class BinaryWriter {
 public:
  void PutU8(uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutDouble(double value);
  /// Length-prefixed (u32) byte string.
  void PutBytes(std::span<const uint8_t> bytes);
  void PutString(std::string_view text);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over an in-memory span. Every
/// getter returns false (without advancing) when the remaining bytes
/// cannot satisfy it; length prefixes are validated against what is
/// actually present before any allocation, so corrupt lengths cannot
/// trigger huge reservations.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const uint8_t> data) : data_(data) {}

  bool GetU8(uint8_t* value);
  bool GetU32(uint32_t* value);
  bool GetU64(uint64_t* value);
  bool GetI64(int64_t* value);
  bool GetDouble(double* value);
  /// Length-prefixed byte string (the PutBytes/PutString framing).
  bool GetBytes(std::vector<uint8_t>* value);
  bool GetString(std::string* value);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// 24-byte file header: "SGSB" magic, format version, file kind, build
/// fingerprint, and a CRC over the preceding fields.
std::string EncodeFileHeader(FileKind kind);

/// Validates the header at the front of `data` and returns the number
/// of bytes it occupies. Names the failure (bad magic, version or kind
/// mismatch, CRC) in the Status. Fingerprint is checked only when
/// `require_fingerprint` (the result cache); FailedPrecondition there
/// means "valid file from a different build" — discard, don't distrust.
Result<size_t> CheckFileHeader(std::span<const uint8_t> data, FileKind kind,
                               bool require_fingerprint);

/// Appends one CRC frame — [u32 payload size][u32 crc][payload] — to
/// `out`. Frames are the journal's record unit and let a reader tell a
/// torn tail from corruption.
void AppendFrame(std::string* out, std::string_view payload);

enum class FrameStatus {
  kOk,       // A complete, CRC-valid frame was produced.
  kEnd,      // Clean end of input: no bytes after the last frame.
  kTorn,     // Input ends mid-frame: a crash truncated the tail.
  kCorrupt,  // Full-length frame whose CRC (or size field) is wrong.
};

/// Iterates CRC frames over in-memory bytes. `offset()` is the first
/// unconsumed byte: after kOk it is the next frame's start, and on
/// kTorn/kCorrupt it stays at the bad frame's first byte — exactly the
/// truncation point recovery needs.
class FrameParser {
 public:
  FrameParser(std::span<const uint8_t> data, size_t offset)
      : data_(data), offset_(offset) {}

  /// On kOk fills `*payload` (a view into the input) and advances.
  FrameStatus Next(std::span<const uint8_t>* payload);

  size_t offset() const { return offset_; }

 private:
  std::span<const uint8_t> data_;
  size_t offset_;
};

/// Convenience span view over a string's bytes.
inline std::span<const uint8_t> BytesOf(std::string_view text) {
  return {reinterpret_cast<const uint8_t*>(text.data()), text.size()};
}

}  // namespace persist
}  // namespace sigsub

#endif  // SIGSUB_PERSIST_FORMAT_H_
