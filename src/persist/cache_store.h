#ifndef SIGSUB_PERSIST_CACHE_STORE_H_
#define SIGSUB_PERSIST_CACHE_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/result_cache.h"

namespace sigsub {
namespace persist {

/// Disk-backed tier for engine::ResultCache. Unlike the journal and
/// snapshots (pure data, valid across builds), cached query results are
/// only trustworthy when the binary that computed them would compute
/// them again bit-identically — so the file header's build fingerprint
/// is enforced: a cache written by any other build (different compiler,
/// flags, or format version) is discarded by name as a cold start, not
/// an error.

/// Header + one CRC frame around the encoded entries (MRU first).
std::string EncodeResultCache(
    const std::vector<engine::CacheEntry>& entries);

/// Decodes cache bytes in memory, enforcing version + fingerprint.
/// FailedPrecondition names fingerprint/version mismatches and any
/// corruption. fuzz/persist_fuzz.cc drives this with arbitrary bytes.
Result<std::vector<engine::CacheEntry>> DecodeResultCache(
    std::span<const uint8_t> bytes);

/// Atomically writes `cache`'s entries to `path`.
Status SaveResultCacheFile(const std::string& path,
                           const engine::ResultCache& cache);

/// Loads `path` into `*cache` (replacing its contents, truncated to
/// capacity). Returns the number of entries imported. NotFound when the
/// file is absent; FailedPrecondition (cache untouched) on mismatch or
/// corruption — callers treat both as a cold cache.
Result<int64_t> LoadResultCacheFile(const std::string& path,
                                    engine::ResultCache* cache);

}  // namespace persist
}  // namespace sigsub

#endif  // SIGSUB_PERSIST_CACHE_STORE_H_
