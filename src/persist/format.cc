#include "persist/format.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

#include "common/str_util.h"

namespace sigsub {
namespace persist {
namespace {

constexpr char kMagic[4] = {'S', 'G', 'S', 'B'};
constexpr size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;
constexpr size_t kFrameHeaderSize = 4 + 4;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

// FNV-1a, the same construction the result cache uses for its keys.
uint64_t Fnv1a(std::string_view data, uint64_t hash) {
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrcTable[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) { return Crc32(BytesOf(data)); }

uint64_t BuildFingerprint() {
  uint64_t hash = 14695981039346656037ull;
  hash = Fnv1a(__VERSION__, hash);
  // Layout-bearing sizes: a build where any of these differ cannot
  // promise bit-identical replay of another build's cached results.
  const size_t sizes[] = {sizeof(void*), sizeof(long), sizeof(double),
                          static_cast<size_t>(kFormatVersion)};
  for (size_t value : sizes) {
    char digits[32];
    int len = std::snprintf(digits, sizeof(digits), "%zu;", value);
    hash = Fnv1a(std::string_view(digits, static_cast<size_t>(len)), hash);
  }
  return hash;
}

void BinaryWriter::PutU32(uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
  out_.append(bytes, sizeof(bytes));
}

void BinaryWriter::PutU64(uint64_t value) {
  PutU32(static_cast<uint32_t>(value));
  PutU32(static_cast<uint32_t>(value >> 32));
}

void BinaryWriter::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void BinaryWriter::PutBytes(std::span<const uint8_t> bytes) {
  PutU32(static_cast<uint32_t>(bytes.size()));
  out_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void BinaryWriter::PutString(std::string_view text) {
  PutU32(static_cast<uint32_t>(text.size()));
  out_.append(text);
}

bool BinaryReader::GetU8(uint8_t* value) {
  if (remaining() < 1) return false;
  *value = data_[pos_++];
  return true;
}

bool BinaryReader::GetU32(uint32_t* value) {
  if (remaining() < 4) return false;
  *value = ReadU32(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool BinaryReader::GetU64(uint64_t* value) {
  if (remaining() < 8) return false;
  *value = ReadU64(data_.data() + pos_);
  pos_ += 8;
  return true;
}

bool BinaryReader::GetI64(int64_t* value) {
  uint64_t raw = 0;
  if (!GetU64(&raw)) return false;
  *value = static_cast<int64_t>(raw);
  return true;
}

bool BinaryReader::GetDouble(double* value) {
  uint64_t raw = 0;
  if (!GetU64(&raw)) return false;
  *value = std::bit_cast<double>(raw);
  return true;
}

bool BinaryReader::GetBytes(std::vector<uint8_t>* value) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (size > remaining()) {
    pos_ -= 4;  // Leave the reader where it was: the prefix is a lie.
    return false;
  }
  value->assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
                data_.begin() + static_cast<ptrdiff_t>(pos_ + size));
  pos_ += size;
  return true;
}

bool BinaryReader::GetString(std::string* value) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (size > remaining()) {
    pos_ -= 4;
    return false;
  }
  value->assign(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return true;
}

std::string EncodeFileHeader(FileKind kind) {
  BinaryWriter writer;
  writer.PutU8(static_cast<uint8_t>(kMagic[0]));
  writer.PutU8(static_cast<uint8_t>(kMagic[1]));
  writer.PutU8(static_cast<uint8_t>(kMagic[2]));
  writer.PutU8(static_cast<uint8_t>(kMagic[3]));
  writer.PutU32(kFormatVersion);
  writer.PutU32(static_cast<uint32_t>(kind));
  writer.PutU64(BuildFingerprint());
  writer.PutU32(Crc32(writer.bytes()));
  return writer.Take();
}

Result<size_t> CheckFileHeader(std::span<const uint8_t> data, FileKind kind,
                               bool require_fingerprint) {
  if (data.size() < kHeaderSize) {
    return Status::FailedPrecondition(
        StrCat("file header truncated: ", data.size(), " bytes, want ",
               kHeaderSize));
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::FailedPrecondition("bad magic: not a sigsub state file");
  }
  uint32_t stored_crc = ReadU32(data.data() + kHeaderSize - 4);
  uint32_t actual_crc = Crc32(data.subspan(0, kHeaderSize - 4));
  if (stored_crc != actual_crc) {
    return Status::FailedPrecondition("file header checksum mismatch");
  }
  uint32_t version = ReadU32(data.data() + 4);
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        StrCat("format version ", version, " unsupported (this build reads ",
               kFormatVersion, ")"));
  }
  uint32_t file_kind = ReadU32(data.data() + 8);
  if (file_kind != static_cast<uint32_t>(kind)) {
    return Status::FailedPrecondition(
        StrCat("wrong file kind ", file_kind, ", want ",
               static_cast<uint32_t>(kind)));
  }
  if (require_fingerprint) {
    uint64_t fingerprint = ReadU64(data.data() + 12);
    if (fingerprint != BuildFingerprint()) {
      return Status::FailedPrecondition(
          "build fingerprint mismatch: state written by a different build");
    }
  }
  return kHeaderSize;
}

void AppendFrame(std::string* out, std::string_view payload) {
  BinaryWriter writer;
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutU32(Crc32(payload));
  out->append(writer.bytes());
  out->append(payload);
}

FrameStatus FrameParser::Next(std::span<const uint8_t>* payload) {
  if (offset_ == data_.size()) return FrameStatus::kEnd;
  if (data_.size() - offset_ < kFrameHeaderSize) return FrameStatus::kTorn;
  uint32_t size = ReadU32(data_.data() + offset_);
  uint32_t stored_crc = ReadU32(data_.data() + offset_ + 4);
  if (size > kMaxFramePayload) return FrameStatus::kCorrupt;
  if (data_.size() - offset_ - kFrameHeaderSize < size) {
    return FrameStatus::kTorn;
  }
  std::span<const uint8_t> body =
      data_.subspan(offset_ + kFrameHeaderSize, size);
  if (Crc32(body) != stored_crc) return FrameStatus::kCorrupt;
  *payload = body;
  offset_ += kFrameHeaderSize + size;
  return FrameStatus::kOk;
}

}  // namespace persist
}  // namespace sigsub
