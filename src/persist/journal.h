#ifndef SIGSUB_PERSIST_JOURNAL_H_
#define SIGSUB_PERSIST_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/streaming.h"

namespace sigsub {
namespace persist {

/// Append-only write-ahead journal of stream mutations. The server
/// journals every acknowledged CREATE/APPEND/CLOSE *before* applying it
/// to the in-memory StreamManager, so after any crash the journal tail
/// replayed on top of the last snapshot reconstructs exactly the
/// acknowledged state: an op the client saw "OK" for is never lost, and
/// an op that failed to journal was never applied (the client saw
/// EPERSIST). A record half-written at the moment of a crash fails its
/// CRC and is truncated on the next open — torn tails are expected
/// wear, not corruption.

/// When the journal fsyncs.
enum class FsyncPolicy {
  /// Never explicitly — the OS flushes on its own schedule. An OS or
  /// power crash can lose the most recent acknowledged ops (a process
  /// crash cannot: the page cache survives the process).
  kNone,
  /// After every appended record: an acknowledged op survives power
  /// loss. The durable default; costs one fsync per executor slice op.
  kAlways,
};

/// "none" | "always" (the CLI `--fsync` vocabulary).
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text);
std::string_view FsyncPolicyName(FsyncPolicy policy);

enum class JournalOp : uint8_t {
  kCreate = 1,
  kAppend = 2,
  kClose = 3,
};

/// One journaled stream mutation. `lsn` (log sequence number) is
/// assigned by the journal, strictly increasing across the journal's
/// lifetime — snapshots record the last LSN they contain so replay can
/// skip records the snapshot already reflects.
struct JournalRecord {
  uint64_t lsn = 0;
  JournalOp op = JournalOp::kAppend;
  std::string stream;
  // kCreate only:
  std::vector<double> probs;
  core::StreamingDetector::Options options;
  // kAppend only:
  std::vector<uint8_t> symbols;
};

std::string EncodeJournalRecord(const JournalRecord& record);
Result<JournalRecord> DecodeJournalRecord(std::span<const uint8_t> bytes);

/// What replay found in an existing journal.
struct JournalReplay {
  std::vector<JournalRecord> records;  // CRC-valid records, in order.
  uint64_t next_lsn = 1;               // One past the highest LSN seen.
  size_t valid_bytes = 0;     // File offset after the last good record.
  size_t truncated_bytes = 0;  // Torn/corrupt tail beyond valid_bytes.
};

/// Parses journal bytes in memory: header, then CRC frames to the first
/// torn or corrupt frame, which ends the replay (everything after a bad
/// record is unreachable wear). Fails only on a bad header — that is a
/// file-level identity problem, not crash damage. This is the reader
/// fuzz/persist_fuzz.cc drives with arbitrary bytes.
Result<JournalReplay> ParseJournal(std::span<const uint8_t> bytes);

/// The on-disk journal, opened for append. Not thread-safe: the server
/// writes it from the executor thread only.
class Journal {
 public:
  /// Opens (creating if absent) the journal at `path`: replays existing
  /// records into `*replay`, physically truncates any torn tail so the
  /// file ends at a record boundary, and positions for append with the
  /// LSN counter continuing where the file left off.
  static Result<Journal> Open(std::string path, FsyncPolicy policy,
                              JournalReplay* replay);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one record (`record.lsn` is overwritten with the next LSN)
  /// and fsyncs per policy. Returns the assigned LSN. On a write error
  /// the journal truncates back to the last good record boundary so the
  /// file stays parseable; if even that fails, the journal is broken
  /// and every later Append fails fast with FailedPrecondition.
  Result<uint64_t> Append(JournalRecord record);

  /// Drops every record (after a snapshot made them redundant),
  /// keeping the file header. The LSN counter is NOT reset — LSNs stay
  /// unique across truncations, which is what snapshot reconciliation
  /// keys on.
  Status Reset();

  /// Last LSN handed out (0 if none yet).
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  const std::string& path() const { return path_; }

 private:
  Journal(std::string path, int fd, FsyncPolicy policy, uint64_t next_lsn,
          size_t good_offset)
      : path_(std::move(path)),
        fd_(fd),
        policy_(policy),
        next_lsn_(next_lsn),
        good_offset_(good_offset) {}

  std::string path_;
  int fd_ = -1;
  FsyncPolicy policy_ = FsyncPolicy::kAlways;
  uint64_t next_lsn_ = 1;
  size_t good_offset_ = 0;  // File size through the last good record.
  bool broken_ = false;
};

}  // namespace persist
}  // namespace sigsub

#endif  // SIGSUB_PERSIST_JOURNAL_H_
