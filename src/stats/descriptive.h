#ifndef SIGSUB_STATS_DESCRIPTIVE_H_
#define SIGSUB_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

namespace sigsub {
namespace stats {

/// Small descriptive-statistics helpers used by the benchmark harness
/// (e.g. fitting the slope of log-iterations vs log-n, the paper's
/// Figures 1, 2 and 5) and by generator tests.

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // Unbiased (n-1 denominator).
double StdDev(std::span<const double> xs);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Requires xs.size() == ys.size() >= 2 and non-constant xs.
LinearFit FitLine(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient of two equal-length samples.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_DESCRIPTIVE_H_
