#include "stats/count_statistics.h"

#include <cmath>

#include "common/check.h"
#include "common/str_util.h"
#include "stats/chi_squared.h"

namespace sigsub {
namespace stats {

double PearsonChiSquare(std::span<const int64_t> counts,
                        std::span<const double> probs) {
  SIGSUB_DCHECK(counts.size() == probs.size());
  int64_t l = 0;
  for (int64_t y : counts) l += y;
  if (l == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double y = static_cast<double>(counts[i]);
    sum += y * y / probs[i];
  }
  double dl = static_cast<double>(l);
  return sum / dl - dl;
}

Status ValidateCountsAndProbs(std::span<const int64_t> counts,
                              std::span<const double> probs) {
  if (counts.size() != probs.size()) {
    return Status::InvalidArgument(
        StrCat("counts size (", counts.size(), ") != probs size (",
               probs.size(), ")"));
  }
  if (counts.empty()) {
    return Status::InvalidArgument("empty count vector");
  }
  double total = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (counts[i] < 0) {
      return Status::InvalidArgument(
          StrCat("negative count at index ", i, ": ", counts[i]));
    }
    if (!(probs[i] > 0.0) || probs[i] > 1.0) {
      return Status::InvalidArgument(
          StrCat("probability at index ", i, " must be in (0, 1], got ",
                 probs[i]));
    }
    total += probs[i];
  }
  if (std::fabs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument(
        StrCat("probabilities must sum to 1, got ", total));
  }
  return Status::OK();
}

Result<double> PearsonChiSquareChecked(std::span<const int64_t> counts,
                                       std::span<const double> probs) {
  SIGSUB_RETURN_IF_ERROR(ValidateCountsAndProbs(counts, probs));
  return PearsonChiSquare(counts, probs);
}

double LikelihoodRatioG2(std::span<const int64_t> counts,
                         std::span<const double> probs) {
  SIGSUB_DCHECK(counts.size() == probs.size());
  int64_t l = 0;
  for (int64_t y : counts) l += y;
  if (l == 0) return 0.0;
  double dl = static_cast<double>(l);
  double sum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;  // 0 * ln(0) := 0
    double y = static_cast<double>(counts[i]);
    sum += y * std::log(y / (dl * probs[i]));
  }
  return 2.0 * sum;
}

Result<double> LikelihoodRatioG2Checked(std::span<const int64_t> counts,
                                        std::span<const double> probs) {
  SIGSUB_RETURN_IF_ERROR(ValidateCountsAndProbs(counts, probs));
  return LikelihoodRatioG2(counts, probs);
}

double ChiSquarePValue(double x2, int alphabet_size) {
  SIGSUB_CHECK(alphabet_size >= 2);
  ChiSquaredDistribution dist(alphabet_size - 1);
  return dist.Sf(x2);
}

double ChiSquareThresholdForPValue(double alpha, int alphabet_size) {
  SIGSUB_CHECK(alphabet_size >= 2);
  ChiSquaredDistribution dist(alphabet_size - 1);
  return dist.CriticalValue(alpha);
}

}  // namespace stats
}  // namespace sigsub
