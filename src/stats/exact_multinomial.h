#ifndef SIGSUB_STATS_EXACT_MULTINOMIAL_H_
#define SIGSUB_STATS_EXACT_MULTINOMIAL_H_

#include <cstdint>
#include <span>

#include "common/result.h"

namespace sigsub {
namespace stats {

/// Exact multinomial machinery for small strings. The paper (Eqs. 1-2)
/// defines the exact p-value as the total probability of all outcome
/// configurations at least as extreme as the observed one, where "extreme"
/// is ordered by the X² statistic. Enumerating all C(l+k-1, k-1)
/// configurations is exponential in general (which is precisely why the
/// paper adopts the asymptotic χ² approximation); this module exists so
/// tests can validate the approximation's direction and accuracy in the
/// small-(l, k) regime.

/// ln P(C = β) for a configuration β = {Y_1..Y_k}: l! Π p_i^{Y_i} / Y_i!
/// (paper Eq. 1).
double LogMultinomialProbability(std::span<const int64_t> counts,
                                 std::span<const double> probs);

/// Exact p-value: Σ over configurations β with X²(β) >= X²(observed) of
/// P(β). Enumerates all compositions of l into k parts; feasible roughly for
/// C(l+k-1, k-1) <= ~10^7. Returns InvalidArgument beyond that budget.
Result<double> ExactMultinomialPValue(std::span<const int64_t> observed,
                                      std::span<const double> probs);

/// Number of configurations that would be enumerated: C(l+k-1, k-1),
/// saturating at int64 max.
int64_t MultinomialConfigurationCount(int64_t l, int k);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_EXACT_MULTINOMIAL_H_
