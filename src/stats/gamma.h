#ifndef SIGSUB_STATS_GAMMA_H_
#define SIGSUB_STATS_GAMMA_H_

namespace sigsub {
namespace stats {

/// Natural log of the gamma function, ln Γ(x), for x > 0.
double LogGamma(double x);

/// Regularized lower incomplete gamma function
///   P(a, x) = γ(a, x) / Γ(a),  a > 0, x >= 0.
/// P is the CDF of the Gamma(shape=a, scale=1) distribution. Computed with
/// the power series for x < a + 1 and the Lentz continued fraction
/// otherwise; absolute accuracy ~1e-14 over the tested domain.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x),
/// computed directly (not via subtraction) so small tail values keep full
/// relative precision.
double RegularizedGammaQ(double a, double x);

/// Inverse of P(a, .): returns x such that P(a, x) = p, for p in [0, 1).
/// Uses a Wilson-Hilferty initial guess refined by Halley iterations.
double InverseRegularizedGammaP(double a, double p);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_GAMMA_H_
