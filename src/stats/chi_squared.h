#ifndef SIGSUB_STATS_CHI_SQUARED_H_
#define SIGSUB_STATS_CHI_SQUARED_H_

#include "common/result.h"
#include "common/status.h"

namespace sigsub {
namespace stats {

/// The chi-square distribution χ²(k) with `dof` degrees of freedom.
///
/// Under the paper's null model, the Pearson X² statistic of a substring over
/// an alphabet of size k converges to χ²(k − 1) (paper Theorem 3); the
/// p-value of an observed X² value z is Sf(z) = 1 − Cdf(z).
class ChiSquaredDistribution {
 public:
  /// Creates a distribution; fails unless `dof` >= 1.
  static Result<ChiSquaredDistribution> Make(int dof);

  /// Direct constructor; requires dof >= 1 (checked).
  explicit ChiSquaredDistribution(int dof);

  int dof() const { return dof_; }
  double mean() const { return dof_; }
  double variance() const { return 2.0 * dof_; }

  /// Probability density at x (0 for x < 0).
  double Pdf(double x) const;

  /// Cumulative distribution function P(X <= x).
  double Cdf(double x) const;

  /// Survival function P(X > x) = 1 - Cdf(x); computed directly so deep
  /// tails (p-values ~1e-300) retain relative precision.
  double Sf(double x) const;

  /// Quantile function: smallest x with Cdf(x) >= p, for p in [0, 1).
  double Quantile(double p) const;

  /// The X² threshold whose p-value equals `alpha` (i.e. Quantile(1-alpha)),
  /// handling small alpha without cancellation.
  double CriticalValue(double alpha) const;

 private:
  int dof_;
};

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_CHI_SQUARED_H_
