#include "stats/exact_multinomial.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "stats/count_statistics.h"
#include "stats/gamma.h"

namespace sigsub {
namespace stats {
namespace {

constexpr int64_t kEnumerationBudget = 10'000'000;

// Recursively enumerates compositions of `remaining` over positions
// [index, k), accumulating probability of configurations at least as
// extreme (by X²) as the observed statistic.
void Enumerate(std::vector<int64_t>& counts, size_t index, int64_t remaining,
               std::span<const double> probs, double observed_x2,
               double* p_sum) {
  if (index + 1 == counts.size()) {
    counts[index] = remaining;
    double x2 = PearsonChiSquare(counts, probs);
    // Tolerance keeps "as extreme as observed" robust to rounding.
    if (x2 >= observed_x2 - 1e-9) {
      *p_sum += std::exp(LogMultinomialProbability(counts, probs));
    }
    return;
  }
  for (int64_t y = 0; y <= remaining; ++y) {
    counts[index] = y;
    Enumerate(counts, index + 1, remaining - y, probs, observed_x2, p_sum);
  }
}

}  // namespace

double LogMultinomialProbability(std::span<const int64_t> counts,
                                 std::span<const double> probs) {
  SIGSUB_DCHECK(counts.size() == probs.size());
  int64_t l = 0;
  for (int64_t y : counts) l += y;
  double log_p = LogGamma(static_cast<double>(l) + 1.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    log_p += counts[i] * std::log(probs[i]) -
             LogGamma(static_cast<double>(counts[i]) + 1.0);
  }
  return log_p;
}

int64_t MultinomialConfigurationCount(int64_t l, int k) {
  SIGSUB_CHECK(l >= 0 && k >= 1);
  // C(l + k - 1, k - 1) with overflow saturation.
  int64_t result = 1;
  for (int i = 1; i <= k - 1; ++i) {
    // result *= (l + i); result /= i;  -- keep exact by multiplying first.
    if (result > std::numeric_limits<int64_t>::max() / (l + i)) {
      return std::numeric_limits<int64_t>::max();
    }
    result = result * (l + i) / i;
  }
  return result;
}

Result<double> ExactMultinomialPValue(std::span<const int64_t> observed,
                                      std::span<const double> probs) {
  SIGSUB_RETURN_IF_ERROR(ValidateCountsAndProbs(observed, probs));
  int64_t l = 0;
  for (int64_t y : observed) l += y;
  int64_t configs = MultinomialConfigurationCount(l, observed.size());
  if (configs > kEnumerationBudget) {
    return Status::InvalidArgument(
        StrCat("exact p-value enumeration needs ", configs,
               " configurations; budget is ", kEnumerationBudget));
  }
  double observed_x2 = PearsonChiSquare(observed, probs);
  std::vector<int64_t> counts(observed.size(), 0);
  double p_sum = 0.0;
  Enumerate(counts, 0, l, probs, observed_x2, &p_sum);
  // Clamp tiny accumulation error into [0, 1].
  return std::fmin(1.0, std::fmax(0.0, p_sum));
}

}  // namespace stats
}  // namespace sigsub
