#ifndef SIGSUB_STATS_BETA_H_
#define SIGSUB_STATS_BETA_H_

namespace sigsub {
namespace stats {

/// ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b).
double LogBeta(double a, double b);

/// Regularized incomplete beta function I_x(a, b), the CDF of Beta(a, b)
/// at x in [0, 1]. Computed with the Lentz continued fraction, using the
/// symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the fast-converging
/// region.
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_BETA_H_
