#ifndef SIGSUB_STATS_NORMAL_H_
#define SIGSUB_STATS_NORMAL_H_

namespace sigsub {
namespace stats {

/// The normal distribution N(mean, stddev²). Used by the paper's analysis
/// (binomial→normal convergence, Theorem 2) and by generator tests.
class NormalDistribution {
 public:
  NormalDistribution(double mean, double stddev);

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

  double Pdf(double x) const;
  double Cdf(double x) const;
  double Sf(double x) const;

  /// Quantile via the Acklam rational approximation refined with one
  /// Halley step; |error| < 1e-9 over (0, 1).
  double Quantile(double p) const;

 private:
  double mean_;
  double stddev_;
};

/// Standard normal CDF Φ(z).
double StandardNormalCdf(double z);

/// Standard normal quantile Φ⁻¹(p), p in (0, 1).
double StandardNormalQuantile(double p);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_NORMAL_H_
