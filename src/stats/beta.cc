#include "stats/beta.h"

#include <cmath>

#include "common/check.h"
#include "stats/gamma.h"

namespace sigsub {
namespace stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  SIGSUB_DCHECK(a > 0.0 && b > 0.0);
  SIGSUB_DCHECK(x >= 0.0 && x <= 1.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double log_front =
      a * std::log(x) + b * std::log(1.0 - x) - LogBeta(a, b);
  double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace stats
}  // namespace sigsub
