#include "stats/gamma.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace sigsub {
namespace stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kTiny = 1e-300;

// Power-series representation of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Modified Lentz continued fraction for Q(a, x); converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  SIGSUB_DCHECK(x > 0.0);
  // std::lgamma writes the process-global `signgam` on glibc, which is a
  // data race when streams calibrate thresholds concurrently (e.g.
  // StreamManager::AppendBatch fanning out over the thread pool). The
  // reentrant variant returns the sign through a local instead.
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  // Non-glibc fallback without the _r variant; signgam races are
  // tolerated there because we never read it.
  // sigsub-lint: allow(unsafe-call): signgam is written but never read here
  return std::lgamma(x);
#endif
}

double RegularizedGammaP(double a, double x) {
  SIGSUB_DCHECK(a > 0.0);
  SIGSUB_DCHECK(x >= 0.0);
  if (x <= 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  SIGSUB_DCHECK(a > 0.0);
  SIGSUB_DCHECK(x >= 0.0);
  if (x <= 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double InverseRegularizedGammaP(double a, double p) {
  SIGSUB_DCHECK(a > 0.0);
  SIGSUB_DCHECK(p >= 0.0 && p < 1.0);
  if (p <= 0.0) return 0.0;

  // Wilson-Hilferty approximation as the starting point.
  // For Z ~ N(0,1): x ~= a * (1 - 1/(9a) + z*sqrt(1/(9a)))^3.
  double z;
  {
    // Rational approximation of the standard normal quantile
    // (Beasley-Springer-Moro flavor, adequate as a seed).
    double t;
    double q = p < 0.5 ? p : 1.0 - p;
    t = std::sqrt(-2.0 * std::log(q));
    z = t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t);
    if (p < 0.5) z = -z;
  }
  double x;
  if (a > 0.5) {
    double g = 1.0 / (9.0 * a);
    double cube = 1.0 - g + z * std::sqrt(g);
    x = a * cube * cube * cube;
    if (x <= 0.0) x = 0.5 * a;
  } else {
    // Small-shape seed from the leading series term: P(a,x) ~ x^a / Γ(a+1).
    x = std::pow(p * std::exp(LogGamma(a + 1.0)), 1.0 / a);
  }

  // Halley refinement on f(x) = P(a, x) - p.
  double lgamma_a = LogGamma(a);
  for (int i = 0; i < 60; ++i) {
    if (x <= 0.0) x = kTiny;
    double f = RegularizedGammaP(a, x) - p;
    double log_pdf = -x + (a - 1.0) * std::log(x) - lgamma_a;
    double pdf = std::exp(log_pdf);
    if (pdf <= 0.0) break;
    double step = f / pdf;
    // Halley correction term: f'' / (2 f') = ((a-1)/x - 1) / 2.
    double halley = step * ((a - 1.0) / x - 1.0) / 2.0;
    double denom = 1.0 - std::fmin(1.0, std::fmax(-1.0, halley));
    double dx = step / denom;
    double next = x - dx;
    if (next <= 0.0) next = x / 2.0;
    if (std::fabs(next - x) < 1e-12 * (std::fabs(next) + 1e-12)) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

}  // namespace stats
}  // namespace sigsub
