#include "stats/descriptive.h"

#include <cmath>

#include "common/check.h"

namespace sigsub {
namespace stats {

double Mean(std::span<const double> xs) {
  SIGSUB_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  SIGSUB_CHECK(xs.size() >= 2);
  double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

LinearFit FitLine(std::span<const double> xs, std::span<const double> ys) {
  SIGSUB_CHECK(xs.size() == ys.size());
  SIGSUB_CHECK(xs.size() >= 2);
  double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  SIGSUB_CHECK(denom != 0.0);
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double resid = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += resid * resid;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  SIGSUB_CHECK(xs.size() == ys.size());
  SIGSUB_CHECK(xs.size() >= 2);
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  SIGSUB_CHECK(sxx > 0.0 && syy > 0.0);
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace stats
}  // namespace sigsub
