#include "stats/chi_squared.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/str_util.h"
#include "stats/gamma.h"

namespace sigsub {
namespace stats {

Result<ChiSquaredDistribution> ChiSquaredDistribution::Make(int dof) {
  if (dof < 1) {
    return Status::InvalidArgument(
        StrCat("chi-square degrees of freedom must be >= 1, got ", dof));
  }
  return ChiSquaredDistribution(dof);
}

ChiSquaredDistribution::ChiSquaredDistribution(int dof) : dof_(dof) {
  SIGSUB_CHECK(dof >= 1);
}

double ChiSquaredDistribution::Pdf(double x) const {
  if (x < 0.0) return 0.0;
  double half_k = dof_ / 2.0;
  if (x == 0.0) {
    if (dof_ == 1) return std::numeric_limits<double>::infinity();
    if (dof_ == 2) return 0.5;
    return 0.0;
  }
  double log_pdf = (half_k - 1.0) * std::log(x) - x / 2.0 -
                   half_k * std::log(2.0) - LogGamma(half_k);
  return std::exp(log_pdf);
}

double ChiSquaredDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof_ / 2.0, x / 2.0);
}

double ChiSquaredDistribution::Sf(double x) const {
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(dof_ / 2.0, x / 2.0);
}

double ChiSquaredDistribution::Quantile(double p) const {
  SIGSUB_CHECK(p >= 0.0 && p < 1.0);
  return 2.0 * InverseRegularizedGammaP(dof_ / 2.0, p);
}

double ChiSquaredDistribution::CriticalValue(double alpha) const {
  SIGSUB_CHECK(alpha > 0.0 && alpha <= 1.0);
  // Bisect on the survival function: Sf is strictly decreasing.
  double lo = 0.0;
  double hi = std::fmax(4.0 * dof_, 16.0);
  while (Sf(hi) > alpha) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (Sf(mid) > alpha) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace stats
}  // namespace sigsub
