#include "stats/binomial.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/beta.h"
#include "stats/gamma.h"

namespace sigsub {
namespace stats {

double LogBinomialCoefficient(int64_t n, int64_t y) {
  SIGSUB_DCHECK(n >= 0 && y >= 0 && y <= n);
  return LogGamma(static_cast<double>(n) + 1.0) -
         LogGamma(static_cast<double>(y) + 1.0) -
         LogGamma(static_cast<double>(n - y) + 1.0);
}

BinomialDistribution::BinomialDistribution(int64_t n, double p)
    : n_(n), p_(p) {
  SIGSUB_CHECK(n >= 0);
  SIGSUB_CHECK(p >= 0.0 && p <= 1.0);
}

double BinomialDistribution::LogPmf(int64_t y) const {
  if (y < 0 || y > n_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) return y == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p_ == 1.0) return y == n_ ? 0.0 : -std::numeric_limits<double>::infinity();
  return LogBinomialCoefficient(n_, y) + y * std::log(p_) +
         (n_ - y) * std::log1p(-p_);
}

double BinomialDistribution::Pmf(int64_t y) const {
  double lp = LogPmf(y);
  return std::isinf(lp) ? 0.0 : std::exp(lp);
}

double BinomialDistribution::Cdf(int64_t y) const {
  if (y < 0) return 0.0;
  if (y >= n_) return 1.0;
  // P(X <= y) = I_{1-p}(n-y, y+1).
  return RegularizedIncompleteBeta(static_cast<double>(n_ - y),
                                   static_cast<double>(y) + 1.0, 1.0 - p_);
}

double BinomialDistribution::Sf(int64_t y) const {
  if (y < 0) return 1.0;
  if (y >= n_) return 0.0;
  // P(X > y) = I_p(y+1, n-y).
  return RegularizedIncompleteBeta(static_cast<double>(y) + 1.0,
                                   static_cast<double>(n_ - y), p_);
}

}  // namespace stats
}  // namespace sigsub
