#ifndef SIGSUB_STATS_COUNT_STATISTICS_H_
#define SIGSUB_STATS_COUNT_STATISTICS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sigsub {
namespace stats {

/// Goodness-of-fit statistics over an observed count vector {Y_1..Y_k}
/// against multinomial probabilities {p_1..p_k}. These are the two
/// statistics the paper discusses in Section 1: Pearson's X² (Eq. 4/5,
/// the measure the paper adopts) and the likelihood-ratio G² (Eq. 3).

/// Pearson X² = Σ (Y_i − l·p_i)² / (l·p_i) = Σ Y_i²/(l·p_i) − l,
/// where l = Σ Y_i. Returns 0 for the empty count vector (l = 0).
/// Requires counts.size() == probs.size() and p_i > 0 (unchecked hot path;
/// use PearsonChiSquareChecked for validated input).
double PearsonChiSquare(std::span<const int64_t> counts,
                        std::span<const double> probs);

/// Validated version of PearsonChiSquare.
Result<double> PearsonChiSquareChecked(std::span<const int64_t> counts,
                                       std::span<const double> probs);

/// Likelihood-ratio statistic G² = −2 ln LR = 2 Σ Y_i ln(Y_i / (l·p_i)),
/// with the convention 0·ln(0) = 0. Converges to the same χ²(k−1) limit as
/// X² (from above, while X² converges from below — paper Section 1).
double LikelihoodRatioG2(std::span<const int64_t> counts,
                         std::span<const double> probs);

/// Validated version of LikelihoodRatioG2.
Result<double> LikelihoodRatioG2Checked(std::span<const int64_t> counts,
                                        std::span<const double> probs);

/// Asymptotic p-value of an observed statistic value `x2` over an alphabet
/// of size k: 1 − F_{χ²(k−1)}(x2).
double ChiSquarePValue(double x2, int alphabet_size);

/// The X² value whose asymptotic p-value equals `alpha` for alphabet size k;
/// the natural way to pick the threshold α₀ for Problem 3.
double ChiSquareThresholdForPValue(double alpha, int alphabet_size);

/// Validates a count/probability pair; shared by the Checked entry points.
Status ValidateCountsAndProbs(std::span<const int64_t> counts,
                              std::span<const double> probs);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_COUNT_STATISTICS_H_
