#ifndef SIGSUB_STATS_BINOMIAL_H_
#define SIGSUB_STATS_BINOMIAL_H_

#include <cstdint>

namespace sigsub {
namespace stats {

/// Binomial(n, p) helpers. Character counts Y_i in the paper are binomial
/// (paper Eq. 23); tests use these to validate generators and the
/// normal-approximation regime (Theorem 2).
class BinomialDistribution {
 public:
  BinomialDistribution(int64_t n, double p);

  int64_t n() const { return n_; }
  double p() const { return p_; }
  double mean() const { return static_cast<double>(n_) * p_; }
  double variance() const { return static_cast<double>(n_) * p_ * (1.0 - p_); }

  /// ln P(X = y).
  double LogPmf(int64_t y) const;
  /// P(X = y).
  double Pmf(int64_t y) const;
  /// P(X <= y), via the regularized incomplete beta identity.
  double Cdf(int64_t y) const;
  /// P(X > y).
  double Sf(int64_t y) const;

 private:
  int64_t n_;
  double p_;
};

/// ln C(n, y).
double LogBinomialCoefficient(int64_t n, int64_t y);

}  // namespace stats
}  // namespace sigsub

#endif  // SIGSUB_STATS_BINOMIAL_H_
