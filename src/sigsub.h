#ifndef SIGSUB_SIGSUB_H_
#define SIGSUB_SIGSUB_H_

/// Umbrella header for the sigsub library: mining statistically significant
/// substrings with the chi-square statistic (Sachan & Bhattacharya,
/// VLDB 2012).
///
/// Typical use:
///
///   sigsub::seq::Rng rng(42);
///   sigsub::seq::Sequence s = sigsub::seq::GenerateNull(2, 100000, rng);
///   auto model = sigsub::seq::MultinomialModel::Uniform(2);
///   auto mss = sigsub::core::FindMss(s, model);      // Problem 1
///   auto top = sigsub::core::FindTopT(s, model, 10); // Problem 2
///   double p = sigsub::core::SubstringPValue(mss->best.chi_square, 2);
///
/// Corpus-scale batch mining (engine/ + api/): run any mix of the
/// sequence kernels over many sequences concurrently, with per-sequence
/// context reuse and an LRU result cache keyed on canonical query bytes.
/// api::QuerySpec is the typed (and serializable) query surface:
///
///   auto corpus = sigsub::engine::Corpus::FromLines("corpus.txt");
///   sigsub::engine::Engine engine({.num_threads = 8});
///   auto spec = sigsub::api::ParseQuery("topt:seq=0,t=5,model=uniform");
///   auto results = engine.ExecuteQueries(*corpus, {*spec});
///
/// Serving (server/): sigsubd, a concurrent mining daemon speaking a
/// newline-delimited protocol over TCP — QUERY lines carry serialized
/// QuerySpecs, STREAM.*/SUBSCRIBE manage calibrated streaming detectors
/// with alarms pushed to subscribers, and backpressure is explicit
/// (EBUSY/EQUOTA/EDRAIN wire codes):
///
///   sigsub::server::Server daemon(*corpus);
///   daemon.Start();   // daemon.port() answers the ephemeral-port case
///   auto client = sigsub::server::LineClient::Connect("127.0.0.1",
///                                                     daemon.port());

#include "api/query.h"
#include "api/serde.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/posix_io.h"
#include "core/agmm.h"
#include "core/arlm.h"
#include "core/blocked_scan.h"
#include "core/chain_cover.h"
#include "core/chi_square.h"
#include "core/length_bounded.h"
#include "core/markov_scan.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/mss_2d.h"
#include "core/naive.h"
#include "core/parallel.h"
#include "core/scan_types.h"
#include "core/significance.h"
#include "core/streaming.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "core/x2_dispatch.h"
#include "core/x2_kernel.h"
#include "engine/corpus.h"
#include "engine/engine.h"
#include "engine/engine_stats.h"
#include "engine/fingerprint.h"
#include "engine/job.h"
#include "engine/result_cache.h"
#include "engine/stream_manager.h"
#include "engine/thread_pool.h"
#include "io/csv.h"
#include "io/date_axis.h"
#include "io/market_sim.h"
#include "io/sports_sim.h"
#include "io/string_codec.h"
#include "io/table_writer.h"
#include "persist/cache_store.h"
#include "persist/format.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "persist/state_store.h"
#include "seq/alphabet.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "seq/generators.h"
#include "seq/grid.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/rng.h"
#include "seq/sequence.h"
#include "stats/beta.h"
#include "stats/binomial.h"
#include "stats/chi_squared.h"
#include "stats/count_statistics.h"
#include "stats/descriptive.h"
#include "stats/exact_multinomial.h"
#include "stats/gamma.h"
#include "stats/normal.h"

#endif  // SIGSUB_SIGSUB_H_
