#ifndef SIGSUB_CORE_NAIVE_H_
#define SIGSUB_CORE_NAIVE_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// The trivial O(n²) algorithms (paper Section 2): enumerate every start
/// position and extend the end one character at a time, maintaining the
/// count vector incrementally so each substring costs O(1). These are the
/// exact baselines the paper compares against ("Trivial" rows in Tables 1,
/// 4 and 6 and the "Trivial Algorithm" series in Figures 1, 6 and 7), and
/// the ground truth oracle for the test suite.

/// Problem 1, exact, O(n²).
Result<MssResult> NaiveFindMss(const seq::Sequence& sequence,
                               const seq::MultinomialModel& model);
MssResult NaiveFindMss(const seq::Sequence& sequence,
                       const ChiSquareContext& context);

/// Problem 2, exact, O(n² log t).
Result<TopTResult> NaiveFindTopT(const seq::Sequence& sequence,
                                 const seq::MultinomialModel& model,
                                 int64_t t);
TopTResult NaiveFindTopT(const seq::Sequence& sequence,
                         const ChiSquareContext& context, int64_t t);

/// Problem 3, exact, O(n²). Collects at most `max_matches` substrings but
/// always reports the exact total count.
Result<ThresholdResult> NaiveFindAboveThreshold(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    double alpha0, int64_t max_matches = INT64_MAX);
ThresholdResult NaiveFindAboveThreshold(const seq::Sequence& sequence,
                                        const ChiSquareContext& context,
                                        double alpha0,
                                        int64_t max_matches = INT64_MAX);

/// Problem 4, exact, O(n²): MSS among substrings of length >= min_length.
Result<MssResult> NaiveFindMssMinLength(const seq::Sequence& sequence,
                                        const seq::MultinomialModel& model,
                                        int64_t min_length);
MssResult NaiveFindMssMinLength(const seq::Sequence& sequence,
                                const ChiSquareContext& context,
                                int64_t min_length);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_NAIVE_H_
