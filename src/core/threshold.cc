#include "core/threshold.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {

ThresholdResult FindAboveThreshold(const seq::PrefixCounts& counts,
                                   const ChiSquareContext& context,
                                   double alpha0, ThresholdOptions options) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  SIGSUB_CHECK(options.max_matches >= 0);
  const int64_t n = counts.sequence_size();
  ThresholdResult result;
  SkipSolver solver(context);
  X2Kernel kernel(context);
  bool found = false;

  for (int64_t i = n - 1; i >= 0; --i) {
    ++result.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t end = i + 1;
    while (end <= n) {
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++result.stats.positions_examined;
      if (x2 > alpha0) {
        Substring match{i, end, x2};
        ++result.match_count;
        if (static_cast<int64_t>(result.matches.size()) <
            options.max_matches) {
          result.matches.push_back(match);
        }
        if (!found || x2 > result.best.chi_square) {
          found = true;
          result.best = match;
        }
      }
      // The budget stays fixed at alpha0 (paper Algorithm 3). When
      // x2 > alpha0 the solver returns 0 and the scan advances by one —
      // the paper's max(..., 1).
      int64_t skip = solver.MaxSafeExtension(lo, hi, l, x2, alpha0);
      if (skip > 0) {
        ++result.stats.skip_events;
        int64_t last_skipped = std::min(end + skip, n);
        if (last_skipped > end) {
          result.stats.positions_skipped += last_skipped - end;
        }
      }
      end += skip + 1;
    }
  }
  return result;
}

Result<ThresholdResult> FindAboveThreshold(const seq::Sequence& sequence,
                                           const seq::MultinomialModel& model,
                                           double alpha0,
                                           ThresholdOptions options) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (options.max_matches < 0) {
    return Status::InvalidArgument(
        StrCat("max_matches must be >= 0, got ", options.max_matches));
  }
  if (alpha0 < 0.0) {
    return Status::InvalidArgument(
        StrCat("alpha0 must be >= 0 (X² is non-negative), got ", alpha0));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindAboveThreshold(counts, context, alpha0, options);
}

}  // namespace core
}  // namespace sigsub
