#ifndef SIGSUB_CORE_X2_KERNEL_H_
#define SIGSUB_CORE_X2_KERNEL_H_

#include <cstdint>
#include <span>

#include "common/check.h"
#include "core/chi_square.h"
#include "core/x2_dispatch.h"
#include "seq/grid.h"
#include "seq/prefix_counts.h"

namespace sigsub {
namespace core {

/// Fused X² evaluation over seq::PrefixCounts — the per-candidate kernel
/// of every scanner (paper Algorithm 1 / Eq. 5 cost model: read two
/// prefix blocks, reduce Σ Y_c²/p_c).
///
/// The legacy shape, counts.FillCounts(i, end, scratch) followed by
/// context.Evaluate(scratch, l), pays two k-wide loads, a k-wide store
/// into heap scratch, then a k-wide reload and reduce. This kernel fuses
/// the subtraction and reduction into one pass over the two position-major
/// blocks: no scratch vector exists anywhere in the scan.
///
/// The implementation is selected at ChiSquareContext build time (see
/// X2Dispatch in x2_dispatch.h): fixed-k scalar specializations for
/// k ∈ {2, 4, 8} (binary stock/sports encodings, DNA, bytes-in-octal),
/// an AVX2 path behind compile-time feature detection plus a runtime CPU
/// check, and a generic scalar fallback. The scalar paths are bit-identical
/// to the legacy pair; the SIMD path reorders the summation and agrees to
/// <= 1e-12 relative (gated in bench/x2_kernel.cc).
///
/// Scratch-buffer convention: scanner kernels must not allocate per-call
/// heap scratch on their hot paths. Count vectors are never materialized —
/// evaluation goes through this kernel and skip solving through the
/// SkipSolver block/rect overloads, both reading prefix blocks directly.
/// Where a scan genuinely needs an output-sized buffer (e.g. the batched
/// EvaluateEnds below), the buffer is owned by the caller and reused
/// across the scan, sized once up front — never reallocated per position.
class X2Kernel {
 public:
  /// Uses the dispatch the context resolved at build time. Cheap: copies a
  /// function pointer and the inv-probs view, no allocation.
  explicit X2Kernel(const ChiSquareContext& context)
      : inv_probs_(context.inv_probs().data()),
        k_(context.alphabet_size()),
        simd_active_(context.x2_simd_active()),
        fn_(context.x2_range_fn()) {}

  /// Re-resolves for an explicit dispatch (tests, benches, audits).
  X2Kernel(const ChiSquareContext& context, X2Dispatch dispatch)
      : inv_probs_(context.inv_probs().data()),
        k_(context.alphabet_size()),
        fn_(internal::ResolveX2RangeFn(context.alphabet_size(), dispatch,
                                       &simd_active_)) {}

  /// X² from two raw position-major blocks (counts.BlockAt). The inner-
  /// loop entry point: scanners hoist the start block pointer and stream
  /// endpoint blocks through this.
  double EvaluateBlocks(const int64_t* start_block, const int64_t* end_block,
                        int64_t l) const {
    if (l == 0) return 0.0;
    return fn_(start_block, end_block, inv_probs_, k_,
               static_cast<double>(l));
  }

  /// X² of a raw window-count block (counts[c] = occurrences of symbol c
  /// in a window of length l) — the streaming-detector entry point, where
  /// windows are maintained as live counters rather than prefix
  /// differences. Implemented as EvaluateBlocks against a shared all-zero
  /// start block, so it runs the same resolved dispatch (fixed-k / AVX2 /
  /// scalar) as the offline scanners and is bit-identical to the legacy
  /// ChiSquareContext::Evaluate(counts, l) on the scalar paths. Symbol
  /// alphabets are byte-coded, so k <= 256 by construction (DCHECKed).
  double EvaluateCounts(const int64_t* counts, int64_t l) const {
    SIGSUB_DCHECK(k_ <= kMaxAlphabet);
    return EvaluateBlocks(ZeroBlock(), counts, l);
  }

  /// X² of S[start, end).
  double EvaluateRange(const seq::PrefixCounts& counts, int64_t start,
                       int64_t end) const {
    SIGSUB_DCHECK(counts.alphabet_size() == k_);
    return EvaluateBlocks(counts.BlockAt(start), counts.BlockAt(end),
                          end - start);
  }

  /// Batched form: pins the start block once and streams the endpoint
  /// blocks — the inner-loop shape of the chain-cover MSS scan and the
  /// top-t/threshold scans. out[i] = X²(S[start, ends[i])). `out` is a
  /// caller-owned buffer (see the scratch convention above) with
  /// out.size() >= ends.size().
  void EvaluateEnds(const seq::PrefixCounts& counts, int64_t start,
                    std::span<const int64_t> ends,
                    std::span<double> out) const {
    SIGSUB_DCHECK(counts.alphabet_size() == k_);
    SIGSUB_DCHECK(out.size() >= ends.size());
    const int64_t* lo = counts.BlockAt(start);
    for (size_t i = 0; i < ends.size(); ++i) {
      int64_t l = ends[i] - start;
      out[i] = l == 0 ? 0.0
                      : fn_(lo, counts.BlockAt(ends[i]), inv_probs_, k_,
                            static_cast<double>(l));
    }
  }

  /// X² of the rectangle [r0, r1) × [c0, c1) of a grid, fused over the
  /// per-symbol planes (no scratch). The grid layout is plane-per-symbol,
  /// so this is always the scalar reduction; it exists so the 2-D scan
  /// follows the same no-scratch convention as the 1-D scans.
  double EvaluateRect(const seq::GridPrefixCounts& counts, int64_t r0,
                      int64_t r1, int64_t c0, int64_t c1) const {
    SIGSUB_DCHECK(counts.alphabet_size() == k_);
    int64_t l = (r1 - r0) * (c1 - c0);
    if (l == 0) return 0.0;
    double sum = 0.0;
    for (int c = 0; c < k_; ++c) {
      double y = static_cast<double>(counts.CountInRect(c, r0, r1, c0, c1));
      sum += y * y * inv_probs_[c];
    }
    double dl = static_cast<double>(l);
    return sum / dl - dl;
  }

  /// As above, but also stores the gathered count vector into the
  /// caller-owned `counts_out` (size k; see the scratch convention above)
  /// in the same pass. For scans that feed the counts to the SkipSolver
  /// afterwards: the 4-lookup-per-symbol rectangle gather happens once
  /// per candidate instead of once per consumer.
  double EvaluateRect(const seq::GridPrefixCounts& counts, int64_t r0,
                      int64_t r1, int64_t c0, int64_t c1,
                      std::span<int64_t> counts_out) const {
    SIGSUB_DCHECK(counts.alphabet_size() == k_);
    SIGSUB_DCHECK(static_cast<int>(counts_out.size()) == k_);
    int64_t l = (r1 - r0) * (c1 - c0);
    double sum = 0.0;
    for (int c = 0; c < k_; ++c) {
      int64_t y = counts.CountInRect(c, r0, r1, c0, c1);
      counts_out[c] = y;
      double dy = static_cast<double>(y);
      sum += dy * dy * inv_probs_[c];
    }
    if (l == 0) return 0.0;
    double dl = static_cast<double>(l);
    return sum / dl - dl;
  }

  /// True when the resolved implementation is the SIMD path.
  bool simd_active() const { return simd_active_; }

  int alphabet_size() const { return k_; }

 private:
  static constexpr int kMaxAlphabet = 256;  // Byte-coded symbols.

  /// Shared k-wide (<= 256) block of zeros backing EvaluateCounts.
  static const int64_t* ZeroBlock();

  const double* inv_probs_;
  int k_;
  // Initialized before fn_ (declaration order): ResolveX2RangeFn writes it
  // while fn_'s initializer runs in the explicit-dispatch constructor.
  bool simd_active_ = false;
  X2RangeFn fn_;
};

namespace internal {

/// AVX2 entry points, defined in x2_kernel_avx2.cc — only when the build
/// enables SIGSUB_X2_AVX2 (CMake probes the compiler for -mavx2). Callers
/// must first check SimdAvailable(): the TU is compiled for AVX2, so the
/// functions may only execute on a CPU that reports the feature.
double X2RangeAvx2(const int64_t* lo, const int64_t* hi,
                   const double* inv_probs, int k, double l);
double X2RangeAvx2K4(const int64_t* lo, const int64_t* hi,
                     const double* inv_probs, int k, double l);
double X2RangeAvx2K8(const int64_t* lo, const int64_t* hi,
                     const double* inv_probs, int k, double l);

}  // namespace internal

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_X2_KERNEL_H_
