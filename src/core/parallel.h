#ifndef SIGSUB_CORE_PARALLEL_H_
#define SIGSUB_CORE_PARALLEL_H_

#include <cstdint>
#include <span>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/atomic_max.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Multi-threaded MSS (Problem 1). Start positions are strided across
/// threads; each thread runs the same chain-cover skip scan against a
/// shared atomic X²_max, so a discovery by any thread immediately widens
/// every thread's skips. Exact: a substring is only ever skipped when its
/// cover bound is at most the shared maximum at that instant, which never
/// exceeds the final maximum.
///
/// The returned X² value equals the sequential algorithm's; when several
/// substrings tie at the maximum, which one is reported may vary across
/// runs (thread interleaving picks the witness).
///
/// `num_threads` <= 0 selects std::thread::hardware_concurrency().
Result<MssResult> FindMssParallel(const seq::Sequence& sequence,
                                  const seq::MultinomialModel& model,
                                  int num_threads = 0);

/// Kernel variant (see FindMss). Runs the shards on a transient
/// ThreadPool of `num_threads` workers (inline when num_threads == 1).
MssResult FindMssParallel(const seq::PrefixCounts& counts,
                          const ChiSquareContext& context,
                          int num_threads = 0);

/// One strided shard of the parallel scan: start positions
/// n-1-shard, n-1-shard-num_shards, ... with the chain-cover skip bound
/// read from (and published to) `shared_best`. Exposed so external
/// executors — engine::Engine splitting one oversized record across its
/// ThreadPool — can schedule shards themselves; FindMssParallel is the
/// packaged composition. Pure apart from `shared_best`; shards of one
/// scan may run concurrently in any order.
MssResult MssShardScan(const seq::PrefixCounts& counts,
                       const ChiSquareContext& context, int shard,
                       int num_shards, AtomicMax* shared_best);

/// Folds per-shard results into the scan result: the highest-X² witness
/// (first shard wins ties) and summed ScanStats.
MssResult MergeShardResults(std::span<const MssResult> shards);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_PARALLEL_H_
