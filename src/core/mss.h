#ifndef SIGSUB_CORE_MSS_H_
#define SIGSUB_CORE_MSS_H_

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Problem 1 (Most Significant Substring): the substring of `sequence`
/// maximizing the Pearson X² statistic under `model`. This is the paper's
/// Algorithm 1, running in O(k·n^{3/2}) time with high probability via
/// chain-cover skips; worst case O(k·n²).
///
/// Validates that the sequence is non-empty and the alphabet sizes match.
Result<MssResult> FindMss(const seq::Sequence& sequence,
                          const seq::MultinomialModel& model);

/// Kernel variant for callers that already built the prefix counts and
/// evaluation context (benchmarks reuse them across algorithms). Inputs
/// must be consistent (same alphabet size) and non-empty.
MssResult FindMss(const seq::PrefixCounts& counts,
                  const ChiSquareContext& context);

/// Restricted kernel: MSS among substrings contained in [range_start,
/// range_end) with length >= min_length. Shared by the min-length variant
/// (Problem 4) and the disjoint top-t utility. Returns a result with
/// best.length() == 0 if no substring qualifies.
MssResult FindMssInRange(const seq::PrefixCounts& counts,
                         const ChiSquareContext& context, int64_t range_start,
                         int64_t range_end, int64_t min_length);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_MSS_H_
