#include "core/chi_square.h"

#include <algorithm>

#include "common/check.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace core {

ChiSquareContext::ChiSquareContext(std::vector<double> probs,
                                   X2Dispatch dispatch)
    : probs_(std::move(probs)),
      inv_probs_(probs_.size()),
      x2_range_fn_(internal::ResolveX2RangeFn(
          static_cast<int>(probs_.size()), dispatch, &x2_simd_active_)) {
  for (size_t i = 0; i < probs_.size(); ++i) {
    inv_probs_[i] = 1.0 / probs_[i];
  }
}

ChiSquareContext::ChiSquareContext(const seq::MultinomialModel& model,
                                   X2Dispatch dispatch)
    : ChiSquareContext(
          std::vector<double>(model.probs().begin(), model.probs().end()),
          dispatch) {}

Result<ChiSquareContext> ChiSquareContext::Make(std::vector<double> probs,
                                                X2Dispatch dispatch) {
  SIGSUB_ASSIGN_OR_RETURN(seq::MultinomialModel model,
                          seq::MultinomialModel::Make(std::move(probs)));
  return ChiSquareContext(model, dispatch);
}

double ChiSquareContext::Evaluate(std::span<const int64_t> counts,
                                  int64_t l) const {
  SIGSUB_DCHECK(counts.size() == probs_.size());
  if (l == 0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < counts.size(); ++c) {
    double y = static_cast<double>(counts[c]);
    sum += y * y * inv_probs_[c];
  }
  double dl = static_cast<double>(l);
  return sum / dl - dl;
}

double ChiSquareContext::EvaluateRange(const seq::PrefixCounts& counts,
                                       int64_t start, int64_t end) const {
  SIGSUB_DCHECK(counts.alphabet_size() == alphabet_size());
  int64_t l = end - start;
  if (l == 0) return 0.0;
  double sum = 0.0;
  for (int c = 0; c < alphabet_size(); ++c) {
    double y = static_cast<double>(counts.CountInRange(c, start, end));
    sum += y * y * inv_probs_[c];
  }
  double dl = static_cast<double>(l);
  return sum / dl - dl;
}

void ChiSquareContext::Incremental::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  weighted_sum_ = 0.0;
  length_ = 0;
}

void ChiSquareContext::Incremental::Extend(uint8_t symbol) {
  SIGSUB_DCHECK(symbol < counts_.size());
  weighted_sum_ += static_cast<double>(2 * counts_[symbol] + 1) *
                   context_->inv_probs_[symbol];
  ++counts_[symbol];
  ++length_;
}

}  // namespace core
}  // namespace sigsub
