#include "core/blocked_scan.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {

MssResult FindMssBlocked(const seq::Sequence& sequence,
                         const seq::PrefixCounts& counts,
                         const ChiSquareContext& context,
                         int64_t block_size) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(sequence.size() == counts.sequence_size());
  SIGSUB_CHECK(block_size >= 1);
  const int64_t n = sequence.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  SkipSolver solver(context);
  X2Kernel kernel(context);
  const int k = context.alphabet_size();
  bool found = false;

  for (int64_t i = n - 1; i >= 0; --i) {
    ++result.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t end = i + 1;
    while (end <= n) {
      // Examine the block's first ending position.
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++result.stats.positions_examined;
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{i, end, x2};
      }
      int64_t block_last = std::min(end + block_size - 1, n);
      int64_t m = block_last - end;  // Remaining ends inside the block.
      if (m > 0) {
        int64_t safe =
            solver.MaxSafeExtension(lo, hi, l, x2, result.best.chi_square);
        if (safe >= m) {
          // Whole block is dominated: skip it (block granularity only).
          ++result.stats.skip_events;
          result.stats.positions_skipped += m;
        } else {
          // Evaluate the rest of the block, streaming consecutive
          // endpoint blocks (each k entries after the previous) against
          // the pinned start block.
          for (int64_t e = end + 1; e <= block_last; ++e) {
            hi += k;
            double x2e = kernel.EvaluateBlocks(lo, hi, e - i);
            ++result.stats.positions_examined;
            if (x2e > result.best.chi_square) {
              result.best = Substring{i, e, x2e};
            }
          }
        }
      }
      end = block_last + 1;
    }
  }
  return result;
}

Result<MssResult> FindMssBlocked(const seq::Sequence& sequence,
                                 const seq::MultinomialModel& model,
                                 int64_t block_size) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (block_size < 1) {
    return Status::InvalidArgument(
        StrCat("block_size must be >= 1, got ", block_size));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssBlocked(sequence, counts, context, block_size);
}

}  // namespace core
}  // namespace sigsub
