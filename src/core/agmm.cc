#include "core/agmm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {

MssResult FindMssAgmm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(sequence.size() == counts.sequence_size());
  const int64_t n = sequence.size();
  const int k = context.alphabet_size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  X2Kernel kernel(context);
  bool found = false;

  auto consider = [&](int64_t start, int64_t end) {
    if (start >= end) return;
    double x2 = kernel.EvaluateRange(counts, start, end);
    ++result.stats.positions_examined;
    if (x2 > result.best.chi_square || !found) {
      found = true;
      result.best = Substring{start, end, x2};
    }
  };

  // Per-symbol walk state: global extrema of W_c(j) = count_c(j) − j·p_c
  // over j = 0..n, plus the running prefix extrema used for the
  // per-endpoint excursion candidates below. All k walks advance in one
  // position-major pass so the flat counts layout is read contiguously
  // (a per-symbol Row walk would stride by k).
  struct Walk {
    int64_t argmax = 0, argmin = 0;
    double wmax = 0.0, wmin = 0.0;
    int64_t best_up_start = 0, best_up_end = 0;
    int64_t best_down_start = 0, best_down_end = 0;
    double best_up = -1.0, best_down = -1.0;
    int64_t prefix_min_at = 0, prefix_max_at = 0;
    double prefix_min = 0.0, prefix_max = 0.0;
  };
  std::vector<Walk> walks(static_cast<size_t>(k));

  for (int64_t j = 1; j <= n; ++j) {
    for (int c = 0; c < k; ++c) {
      Walk& walk = walks[static_cast<size_t>(c)];
      double w = static_cast<double>(counts.PrefixCount(c, j)) -
                 static_cast<double>(j) * context.probs()[c];
      if (w > walk.wmax) {
        walk.wmax = w;
        walk.argmax = j;
      }
      if (w < walk.wmin) {
        walk.wmin = w;
        walk.argmin = j;
      }
      // Steepest rise (c over-represented) and fall (under-represented)
      // ending at j, measured against the prefix extrema. Normalizing by
      // sqrt(length) approximates the X² objective for the excursion.
      double up = w - walk.prefix_min;
      if (up > 0.0) {
        double score =
            up * up / static_cast<double>(j - walk.prefix_min_at);
        if (score > walk.best_up) {
          walk.best_up = score;
          walk.best_up_start = walk.prefix_min_at;
          walk.best_up_end = j;
        }
      }
      double down = walk.prefix_max - w;
      if (down > 0.0) {
        double score =
            down * down / static_cast<double>(j - walk.prefix_max_at);
        if (score > walk.best_down) {
          walk.best_down = score;
          walk.best_down_start = walk.prefix_max_at;
          walk.best_down_end = j;
        }
      }
      if (w < walk.prefix_min) {
        walk.prefix_min = w;
        walk.prefix_min_at = j;
      }
      if (w > walk.prefix_max) {
        walk.prefix_max = w;
        walk.prefix_max_at = j;
      }
    }
  }
  result.stats.positions_examined += k * n;  // One walk evaluation per index.

  for (int c = 0; c < k; ++c) {
    const Walk& walk = walks[static_cast<size_t>(c)];
    int64_t lo = std::min(walk.argmax, walk.argmin);
    int64_t hi = std::max(walk.argmax, walk.argmin);
    consider(lo, hi);            // The largest excursion of W_c.
    consider(0, walk.argmax);    // Prefix up to the global max.
    consider(0, walk.argmin);    // Prefix down to the global min.
    consider(walk.argmax, n);    // Suffix after the global max.
    consider(walk.argmin, n);    // Suffix after the global min.
    consider(walk.best_up_start, walk.best_up_end);  // Steepest norm. rise.
    consider(walk.best_down_start,
             walk.best_down_end);                    // Steepest norm. fall.
  }
  result.stats.start_positions = k;
  return result;
}

Result<MssResult> FindMssAgmm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssAgmm(sequence, counts, context);
}

}  // namespace core
}  // namespace sigsub
