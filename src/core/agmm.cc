#include "core/agmm.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace core {

MssResult FindMssAgmm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(sequence.size() == counts.sequence_size());
  const int64_t n = sequence.size();
  const int k = context.alphabet_size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  std::vector<int64_t> scratch(k);
  bool found = false;

  auto consider = [&](int64_t start, int64_t end) {
    if (start >= end) return;
    counts.FillCounts(start, end, scratch);
    double x2 = context.Evaluate(scratch, end - start);
    ++result.stats.positions_examined;
    if (x2 > result.best.chi_square || !found) {
      found = true;
      result.best = Substring{start, end, x2};
    }
  };

  for (int c = 0; c < k; ++c) {
    const double p = context.probs()[c];
    std::span<const int64_t> row = counts.Row(c);
    // Global extrema of W_c(j) = row[j] − j·p over j = 0..n, plus the
    // running prefix extrema used for the per-endpoint excursion
    // candidates below.
    int64_t argmax = 0, argmin = 0;
    double wmax = 0.0, wmin = 0.0;
    int64_t best_up_start = 0, best_up_end = 0;
    int64_t best_down_start = 0, best_down_end = 0;
    double best_up = -1.0, best_down = -1.0;
    int64_t prefix_min_at = 0, prefix_max_at = 0;
    double prefix_min = 0.0, prefix_max = 0.0;
    for (int64_t j = 1; j <= n; ++j) {
      double w = static_cast<double>(row[j]) - static_cast<double>(j) * p;
      if (w > wmax) {
        wmax = w;
        argmax = j;
      }
      if (w < wmin) {
        wmin = w;
        argmin = j;
      }
      // Steepest rise (c over-represented) and fall (under-represented)
      // ending at j, measured against the prefix extrema. Normalizing by
      // sqrt(length) approximates the X² objective for the excursion.
      double up = w - prefix_min;
      if (up > 0.0) {
        double score = up * up / static_cast<double>(j - prefix_min_at);
        if (score > best_up) {
          best_up = score;
          best_up_start = prefix_min_at;
          best_up_end = j;
        }
      }
      double down = prefix_max - w;
      if (down > 0.0) {
        double score = down * down / static_cast<double>(j - prefix_max_at);
        if (score > best_down) {
          best_down = score;
          best_down_start = prefix_max_at;
          best_down_end = j;
        }
      }
      if (w < prefix_min) {
        prefix_min = w;
        prefix_min_at = j;
      }
      if (w > prefix_max) {
        prefix_max = w;
        prefix_max_at = j;
      }
    }
    result.stats.positions_examined += n;  // One walk evaluation per index.
    int64_t lo = std::min(argmax, argmin);
    int64_t hi = std::max(argmax, argmin);
    consider(lo, hi);       // The largest excursion of W_c.
    consider(0, argmax);    // Prefix up to the global max.
    consider(0, argmin);    // Prefix down to the global min.
    consider(argmax, n);    // Suffix after the global max.
    consider(argmin, n);    // Suffix after the global min.
    consider(best_up_start, best_up_end);      // Steepest normalized rise.
    consider(best_down_start, best_down_end);  // Steepest normalized fall.
  }
  result.stats.start_positions = k;
  return result;
}

Result<MssResult> FindMssAgmm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssAgmm(sequence, counts, context);
}

}  // namespace core
}  // namespace sigsub
