#ifndef SIGSUB_CORE_SIGNIFICANCE_H_
#define SIGSUB_CORE_SIGNIFICANCE_H_

#include <cstdint>

#include "common/result.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// A substring together with its significance annotations: the asymptotic
/// p-value 1 − F_{χ²(k−1)}(X²) (paper Section 1) and the likelihood-ratio
/// statistic G² (paper Eq. 3) for cross-checking.
struct ScoredSubstring {
  Substring substring;
  double p_value = 1.0;
  double g2 = 0.0;
};

/// Asymptotic p-value of an X² value for alphabet size k (>= 2).
double SubstringPValue(double chi_square, int alphabet_size);

/// Scores the substring [start, end) of `sequence` under `model`:
/// X², p-value and G². Validates bounds and alphabet compatibility.
Result<ScoredSubstring> ScoreSubstring(const seq::Sequence& sequence,
                                       const seq::MultinomialModel& model,
                                       int64_t start, int64_t end);

/// Convenience: annotates an MSS result with its p-value.
Result<ScoredSubstring> ScoreResult(const seq::Sequence& sequence,
                                    const seq::MultinomialModel& model,
                                    const MssResult& result);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_SIGNIFICANCE_H_
