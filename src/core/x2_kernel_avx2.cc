// AVX2 implementation of the fused X² range kernel. This translation unit
// is the only one in the library compiled with -mavx2 (see CMakeLists.txt),
// so AVX2 instructions cannot leak into code that runs before the runtime
// CPU check: callers reach these functions only through
// internal::ResolveX2RangeFn, which gates on SimdAvailable().
//
// Counts are converted int64 → double with the 2^52 bias trick
// (AVX2 has no native int64 → double conversion; that arrived with
// AVX-512DQ): for 0 <= v < 2^52, OR-ing v into the mantissa of the double
// 2^52 and subtracting 2^52 yields exactly double(v). Substring counts are
// bounded by the sequence length, so the precondition only excludes
// petabyte-scale inputs (documented on X2RangeFn).

#if defined(SIGSUB_X2_AVX2)

#include <cstdint>
#include <immintrin.h>

namespace sigsub {
namespace core {
namespace internal {
namespace {

inline __m256d CountsToDouble(__m256i v) {
  const __m256i kBias = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, kBias)),
                       _mm256_castsi256_pd(kBias));
}

/// One 4-lane step: acc += (double(hi − lo))² · inv.
inline __m256d Accumulate(__m256d acc, const int64_t* lo, const int64_t* hi,
                          const double* inv_probs) {
  __m256i ylo =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo));
  __m256i yhi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi));
  __m256d y = CountsToDouble(_mm256_sub_epi64(yhi, ylo));
  __m256d w = _mm256_loadu_pd(inv_probs);
  return _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(y, y), w));
}

/// Deterministic horizontal reduction: (lane0 + lane2) + (lane1 + lane3).
/// A fixed order keeps the SIMD path itself reproducible run to run, even
/// though it differs from the scalar left-to-right order (hence the
/// 1e-12 relative agreement gate rather than bit-identity).
inline double HorizontalSum(__m256d acc) {
  __m128d low = _mm256_castpd256_pd128(acc);
  __m128d high = _mm256_extractf128_pd(acc, 1);
  __m128d pair = _mm_add_pd(low, high);
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

}  // namespace

double X2RangeAvx2(const int64_t* lo, const int64_t* hi,
                   const double* inv_probs, int k, double l) {
  __m256d acc = _mm256_setzero_pd();
  int c = 0;
  for (; c + 4 <= k; c += 4) {
    acc = Accumulate(acc, lo + c, hi + c, inv_probs + c);
  }
  double sum = HorizontalSum(acc);
  for (; c < k; ++c) {
    double y = static_cast<double>(hi[c] - lo[c]);
    sum += y * y * inv_probs[c];
  }
  return sum / l - l;
}

double X2RangeAvx2K4(const int64_t* lo, const int64_t* hi,
                     const double* inv_probs, int /*k*/, double l) {
  __m256d acc = Accumulate(_mm256_setzero_pd(), lo, hi, inv_probs);
  return HorizontalSum(acc) / l - l;
}

double X2RangeAvx2K8(const int64_t* lo, const int64_t* hi,
                     const double* inv_probs, int /*k*/, double l) {
  __m256d acc = Accumulate(_mm256_setzero_pd(), lo, hi, inv_probs);
  acc = Accumulate(acc, lo + 4, hi + 4, inv_probs + 4);
  return HorizontalSum(acc) / l - l;
}

}  // namespace internal
}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_X2_AVX2
