#include "core/arlm.h"

#include <span>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {

std::vector<int64_t> ArlmCandidateBoundaries(const seq::Sequence& sequence) {
  const int64_t n = sequence.size();
  std::vector<int64_t> boundaries;
  boundaries.reserve(static_cast<size_t>(n) / 2 + 2);
  boundaries.push_back(0);
  for (int64_t j = 1; j < n; ++j) {
    if (sequence[j - 1] != sequence[j]) boundaries.push_back(j);
  }
  boundaries.push_back(n);
  return boundaries;
}

MssResult FindMssArlm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(sequence.size() == counts.sequence_size());
  std::vector<int64_t> boundaries = ArlmCandidateBoundaries(sequence);
  const size_t m = boundaries.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  X2Kernel kernel(context);
  // Caller-owned X² buffer (see the scratch convention in x2_kernel.h):
  // sized once for the longest endpoint batch, reused for every start.
  std::vector<double> x2s(m > 1 ? m - 1 : 0);
  bool found = false;
  for (size_t bi = 0; bi + 1 < m; ++bi) {
    ++result.stats.start_positions;
    int64_t start = boundaries[bi];
    // Batched fused evaluation: pin the start block, stream every later
    // boundary as an endpoint — the EvaluateEnds shape.
    std::span<const int64_t> ends(boundaries.data() + bi + 1, m - bi - 1);
    kernel.EvaluateEnds(counts, start, ends, x2s);
    result.stats.positions_examined += static_cast<int64_t>(ends.size());
    for (size_t j = 0; j < ends.size(); ++j) {
      if (x2s[j] > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{start, ends[j], x2s[j]};
      }
    }
  }
  return result;
}

Result<MssResult> FindMssArlm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssArlm(sequence, counts, context);
}

}  // namespace core
}  // namespace sigsub
