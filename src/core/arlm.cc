#include "core/arlm.h"

#include <vector>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace core {

std::vector<int64_t> ArlmCandidateBoundaries(const seq::Sequence& sequence) {
  const int64_t n = sequence.size();
  std::vector<int64_t> boundaries;
  boundaries.reserve(static_cast<size_t>(n) / 2 + 2);
  boundaries.push_back(0);
  for (int64_t j = 1; j < n; ++j) {
    if (sequence[j - 1] != sequence[j]) boundaries.push_back(j);
  }
  boundaries.push_back(n);
  return boundaries;
}

MssResult FindMssArlm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(sequence.size() == counts.sequence_size());
  std::vector<int64_t> boundaries = ArlmCandidateBoundaries(sequence);
  const size_t m = boundaries.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  std::vector<int64_t> scratch(context.alphabet_size());
  bool found = false;
  for (size_t bi = 0; bi + 1 < m; ++bi) {
    ++result.stats.start_positions;
    for (size_t bj = bi + 1; bj < m; ++bj) {
      int64_t start = boundaries[bi];
      int64_t end = boundaries[bj];
      counts.FillCounts(start, end, scratch);
      double x2 = context.Evaluate(scratch, end - start);
      ++result.stats.positions_examined;
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{start, end, x2};
      }
    }
  }
  return result;
}

Result<MssResult> FindMssArlm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssArlm(sequence, counts, context);
}

}  // namespace core
}  // namespace sigsub
