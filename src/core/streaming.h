#ifndef SIGSUB_CORE_STREAMING_H_
#define SIGSUB_CORE_STREAMING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "seq/model.h"

namespace sigsub {
namespace core {

/// Online anomaly monitor for the intrusion-detection / monitoring
/// applications the paper motivates (Section 1): symbols arrive one at a
/// time and the detector flags, immediately, suffix windows whose X²
/// exceeds a threshold.
///
/// After each Append the detector evaluates the suffix windows of dyadic
/// lengths 1, 2, 4, ..., max_window (plus max_window itself), O(k·log W)
/// work per symbol with O(W + k·log W) memory (a byte ring of the last W
/// symbols plus one k-wide counter per scale). Coverage rationale: any anomalous
/// interval of length L is contained in the dyadic suffix of length
/// 2^⌈lg L⌉ evaluated at the interval's last position, which dilutes its
/// composition by at most a factor ~2 in length — so a planted anomaly
/// strong enough to clear ~2× dilution is guaranteed to be seen. For exact
/// offline mining use FindAboveThreshold.
class StreamingDetector {
 public:
  struct Options {
    int64_t max_window = 4096;  // Longest suffix window monitored.
    double alpha0 = 0.0;        // Alarm when X² > alpha0.
  };

  /// An alarm raised at stream position `end` (exclusive; i.e. after
  /// `end` symbols total) for the suffix window [end - length, end).
  struct Alarm {
    int64_t end = 0;
    int64_t length = 0;
    double chi_square = 0.0;
  };

  /// Fails if max_window < 1 or alpha0 < 0.
  static Result<StreamingDetector> Make(const seq::MultinomialModel& model,
                                        Options options);

  /// Feeds one symbol; returns the strongest alarming suffix window ending
  /// here, if any window's X² exceeds alpha0. Aborts (SIGSUB_CHECK, every
  /// build mode) if `symbol` is outside the model's alphabet.
  std::optional<Alarm> Append(uint8_t symbol);

  /// Append for untrusted streams: an out-of-range symbol returns
  /// InvalidArgument (the detector state is unchanged) instead of
  /// aborting.
  Result<std::optional<Alarm>> TryAppend(uint8_t symbol);

  /// Total symbols consumed.
  int64_t position() const { return position_; }

  /// The window lengths evaluated at each step (dyadic + max).
  const std::vector<int64_t>& scales() const { return scales_; }

 private:
  StreamingDetector(const seq::MultinomialModel& model, Options options);

  ChiSquareContext context_;
  Options options_;
  std::vector<int64_t> scales_;
  // window_counts_[si] = symbol counts of the last min(scales_[si],
  // position_) symbols, maintained incrementally: O(1) add/expire per
  // scale per Append, O(k·log W) memory total.
  std::vector<std::vector<int64_t>> window_counts_;
  // Ring of the last max_window + 1 symbols, so each window knows which
  // symbol slides out of it.
  std::vector<uint8_t> recent_;
  int64_t position_ = 0;
};

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_STREAMING_H_
