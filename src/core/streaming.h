#ifndef SIGSUB_CORE_STREAMING_H_
#define SIGSUB_CORE_STREAMING_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/x2_dispatch.h"
#include "core/x2_kernel.h"
#include "seq/model.h"

namespace sigsub {
namespace core {

/// Online anomaly monitor for the intrusion-detection / monitoring
/// applications the paper motivates (Section 1): symbols arrive in chunks
/// (or one at a time) and the detector flags suffix windows whose X²
/// exceeds a statistically calibrated threshold.
///
/// After each symbol the detector evaluates the suffix windows of dyadic
/// lengths 1, 2, 4, ..., max_window (plus max_window itself), O(k·log W)
/// work per symbol with O(W + k·log W) memory (a byte ring of the last W
/// symbols plus one k-wide counter block per scale). Coverage rationale:
/// any anomalous interval of length L is contained in the dyadic suffix of
/// length 2^⌈lg L⌉ evaluated at the interval's last position, which dilutes
/// its composition by at most a factor ~2 in length — so a planted anomaly
/// strong enough to clear ~2× dilution is guaranteed to be seen. For exact
/// offline mining use FindAboveThreshold.
///
/// Calibration: `Options::alpha` is the per-position family-wise false-
/// alarm probability across all monitored scales. It is converted once at
/// Make() time into a per-scale X² threshold via the χ²(k−1) quantile
/// (paper Theorem 3: X² of an l-window converges to χ²(k−1)) with a Šidák
/// correction across the m ≈ log₂ W scales: α_scale = 1 − (1−α)^{1/m}.
/// Overlapping windows at successive positions are positively dependent,
/// so the realized alarm rate on a null stream is at or below α per
/// position; the very short scales are discrete and cannot reach deep
/// thresholds at all, which makes the calibration conservative.
///
/// Hysteresis: a sustained anomaly would otherwise alarm at every position
/// while it stays inside a window. After a scale alarms it is silenced
/// until its X² falls below `rearm_fraction · threshold`, so one excursion
/// yields one alarm per scale. `rearm_fraction >= 1` effectively disables
/// hysteresis (every above-threshold position alarms), which is what a
/// false-positive-rate measurement wants.
///
/// Hot path: each scale's window counts live in one position-major k-block
/// of a flat buffer and are scored through a fused X² range kernel
/// (core::X2Kernel::EvaluateCounts, resolved via
/// core::internal::ResolveX2RangeFn like the offline scanners). One
/// deliberate difference from the offline default: under kAuto the
/// detector pins the fixed-k *scalar* kernel. A streaming evaluation
/// reads one L1-resident counter block per call, so the AVX2 path's
/// int64→double conversion and horizontal-sum latency dominate — measured
/// 4–6x slower than the unrolled scalar specialization on this shape
/// (bench/streaming.cc); the SIMD kernels earn their keep streaming
/// *prefix* blocks, which streaming windows never do. An explicit kSimd
/// request is still honored. A bonus of scalar-by-default: per-symbol
/// scoring is bit-identical to the legacy span-based
/// ChiSquareContext::Evaluate path.
///
/// AppendChunk() amortizes ring maintenance and walks the chunk one scale
/// at a time. Within a chunk each scale maintains its weighted sum
/// ws = Σ Y_c²/p_c incrementally — O(1) per slide (append symbol a:
/// ws += (2Y_a+1)/p_a; expire b: ws −= (2Y_b−1)/p_b; X² = ws/l − l with
/// 1/l precomputed) instead of the O(k) full reduction per position — and
/// reseeds ws from the counter block through the fused kernel at each
/// chunk boundary, so floating-point drift never spans more than one
/// chunk. Consequence: AppendChunk X² values agree with per-symbol
/// Append to ~1e-12 relative (not bit-exactly); counter state, and hence
/// CurrentChiSquares(), is bit-identical for any chunking.
class StreamingDetector {
 public:
  struct Options {
    int64_t max_window = 4096;  // Longest suffix window monitored.
    /// Per-position family-wise significance level across all monitored
    /// scales; converted to per-scale X² thresholds at Make() time. The
    /// default is deliberately deep: a production stream appends millions
    /// of symbols, so a per-position α of 1e-6 keeps a null stream quiet
    /// for ~10⁶ positions. (The former `alpha0 = 0.0` raw-X² default
    /// alarmed on essentially every append.)
    double alpha = 1e-6;
    /// Raw X² threshold override applied to every scale when >= 0:
    /// bypasses the calibrated quantile path. For research loops and
    /// exact-parity tests against offline scans.
    double x2_threshold = -1.0;
    /// Hysteresis rearm level as a fraction of the alarm threshold; see
    /// the class comment. Must be >= 0 (may exceed 1, or be +infinity to
    /// alarm on every above-threshold position).
    double rearm_fraction = 0.5;
    /// Fused-kernel selection for per-position window scoring. kAuto
    /// resolves to the fixed-k scalar specialization (see the class
    /// comment for why SIMD loses on single counter blocks); kSimd
    /// forces the vector path where available.
    X2Dispatch x2_dispatch = X2Dispatch::kAuto;
  };

  /// An alarm raised at stream position `end` (exclusive; i.e. after
  /// `end` symbols total) for the suffix window [end - length, end).
  struct Alarm {
    int64_t end = 0;
    int64_t length = 0;
    double chi_square = 0.0;
    double p_value = 1.0;  // Asymptotic χ²(k−1) tail of chi_square.
  };

  /// The detector's mutable state — everything Make() does not rederive
  /// from the model and Options. SaveState/RestoreState round-trip a
  /// detector bit-identically within one build: restore into a detector
  /// made with the same model and Options, and every subsequent Append
  /// produces the same counters, X² values, and alarms as the original
  /// would have. persist/snapshot.{h,cc} serializes this struct.
  struct State {
    int64_t position = 0;
    int64_t alarms_raised = 0;
    std::vector<int64_t> counts;    // scales × k, position-major.
    std::vector<uint8_t> in_alarm;  // Per-scale hysteresis flags (0/1).
    std::vector<uint8_t> recent;    // Symbol ring, max_window + 1 wide.
  };

  /// Fails if max_window < 1, alpha outside (0, 1) (when the calibrated
  /// path is active), or rearm_fraction < 0 / NaN.
  static Result<StreamingDetector> Make(const seq::MultinomialModel& model,
                                        Options options);

  /// As above over a prebuilt (shared) evaluation context — how
  /// engine::StreamManager amortizes one ChiSquareContext across every
  /// stream monitored under the same model.
  static Result<StreamingDetector> Make(
      std::shared_ptr<const ChiSquareContext> context, Options options);

  /// Feeds one symbol; returns the strongest alarm newly raised here, if
  /// any scale crossed its threshold (hysteresis-filtered). Aborts
  /// (SIGSUB_CHECK, every build mode) if `symbol` is outside the model's
  /// alphabet.
  std::optional<Alarm> Append(uint8_t symbol);

  /// Append for untrusted streams: an out-of-range symbol returns
  /// InvalidArgument (the detector state is unchanged) instead of
  /// aborting.
  Result<std::optional<Alarm>> TryAppend(uint8_t symbol);

  /// Feeds a chunk of symbols and returns every alarm raised inside it,
  /// ordered by (end, length). Bit-identical to feeding the symbols
  /// through Append one at a time (same kernel, same per-scale operation
  /// order), but amortizes ring maintenance and evaluates the chunk one
  /// scale at a time — the batched-ingestion hot path. Aborts on an
  /// out-of-range symbol (checked up front, before any state changes).
  std::vector<Alarm> AppendChunk(std::span<const uint8_t> symbols);

  /// AppendChunk for untrusted streams: validates every symbol first and
  /// returns InvalidArgument (state unchanged) instead of aborting.
  Result<std::vector<Alarm>> TryAppendChunk(std::span<const uint8_t> symbols);

  /// Copies out the mutable state for persistence (see State).
  State SaveState() const;

  /// Adopts `state` into a detector built with the same model and
  /// Options. On-disk state is untrusted after a crash, so this
  /// validates before touching anything: buffer shapes must match this
  /// detector's geometry, counters must be non-negative and sum to
  /// min(scale, position) per scale, ring symbols must be inside the
  /// alphabet. InvalidArgument (detector unchanged) otherwise — corrupt
  /// state is named, never silently adopted.
  Status RestoreState(const State& state);

  /// The options the detector was built with (what a snapshot must
  /// persist to rebuild it).
  const Options& options() const { return options_; }

  /// Total symbols consumed.
  int64_t position() const { return position_; }

  int alphabet_size() const { return context_->alphabet_size(); }

  /// The window lengths evaluated at each step (dyadic + max).
  const std::vector<int64_t>& scales() const { return scales_; }

  /// Per-scale X² alarm thresholds resolved at Make() time (parallel to
  /// scales()).
  std::span<const double> scale_thresholds() const { return thresholds_; }

  /// Total alarms raised over the detector's lifetime (every scale's
  /// threshold crossings, not just the strongest-per-position ones
  /// Append() returns).
  int64_t alarms_raised() const { return alarms_raised_; }

  /// Current X² of every monitored scale, evaluated over the last
  /// min(scale, position()) symbols (0 when the stream is empty).
  /// Snapshot/inspection path — allocates.
  std::vector<double> CurrentChiSquares() const;

 private:
  StreamingDetector(std::shared_ptr<const ChiSquareContext> context,
                    Options options);

  std::shared_ptr<const ChiSquareContext> context_;
  Options options_;
  // Per-position scoring kernel: resolved once via ResolveX2RangeFn with
  // kAuto mapped to the scalar fixed-k path (see the class comment).
  X2Kernel kernel_;
  std::vector<int64_t> scales_;
  std::vector<double> thresholds_;  // Per-scale alarm level.
  std::vector<double> rearm_;       // Per-scale hysteresis rearm level.
  std::vector<uint8_t> in_alarm_;   // Per-scale hysteresis state.
  // counts_[si*k + c] = occurrences of symbol c among the last
  // min(scales_[si], position_) symbols — one position-major k-block per
  // scale, maintained incrementally (O(1) add/expire per scale per
  // symbol) and scored in place by the fused kernel.
  std::vector<int64_t> counts_;
  // Ring of the last max_window + 1 symbols, so each window knows which
  // symbol slides out of it.
  std::vector<uint8_t> recent_;
  int64_t position_ = 0;
  int64_t alarms_raised_ = 0;
};

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_STREAMING_H_
