#ifndef SIGSUB_CORE_MIN_LENGTH_H_
#define SIGSUB_CORE_MIN_LENGTH_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Problem 4 (MSS above a given length): the highest-X² substring among
/// those of length >= min_length. The paper (Section 6.3) phrases the
/// constraint as length strictly greater than Γ₀; that maps to
/// min_length = Γ₀ + 1 here. Complexity O(k·(n − min_length)·(√n − √Γ₀))
/// w.h.p. (paper Section 6.3).
Result<MssResult> FindMssMinLength(const seq::Sequence& sequence,
                                   const seq::MultinomialModel& model,
                                   int64_t min_length);

/// Kernel variant (see FindMss).
MssResult FindMssMinLength(const seq::PrefixCounts& counts,
                           const ChiSquareContext& context,
                           int64_t min_length);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_MIN_LENGTH_H_
