#include "core/mss_2d.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {
namespace {

Status ValidateInput(const seq::Grid& grid,
                     const seq::MultinomialModel& model) {
  if (grid.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("grid alphabet size (", grid.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  return Status::OK();
}

}  // namespace

Mss2dResult FindMss2d(const seq::GridPrefixCounts& counts,
                      const ChiSquareContext& context) {
  SIGSUB_CHECK(counts.alphabet_size() == context.alphabet_size());
  const int64_t rows = counts.rows();
  const int64_t cols = counts.cols();
  Mss2dResult result;
  SkipSolver solver(context);
  X2Kernel kernel(context);
  // Caller-owned count buffer (see the scratch convention in x2_kernel.h):
  // the 4-lookup-per-symbol rectangle gather runs once per candidate and
  // feeds both the fused evaluation and the skip solver.
  std::vector<int64_t> rect_counts(
      static_cast<size_t>(context.alphabet_size()));
  double best = 0.0;
  bool found = false;

  for (int64_t r0 = 0; r0 < rows; ++r0) {
    for (int64_t r1 = r0 + 1; r1 <= rows; ++r1) {
      const int64_t height = r1 - r0;
      ++result.stats.start_positions;  // One scan row per band/start combo.
      for (int64_t c0 = 0; c0 < cols; ++c0) {
        int64_t c1 = c0 + 1;
        while (c1 <= cols) {
          int64_t l = height * (c1 - c0);
          double x2 =
              kernel.EvaluateRect(counts, r0, r1, c0, c1, rect_counts);
          ++result.stats.positions_examined;
          if (x2 > best || !found) {
            best = x2;
            found = true;
            result.best = Rectangle{r0, r1, c0, c1, x2};
          }
          // A rectangle extended by one column appends `height` cells, so
          // a safe character extension of m licenses floor(m / height)
          // skipped columns (Theorem 1 bounds ALL extensions by <= m
          // characters, in particular the column-structured ones).
          int64_t safe_chars =
              solver.MaxSafeExtension(rect_counts, l, x2, best);
          int64_t col_skip = safe_chars / height;
          if (col_skip > 0) {
            ++result.stats.skip_events;
            int64_t last_skipped = std::min(c1 + col_skip, cols);
            if (last_skipped > c1) {
              result.stats.positions_skipped += last_skipped - c1;
            }
          }
          c1 += col_skip + 1;
        }
      }
    }
  }
  return result;
}

Result<Mss2dResult> FindMss2d(const seq::Grid& grid,
                              const seq::MultinomialModel& model) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(grid, model));
  seq::GridPrefixCounts counts(grid);
  ChiSquareContext context(model);
  return FindMss2d(counts, context);
}

Result<Mss2dResult> NaiveFindMss2d(const seq::Grid& grid,
                                   const seq::MultinomialModel& model) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(grid, model));
  seq::GridPrefixCounts counts(grid);
  ChiSquareContext context(model);
  const int64_t rows = grid.rows();
  const int64_t cols = grid.cols();
  X2Kernel kernel(context);
  Mss2dResult result;
  double best = 0.0;
  bool found = false;
  for (int64_t r0 = 0; r0 < rows; ++r0) {
    for (int64_t r1 = r0 + 1; r1 <= rows; ++r1) {
      ++result.stats.start_positions;
      for (int64_t c0 = 0; c0 < cols; ++c0) {
        for (int64_t c1 = c0 + 1; c1 <= cols; ++c1) {
          double x2 = kernel.EvaluateRect(counts, r0, r1, c0, c1);
          ++result.stats.positions_examined;
          if (x2 > best || !found) {
            best = x2;
            found = true;
            result.best = Rectangle{r0, r1, c0, c1, x2};
          }
        }
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace sigsub
