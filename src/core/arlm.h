#ifndef SIGSUB_CORE_ARLM_H_
#define SIGSUB_CORE_ARLM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// ARLM baseline — reconstruction of the local-maxima heuristic of Dutta &
/// Bhattacharya (PAKDD 2010), the paper's reference [9]. See DESIGN.md
/// §2.1 for the reconstruction rationale.
///
/// Candidate boundaries are the extrema of the per-character deviation
/// walks W_c(j) = count_c(S[0..j)) − j·p_c. W_c changes direction at j
/// exactly when S[j−1] and S[j] disagree on being c, so the union of
/// extrema over all characters is the set of run boundaries of the string
/// (plus both ends). ARLM evaluates X² over every pair of candidate
/// boundaries: O(k·m²) for m run boundaries — Θ(n²) on random strings but
/// with a constant several times smaller than the trivial scan, and it
/// finds the true MSS on well-behaved inputs (the paper observed it match
/// the optimum at n = 20000 and fall marginally short at n = 80000;
/// being a conjecture, it carries no guarantee).
///
/// Always returns a real substring's X², hence never exceeds the true MSS.
Result<MssResult> FindMssArlm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model);

/// Kernel variant.
MssResult FindMssArlm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context);

/// The candidate boundary positions ARLM scans (run boundaries plus 0 and
/// n), exposed for tests.
std::vector<int64_t> ArlmCandidateBoundaries(const seq::Sequence& sequence);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_ARLM_H_
