#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"

namespace sigsub {
namespace core {
namespace {

/// Lock-free monotone maximum over doubles (all values non-negative here).
class AtomicMax {
 public:
  double load() const { return value_.load(std::memory_order_relaxed); }

  void Update(double candidate) {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace

MssResult FindMssParallel(const seq::PrefixCounts& counts,
                          const ChiSquareContext& context, int num_threads) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  const int64_t n = counts.sequence_size();
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads = static_cast<int>(
      std::min<int64_t>(num_threads, std::max<int64_t>(1, n)));

  AtomicMax shared_best;
  std::vector<MssResult> per_thread(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);

  auto scan_strided = [&](int tid) {
    MssResult& local = per_thread[tid];
    local.best = Substring{0, 0, 0.0};
    SkipSolver solver(context);
    std::vector<int64_t> scratch(context.alphabet_size());
    bool found = false;
    for (int64_t i = n - 1 - tid; i >= 0; i -= num_threads) {
      ++local.stats.start_positions;
      int64_t end = i + 1;
      while (end <= n) {
        counts.FillCounts(i, end, scratch);
        int64_t l = end - i;
        double x2 = context.Evaluate(scratch, l);
        ++local.stats.positions_examined;
        if (x2 > local.best.chi_square || !found) {
          found = true;
          local.best = Substring{i, end, x2};
          shared_best.Update(x2);
        }
        int64_t skip =
            solver.MaxSafeExtension(scratch, l, x2, shared_best.load());
        if (skip > 0) {
          ++local.stats.skip_events;
          int64_t last_skipped = std::min(end + skip, n);
          if (last_skipped > end) {
            local.stats.positions_skipped += last_skipped - end;
          }
        }
        end += skip + 1;
      }
    }
  };

  if (num_threads == 1) {
    scan_strided(0);
  } else {
    for (int tid = 0; tid < num_threads; ++tid) {
      workers.emplace_back(scan_strided, tid);
    }
    for (auto& worker : workers) worker.join();
  }

  MssResult result = per_thread[0];
  for (int tid = 1; tid < num_threads; ++tid) {
    if (per_thread[tid].best.chi_square > result.best.chi_square) {
      result.best = per_thread[tid].best;
    }
    result.stats.Merge(per_thread[tid].stats);
  }
  return result;
}

Result<MssResult> FindMssParallel(const seq::Sequence& sequence,
                                  const seq::MultinomialModel& model,
                                  int num_threads) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssParallel(counts, context, num_threads);
}

}  // namespace core
}  // namespace sigsub
