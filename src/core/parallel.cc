#include "core/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {

MssResult MssShardScan(const seq::PrefixCounts& counts,
                       const ChiSquareContext& context, int shard,
                       int num_shards, AtomicMax* shared_best) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  SIGSUB_CHECK(shard >= 0 && shard < num_shards);
  const int64_t n = counts.sequence_size();
  MssResult local;
  local.best = Substring{0, 0, 0.0};
  SkipSolver solver(context);
  X2Kernel kernel(context);
  bool found = false;
  for (int64_t i = n - 1 - shard; i >= 0; i -= num_shards) {
    ++local.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t end = i + 1;
    while (end <= n) {
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++local.stats.positions_examined;
      if (x2 > local.best.chi_square || !found) {
        found = true;
        local.best = Substring{i, end, x2};
        shared_best->Update(x2);
      }
      int64_t skip =
          solver.MaxSafeExtension(lo, hi, l, x2, shared_best->load());
      if (skip > 0) {
        ++local.stats.skip_events;
        int64_t last_skipped = std::min(end + skip, n);
        if (last_skipped > end) {
          local.stats.positions_skipped += last_skipped - end;
        }
      }
      end += skip + 1;
    }
  }
  return local;
}

MssResult MergeShardResults(std::span<const MssResult> shards) {
  SIGSUB_CHECK(!shards.empty());
  MssResult result = shards[0];
  for (size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].best.chi_square > result.best.chi_square) {
      result.best = shards[s].best;
    }
    result.stats.Merge(shards[s].stats);
  }
  return result;
}

MssResult FindMssParallel(const seq::PrefixCounts& counts,
                          const ChiSquareContext& context, int num_threads) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  const int64_t n = counts.sequence_size();
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  num_threads = static_cast<int>(
      std::min<int64_t>(num_threads, std::max<int64_t>(1, n)));

  AtomicMax shared_best;
  if (num_threads == 1) {
    return MssShardScan(counts, context, 0, 1, &shared_best);
  }

  std::vector<MssResult> per_shard(num_threads);
  ThreadPool pool(num_threads);
  for (int shard = 0; shard < num_threads; ++shard) {
    MssResult* slot = &per_shard[static_cast<size_t>(shard)];
    pool.Submit([&counts, &context, shard, num_threads, &shared_best, slot] {
      *slot = MssShardScan(counts, context, shard, num_threads, &shared_best);
    });
  }
  pool.Wait();
  return MergeShardResults(per_shard);
}

Result<MssResult> FindMssParallel(const seq::Sequence& sequence,
                                  const seq::MultinomialModel& model,
                                  int num_threads) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssParallel(counts, context, num_threads);
}

}  // namespace core
}  // namespace sigsub
