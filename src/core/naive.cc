#include "core/naive.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"
#include "core/top_t.h"

namespace sigsub {
namespace core {
namespace {

Status ValidateInput(const seq::Sequence& sequence,
                     const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  return Status::OK();
}

}  // namespace

MssResult NaiveFindMss(const seq::Sequence& sequence,
                       const ChiSquareContext& context) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  const int64_t n = sequence.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  ChiSquareContext::Incremental inc(context);
  bool found = false;
  for (int64_t i = 0; i < n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    for (int64_t end = i + 1; end <= n; ++end) {
      inc.Extend(sequence[end - 1]);
      ++result.stats.positions_examined;
      double x2 = inc.chi_square();
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{i, end, x2};
      }
    }
  }
  return result;
}

Result<MssResult> NaiveFindMss(const seq::Sequence& sequence,
                               const seq::MultinomialModel& model) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(sequence, model));
  return NaiveFindMss(sequence, ChiSquareContext(model));
}

TopTResult NaiveFindTopT(const seq::Sequence& sequence,
                         const ChiSquareContext& context, int64_t t) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(t >= 1);
  const int64_t n = sequence.size();
  TopTResult result;
  TopTCollector collector(t);
  ChiSquareContext::Incremental inc(context);
  for (int64_t i = 0; i < n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    for (int64_t end = i + 1; end <= n; ++end) {
      inc.Extend(sequence[end - 1]);
      ++result.stats.positions_examined;
      collector.Offer(Substring{i, end, inc.chi_square()});
    }
  }
  result.top = collector.TakeSortedDescending();
  return result;
}

Result<TopTResult> NaiveFindTopT(const seq::Sequence& sequence,
                                 const seq::MultinomialModel& model,
                                 int64_t t) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(sequence, model));
  if (t < 1) {
    return Status::InvalidArgument(StrCat("t must be >= 1, got ", t));
  }
  return NaiveFindTopT(sequence, ChiSquareContext(model), t);
}

ThresholdResult NaiveFindAboveThreshold(const seq::Sequence& sequence,
                                        const ChiSquareContext& context,
                                        double alpha0, int64_t max_matches) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(max_matches >= 0);
  const int64_t n = sequence.size();
  ThresholdResult result;
  ChiSquareContext::Incremental inc(context);
  bool found = false;
  for (int64_t i = 0; i < n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    for (int64_t end = i + 1; end <= n; ++end) {
      inc.Extend(sequence[end - 1]);
      ++result.stats.positions_examined;
      double x2 = inc.chi_square();
      if (x2 > alpha0) {
        Substring match{i, end, x2};
        ++result.match_count;
        if (static_cast<int64_t>(result.matches.size()) < max_matches) {
          result.matches.push_back(match);
        }
        if (!found || x2 > result.best.chi_square) {
          found = true;
          result.best = match;
        }
      }
    }
  }
  return result;
}

Result<ThresholdResult> NaiveFindAboveThreshold(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    double alpha0, int64_t max_matches) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(sequence, model));
  if (max_matches < 0) {
    return Status::InvalidArgument(
        StrCat("max_matches must be >= 0, got ", max_matches));
  }
  return NaiveFindAboveThreshold(sequence, ChiSquareContext(model), alpha0,
                                 max_matches);
}

MssResult NaiveFindMssMinLength(const seq::Sequence& sequence,
                                const ChiSquareContext& context,
                                int64_t min_length) {
  SIGSUB_CHECK(sequence.alphabet_size() == context.alphabet_size());
  SIGSUB_CHECK(min_length >= 1);
  const int64_t n = sequence.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  ChiSquareContext::Incremental inc(context);
  bool found = false;
  for (int64_t i = 0; i + min_length <= n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    for (int64_t end = i + 1; end <= n; ++end) {
      inc.Extend(sequence[end - 1]);
      if (end - i < min_length) continue;
      ++result.stats.positions_examined;
      double x2 = inc.chi_square();
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{i, end, x2};
      }
    }
  }
  return result;
}

Result<MssResult> NaiveFindMssMinLength(const seq::Sequence& sequence,
                                        const seq::MultinomialModel& model,
                                        int64_t min_length) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(sequence, model));
  if (min_length < 1 || min_length > sequence.size()) {
    return Status::InvalidArgument(
        StrCat("min_length must be in [1, ", sequence.size(), "], got ",
               min_length));
  }
  return NaiveFindMssMinLength(sequence, ChiSquareContext(model), min_length);
}

}  // namespace core
}  // namespace sigsub
