#include "core/markov_scan.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace core {

MarkovChiSquare::MarkovChiSquare(int k, std::vector<double> inv_transitions)
    : k_(k), inv_transitions_(std::move(inv_transitions)) {}

Result<MarkovChiSquare> MarkovChiSquare::Make(const seq::MarkovModel& model) {
  const int k = model.alphabet_size();
  std::vector<double> inv(static_cast<size_t>(k) * k);
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      double t = model.transition(a, b);
      if (!(t > 0.0)) {
        return Status::InvalidArgument(
            StrCat("Markov chi-square needs strictly positive transition "
                   "probabilities; T[",
                   a, "][", b, "] = ", t));
      }
      inv[a * k + b] = 1.0 / t;
    }
  }
  return MarkovChiSquare(k, std::move(inv));
}

double MarkovChiSquare::Evaluate(std::span<const int64_t> pair_counts) const {
  SIGSUB_DCHECK(pair_counts.size() ==
                static_cast<size_t>(k_) * static_cast<size_t>(k_));
  int64_t m = 0;
  double total = 0.0;
  for (int a = 0; a < k_; ++a) {
    int64_t row_total = 0;
    double row_weighted = 0.0;
    for (int b = 0; b < k_; ++b) {
      int64_t n_ab = pair_counts[a * k_ + b];
      row_total += n_ab;
      row_weighted += static_cast<double>(n_ab) *
                      static_cast<double>(n_ab) * inv_transitions_[a * k_ + b];
    }
    if (row_total > 0) {
      total += row_weighted / static_cast<double>(row_total);
      m += row_total;
    }
  }
  return m == 0 ? 0.0 : total - static_cast<double>(m);
}

MarkovChiSquare::Incremental::Incremental(const MarkovChiSquare& context)
    : context_(&context),
      pair_counts_(static_cast<size_t>(context.k_) * context.k_, 0),
      row_totals_(context.k_, 0),
      row_weighted_(context.k_, 0.0) {}

void MarkovChiSquare::Incremental::Reset() {
  std::fill(pair_counts_.begin(), pair_counts_.end(), 0);
  std::fill(row_totals_.begin(), row_totals_.end(), 0);
  std::fill(row_weighted_.begin(), row_weighted_.end(), 0.0);
  total_ = 0.0;
  transitions_ = 0;
  has_previous_ = false;
}

void MarkovChiSquare::Incremental::Extend(uint8_t symbol) {
  const int k = context_->k_;
  SIGSUB_DCHECK(symbol < k);
  if (!has_previous_) {
    has_previous_ = true;
    previous_ = symbol;
    return;
  }
  const int a = previous_;
  const int b = symbol;
  // Remove row a's old contribution, apply the (a, b) transition, add the
  // new contribution back: O(1) per extension.
  if (row_totals_[a] > 0) {
    total_ -= row_weighted_[a] / static_cast<double>(row_totals_[a]);
  }
  int64_t& n_ab = pair_counts_[a * k + b];
  row_weighted_[a] += static_cast<double>(2 * n_ab + 1) *
                      context_->inv_transitions_[a * k + b];
  ++n_ab;
  ++row_totals_[a];
  total_ += row_weighted_[a] / static_cast<double>(row_totals_[a]);
  ++transitions_;
  previous_ = symbol;
}

double MarkovChiSquare::Incremental::chi_square() const {
  return transitions_ == 0 ? 0.0
                           : total_ - static_cast<double>(transitions_);
}

Result<MssResult> FindMssMarkov(const seq::Sequence& sequence,
                                const seq::MarkovModel& model,
                                int64_t min_transitions) {
  if (sequence.size() < 2) {
    return Status::InvalidArgument(
        "Markov MSS needs a sequence with at least one transition");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (min_transitions < 1 || min_transitions > sequence.size() - 1) {
    return Status::InvalidArgument(
        StrCat("min_transitions must be in [1, ", sequence.size() - 1,
               "], got ", min_transitions));
  }
  SIGSUB_ASSIGN_OR_RETURN(MarkovChiSquare context,
                          MarkovChiSquare::Make(model));

  const int64_t n = sequence.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  MarkovChiSquare::Incremental inc(context);
  bool found = false;
  for (int64_t i = 0; i + min_transitions < n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    inc.Extend(sequence[i]);
    for (int64_t end = i + 2; end <= n; ++end) {
      inc.Extend(sequence[end - 1]);
      if (inc.transitions() < min_transitions) continue;
      ++result.stats.positions_examined;
      double x2 = inc.chi_square();
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{i, end, x2};
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace sigsub
