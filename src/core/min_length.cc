#include "core/min_length.h"

#include "common/check.h"
#include "common/str_util.h"
#include "core/mss.h"

namespace sigsub {
namespace core {

MssResult FindMssMinLength(const seq::PrefixCounts& counts,
                           const ChiSquareContext& context,
                           int64_t min_length) {
  return FindMssInRange(counts, context, 0, counts.sequence_size(),
                        min_length);
}

Result<MssResult> FindMssMinLength(const seq::Sequence& sequence,
                                   const seq::MultinomialModel& model,
                                   int64_t min_length) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (min_length < 1 || min_length > sequence.size()) {
    return Status::InvalidArgument(
        StrCat("min_length must be in [1, ", sequence.size(), "], got ",
               min_length));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssMinLength(counts, context, min_length);
}

}  // namespace core
}  // namespace sigsub
