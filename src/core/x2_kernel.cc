#include "core/x2_kernel.h"

#include <atomic>

namespace sigsub {
namespace core {
namespace {

/// Generic scalar fused kernel. The accumulation order (c = 0..k−1, one
/// multiply-add per symbol) matches ChiSquareContext::Evaluate exactly, so
/// the result is bit-identical to the legacy FillCounts + Evaluate pair:
/// the int64 subtraction commutes with the double cast, and IEEE
/// arithmetic is deterministic for a fixed operation sequence.
double X2RangeScalar(const int64_t* lo, const int64_t* hi,
                     const double* inv_probs, int k, double l) {
  double sum = 0.0;
  for (int c = 0; c < k; ++c) {
    double y = static_cast<double>(hi[c] - lo[c]);
    sum += y * y * inv_probs[c];
  }
  return sum / l - l;
}

/// Fixed-k scalar specialization: the trip count is a compile-time
/// constant, so the compiler fully unrolls and keeps the accumulation
/// chain in registers. Same operation order as the generic loop —
/// bit-identical results.
template <int K>
double X2RangeScalarFixed(const int64_t* lo, const int64_t* hi,
                          const double* inv_probs, int /*k*/, double l) {
  double sum = 0.0;
  for (int c = 0; c < K; ++c) {
    double y = static_cast<double>(hi[c] - lo[c]);
    sum += y * y * inv_probs[c];
  }
  return sum / l - l;
}

std::atomic<X2Dispatch> g_default_dispatch{X2Dispatch::kAuto};

X2RangeFn ScalarFnForK(int k) {
  switch (k) {
    case 2:
      return &X2RangeScalarFixed<2>;
    case 4:
      return &X2RangeScalarFixed<4>;
    case 8:
      return &X2RangeScalarFixed<8>;
    default:
      return &X2RangeScalar;
  }
}

#if defined(SIGSUB_X2_AVX2)
X2RangeFn SimdFnForK(int k) {
  switch (k) {
    case 4:
      return &internal::X2RangeAvx2K4;
    case 8:
      return &internal::X2RangeAvx2K8;
    default:
      return &internal::X2RangeAvx2;
  }
}
#endif

}  // namespace

const int64_t* X2Kernel::ZeroBlock() {
  static const int64_t kZeros[kMaxAlphabet] = {};
  return kZeros;
}

const char* X2DispatchName(X2Dispatch dispatch) {
  switch (dispatch) {
    case X2Dispatch::kAuto:
      return "auto";
    case X2Dispatch::kScalar:
      return "scalar";
    case X2Dispatch::kSimd:
      return "simd";
  }
  return "auto";
}

bool ParseX2Dispatch(std::string_view name, X2Dispatch* out) {
  if (name == "auto") {
    *out = X2Dispatch::kAuto;
  } else if (name == "scalar") {
    *out = X2Dispatch::kScalar;
  } else if (name == "simd") {
    *out = X2Dispatch::kSimd;
  } else {
    return false;
  }
  return true;
}

void SetDefaultX2Dispatch(X2Dispatch dispatch) {
  g_default_dispatch.store(dispatch, std::memory_order_relaxed);
}

X2Dispatch DefaultX2Dispatch() {
  return g_default_dispatch.load(std::memory_order_relaxed);
}

bool SimdAvailable() {
#if defined(SIGSUB_X2_AVX2) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace internal {

X2RangeFn ResolveX2RangeFn(int k, X2Dispatch dispatch, bool* simd_active) {
  if (dispatch == X2Dispatch::kAuto) {
    dispatch = DefaultX2Dispatch();
  }
  // The process default may itself be kAuto: pick the fastest available
  // path. Below k = 4 a vector holds the whole count block and the lane
  // setup outweighs the reduction, so auto keeps the (bit-stable) scalar
  // specialization for binary/ternary alphabets.
  bool want_simd = dispatch == X2Dispatch::kSimd ||
                   (dispatch == X2Dispatch::kAuto && k >= 4);
#if defined(SIGSUB_X2_AVX2)
  if (want_simd && SimdAvailable()) {
    if (simd_active != nullptr) *simd_active = true;
    return SimdFnForK(k);
  }
#else
  (void)want_simd;
#endif
  if (simd_active != nullptr) *simd_active = false;
  return ScalarFnForK(k);
}

}  // namespace internal

}  // namespace core
}  // namespace sigsub
