#ifndef SIGSUB_CORE_SCAN_TYPES_H_
#define SIGSUB_CORE_SCAN_TYPES_H_

#include <cstdint>
#include <vector>

namespace sigsub {
namespace core {

/// A scored substring [start, end) of the input sequence (0-based,
/// half-open; the paper's S[i..j] 1-based inclusive maps to
/// [i-1, j)).
struct Substring {
  int64_t start = 0;
  int64_t end = 0;  // Exclusive.
  double chi_square = 0.0;

  int64_t length() const { return end - start; }
};

/// True if the two substrings share at least one position.
inline bool Overlaps(const Substring& a, const Substring& b) {
  return a.start < b.end && b.start < a.end;
}

/// Instrumentation counters filled by every scan. `positions_examined` is
/// the paper's "number of iterations": how many (start, end) pairs had
/// their X² evaluated. The trivial scan examines n(n+1)/2; the paper's
/// algorithm examines O(n^{3/2}) w.h.p.
struct ScanStats {
  int64_t positions_examined = 0;
  int64_t start_positions = 0;
  int64_t skip_events = 0;      // Times a positive skip was taken.
  int64_t positions_skipped = 0;  // Total ending positions never examined.

  void Merge(const ScanStats& other) {
    positions_examined += other.positions_examined;
    start_positions += other.start_positions;
    skip_events += other.skip_events;
    positions_skipped += other.positions_skipped;
  }
};

/// Result of a most-significant-substring search (Problems 1 and 4).
struct MssResult {
  Substring best;
  ScanStats stats;
};

/// Result of a top-t search (Problem 2): substrings in descending X² order.
struct TopTResult {
  std::vector<Substring> top;
  ScanStats stats;
};

/// Result of a threshold search (Problem 3). When the scan runs in
/// counting mode (or `matches` overflows the caller's cap), `match_count`
/// still reports the exact total.
struct ThresholdResult {
  std::vector<Substring> matches;
  int64_t match_count = 0;
  Substring best;  // Highest-X² match (valid iff match_count > 0).
  ScanStats stats;
};

/// Closed form for the trivial algorithm's examined positions: n(n+1)/2.
inline int64_t TrivialScanPositions(int64_t n) { return n * (n + 1) / 2; }

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_SCAN_TYPES_H_
