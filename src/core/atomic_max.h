#ifndef SIGSUB_CORE_ATOMIC_MAX_H_
#define SIGSUB_CORE_ATOMIC_MAX_H_

#include <atomic>

namespace sigsub {
namespace core {

/// Lock-free monotone maximum over doubles. Shared by every shard of a
/// parallel MSS scan: a discovery by any shard immediately widens every
/// other shard's chain-cover skips. X² values are non-negative, so 0.0 is
/// a neutral initial value.
class AtomicMax {
 public:
  double load() const { return value_.load(std::memory_order_relaxed); }

  void Update(double candidate) {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_ATOMIC_MAX_H_
