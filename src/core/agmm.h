#ifndef SIGSUB_CORE_AGMM_H_
#define SIGSUB_CORE_AGMM_H_

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// AGMM baseline — reconstruction of the O(n) global-extrema heuristic of
/// Dutta & Bhattacharya (PAKDD 2010), the paper's reference [9]. See
/// DESIGN.md §2.1.
///
/// For each character c it locates the global maximum and the global
/// minimum of the deviation walk W_c(j) = count_c(S[0..j)) − j·p_c and
/// scores the substring spanned by the two positions (the largest single
/// excursion of that walk), the prefix/suffix candidates up to each
/// extremum, and the steepest normalized rise/fall against the running
/// prefix extrema (a Kadane-style excursion candidate per direction). The
/// best of these O(k) candidates is returned. O(k·n + k²) time; no
/// approximation guarantee — the returned X² can be well below the true
/// MSS (the paper's Tables 1, 4 and 6 show exactly this failure mode).
Result<MssResult> FindMssAgmm(const seq::Sequence& sequence,
                              const seq::MultinomialModel& model);

/// Kernel variant.
MssResult FindMssAgmm(const seq::Sequence& sequence,
                      const seq::PrefixCounts& counts,
                      const ChiSquareContext& context);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_AGMM_H_
