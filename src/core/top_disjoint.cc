#include "core/top_disjoint.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/str_util.h"
#include "core/mss.h"

namespace sigsub {
namespace core {
namespace {

struct SegmentBest {
  int64_t seg_start;
  int64_t seg_end;
  Substring best;
};

struct ByChiSquare {
  bool operator()(const SegmentBest& a, const SegmentBest& b) const {
    return a.best.chi_square < b.best.chi_square;
  }
};

}  // namespace

std::vector<Substring> FindTopDisjoint(const seq::PrefixCounts& counts,
                                       const ChiSquareContext& context,
                                       TopDisjointOptions options) {
  SIGSUB_CHECK(options.t >= 1);
  SIGSUB_CHECK(options.min_length >= 1);
  const int64_t n = counts.sequence_size();
  std::priority_queue<SegmentBest, std::vector<SegmentBest>, ByChiSquare>
      heap;

  auto push_segment = [&](int64_t lo, int64_t hi) {
    if (hi - lo < options.min_length) return;
    MssResult mss =
        FindMssInRange(counts, context, lo, hi, options.min_length);
    if (mss.best.length() < options.min_length) return;
    if (!(mss.best.chi_square > options.min_chi_square)) return;
    heap.push(SegmentBest{lo, hi, mss.best});
  };

  push_segment(0, n);
  std::vector<Substring> out;
  while (!heap.empty() && static_cast<int64_t>(out.size()) < options.t) {
    SegmentBest top = heap.top();
    heap.pop();
    out.push_back(top.best);
    push_segment(top.seg_start, top.best.start);
    push_segment(top.best.end, top.seg_end);
  }
  return out;
}

Result<std::vector<Substring>> FindTopDisjoint(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    TopDisjointOptions options) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (options.t < 1) {
    return Status::InvalidArgument(StrCat("t must be >= 1, got ", options.t));
  }
  if (options.min_length < 1) {
    return Status::InvalidArgument(
        StrCat("min_length must be >= 1, got ", options.min_length));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindTopDisjoint(counts, context, options);
}

}  // namespace core
}  // namespace sigsub
