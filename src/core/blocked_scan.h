#ifndef SIGSUB_CORE_BLOCKED_SCAN_H_
#define SIGSUB_CORE_BLOCKED_SCAN_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Blocked exact scan — stand-in for the "blocking technique" of Agarwal's
/// thesis (paper reference [2]), which the paper describes as a
/// constant-factor (no asymptotic) improvement over the trivial scan. See
/// DESIGN.md §2.1.
///
/// For each start position the ending positions are processed in blocks of
/// `block_size`. Before descending into a block, a chain-cover bound over
/// the whole block is compared against the running maximum: if the block
/// cannot contain a better substring it is skipped in O(k); otherwise every
/// position in it is evaluated incrementally in O(1) each. Exact (always
/// returns the true MSS), Θ(n²) worst case.
Result<MssResult> FindMssBlocked(const seq::Sequence& sequence,
                                 const seq::MultinomialModel& model,
                                 int64_t block_size = 64);

/// Kernel variant.
MssResult FindMssBlocked(const seq::Sequence& sequence,
                         const seq::PrefixCounts& counts,
                         const ChiSquareContext& context,
                         int64_t block_size = 64);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_BLOCKED_SCAN_H_
