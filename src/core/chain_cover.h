#ifndef SIGSUB_CORE_CHAIN_COVER_H_
#define SIGSUB_CORE_CHAIN_COVER_H_

#include <cstdint>
#include <span>

#include "core/chi_square.h"

namespace sigsub {
namespace core {

/// The chain-cover machinery of the paper (Definition 1, Lemmas 1-2,
/// Theorem 1). For a substring S with count vector {Y_c}, length l and
/// statistic X²_l, the cover string λ(S, c, x) appends x copies of symbol c;
/// its statistic is
///
///   X²_λ(c, x) = l(X²_l + l)/(l + x) + (2xY_c + x²)/((l + x)p_c) − (l + x)
///
/// (paper Eq. 19). Theorem 1: the X² of ANY extension of S by at most x
/// characters is bounded by max_c X²_λ(c, x). Requiring that bound to stay
/// <= a budget B yields, per character, the quadratic constraint
///
///   (1 − p_c)·x² + (2Y_c − 2lp_c − p_c·B)·x + (X²_l − B)·l·p_c <= 0
///
/// (paper Eq. 21), whose largest feasible integer x, minimized over c, is
/// the number of ending positions the scan may skip without ever missing a
/// substring scoring above B.
///
/// Note on the paper's pseudocode: Algorithm 1 line 9 selects the cover
/// character as argmax_c (2Y_c + x)/p_c with x not yet known (the argmax can
/// depend on x when P is skewed). We implement the exact fixed point
/// instead: the binding character is the one with the smallest root, so we
/// take min_c over all k roots. See DESIGN.md §1.1.

/// X² of the chain cover λ(S, c, x) given the base substring's statistic.
/// `x` may be fractional (used by tests to probe the bound's continuity).
double CoverChiSquare(double x2_l, int64_t l, int64_t y_c, double p_c,
                      double x);

/// Computes safe skip lengths. Stateless except for the model view; cheap
/// to copy.
class SkipSolver {
 public:
  explicit SkipSolver(const ChiSquareContext& context) : context_(&context) {}

  /// Largest integer m >= 0 such that every extension of the current
  /// substring (counts, l, X²_l) by 1..m characters has X² <= budget.
  /// Callers may then jump the scan's next examined ending position forward
  /// by m (examining position l + m + 1 next).
  ///
  /// Requires l >= 1. If X²_l > budget the result is 0 (paper Algorithm 3's
  /// `max(..., 1)` advance corresponds to skip 0 here).
  int64_t MaxSafeExtension(std::span<const int64_t> counts, int64_t l,
                           double x2_l, double budget) const;

  /// Fused form: reads Y_c = end_block[c] − start_block[c] straight from
  /// two position-major PrefixCounts blocks (seq::PrefixCounts::BlockAt),
  /// so scanners need no materialized count vector. Identical results to
  /// the span overload for identical counts. (The 2-D scan instead gathers
  /// its rectangle counts once via X2Kernel::EvaluateRect's counts_out and
  /// uses the span overload — a rect gather is 4 plane lookups per symbol,
  /// too expensive to repeat per consumer.)
  int64_t MaxSafeExtension(const int64_t* start_block,
                           const int64_t* end_block, int64_t l, double x2_l,
                           double budget) const;

  /// The root of the per-character quadratic for symbol c: the (real)
  /// largest x with the cover constraint satisfied for this character.
  /// Exposed for tests and the ablation bench.
  double CharacterRoot(int64_t y_c, double p_c, int64_t l, double x2_l,
                       double budget) const;

 private:
  const ChiSquareContext* context_;
};

/// The paper's literal skip rule (Algorithm 1 lines 9-13): pick the single
/// character t maximizing (2Y_t + x)/p_t with x approximated by the previous
/// skip (we use x = 0, i.e. argmax Y_t/p_t biased by the cover), solve only
/// that character's quadratic, and take the ceiling of the root. Kept for
/// the ablation bench; unsound in degenerate corners (see DESIGN.md), so
/// not used by the production scans.
int64_t PaperSingleCharacterSkip(const ChiSquareContext& context,
                                 std::span<const int64_t> counts, int64_t l,
                                 double x2_l, double budget);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_CHAIN_COVER_H_
