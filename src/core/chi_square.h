#ifndef SIGSUB_CORE_CHI_SQUARE_H_
#define SIGSUB_CORE_CHI_SQUARE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/x2_dispatch.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"

namespace sigsub {
namespace core {

/// Precomputed evaluation context for the Pearson X² statistic of
/// substrings under a fixed multinomial null model P. Holds 1/p_i so the
/// hot loop is multiply-only, and resolves the fused X² range kernel
/// (fixed-k / SIMD / scalar; see x2_kernel.h) once at build time.
///
/// X²(S[i..j)) = Σ_c Y_c² / (l·p_c) − l,  l = j − i  (paper Eq. 5).
class ChiSquareContext {
 public:
  /// Builds from a validated model. `dispatch` selects the fused-kernel
  /// implementation (default: follow the process-wide setting).
  explicit ChiSquareContext(const seq::MultinomialModel& model,
                            X2Dispatch dispatch = X2Dispatch::kAuto);

  /// Builds from raw probabilities (validated).
  static Result<ChiSquareContext> Make(
      std::vector<double> probs, X2Dispatch dispatch = X2Dispatch::kAuto);

  int alphabet_size() const { return static_cast<int>(probs_.size()); }
  std::span<const double> probs() const { return probs_; }
  std::span<const double> inv_probs() const { return inv_probs_; }

  /// The fused X² range kernel resolved at build time. Scanners consume it
  /// through core::X2Kernel rather than calling it directly.
  X2RangeFn x2_range_fn() const { return x2_range_fn_; }
  bool x2_simd_active() const { return x2_simd_active_; }

  /// X² of a count vector with total length l = Σ counts. Requires
  /// counts.size() == alphabet_size(). Returns 0 when l == 0.
  ///
  /// Reference implementation: together with PrefixCounts::FillCounts this
  /// is the legacy two-pass evaluation the fused kernel is gated against
  /// (bench/x2_kernel.cc). Hot paths use core::X2Kernel instead.
  double Evaluate(std::span<const int64_t> counts, int64_t l) const;

  /// X² of the substring [start, end) using prefix counts; O(k).
  /// Reference implementation — see Evaluate.
  double EvaluateRange(const seq::PrefixCounts& counts, int64_t start,
                       int64_t end) const;

  /// Incremental left-to-right evaluator: fix a start position, then extend
  /// the end one symbol at a time in O(1) per step. Used by the trivial
  /// scanner and the blocked scanner.
  ///
  /// Maintains ws = Σ_c Y_c²/p_c, so X² = ws/l − l, and the update for
  /// appending symbol c is ws += (2·Y_c + 1)/p_c.
  class Incremental {
   public:
    explicit Incremental(const ChiSquareContext& context)
        : context_(&context),
          counts_(context.alphabet_size(), 0) {}

    /// Resets to the empty substring.
    void Reset();

    /// Extends the substring by one occurrence of `symbol`.
    void Extend(uint8_t symbol);

    int64_t length() const { return length_; }
    double chi_square() const {
      if (length_ == 0) return 0.0;
      double dl = static_cast<double>(length_);
      return weighted_sum_ / dl - dl;
    }
    std::span<const int64_t> counts() const { return counts_; }

   private:
    const ChiSquareContext* context_;
    std::vector<int64_t> counts_;
    double weighted_sum_ = 0.0;
    int64_t length_ = 0;
  };

 private:
  ChiSquareContext(std::vector<double> probs, X2Dispatch dispatch);

  std::vector<double> probs_;
  std::vector<double> inv_probs_;
  // Initialized before x2_range_fn_ (declaration order): ResolveX2RangeFn
  // writes it while x2_range_fn_'s initializer runs.
  bool x2_simd_active_ = false;
  X2RangeFn x2_range_fn_;
};

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_CHI_SQUARE_H_
