#ifndef SIGSUB_CORE_TOP_DISJOINT_H_
#define SIGSUB_CORE_TOP_DISJOINT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Greedy non-overlapping top-t (library extension; see DESIGN.md §5).
///
/// The raw top-t of Problem 2 is dominated by overlapping shifts of the
/// single best patch, while the paper's application tables (3 and 5)
/// present *disjoint* significant periods. This utility produces them:
/// repeatedly take the MSS of the remaining region, then split the region
/// around it and recurse, until `t` substrings are found or nothing with
/// length >= min_length and X² > min_chi_square remains. Results come back
/// in descending X² order; consecutive results never overlap.
struct TopDisjointOptions {
  int64_t t = 5;
  int64_t min_length = 1;
  double min_chi_square = 0.0;
};

Result<std::vector<Substring>> FindTopDisjoint(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    TopDisjointOptions options);

/// Kernel variant.
std::vector<Substring> FindTopDisjoint(const seq::PrefixCounts& counts,
                                       const ChiSquareContext& context,
                                       TopDisjointOptions options);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_TOP_DISJOINT_H_
