#ifndef SIGSUB_CORE_MARKOV_SCAN_H_
#define SIGSUB_CORE_MARKOV_SCAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Extension of the paper's framework to first-order Markov null models
/// (its Section 8 future work: "the analysis can be further extended to
/// strings generated from Markov models, the most basic of which being the
/// case when there is a correlation between adjacent characters").
///
/// A substring S[i..j) contributes m = j − i − 1 adjacent transitions. The
/// statistic is the classical Markov goodness-of-fit chi-square,
/// conditioned on the observed row totals:
///
///   X²_M = Σ_{a,b} (N_ab − N_a·T_ab)² / (N_a·T_ab)
///        = Σ_a (1/N_a)·Σ_b N_ab²/T_ab − m,
///
/// where N_ab counts transitions a→b inside the substring, N_a = Σ_b N_ab,
/// and T is the null transition matrix. Under the null, X²_M converges to
/// χ²(k(k−1)). Unlike the multinomial X², this statistic catches anomalies
/// that keep letter frequencies intact but distort adjacency (e.g. an RNG
/// that repeats symbols: marginals stay 50/50, transitions do not).
///
/// The chain-cover skip bound of the multinomial case does not port
/// directly (the statistic is no longer a function of single-letter
/// counts), so the scanner here is the exact O(n²) incremental scan with
/// O(1) amortized work per extension. Deriving a sub-quadratic skip rule
/// for the Markov statistic is the open problem the paper leaves.
class MarkovChiSquare {
 public:
  /// Requires every transition probability to be strictly positive.
  static Result<MarkovChiSquare> Make(const seq::MarkovModel& model);

  int alphabet_size() const { return k_; }

  /// X²_M of the transition-count matrix `pair_counts` (row-major k×k).
  double Evaluate(std::span<const int64_t> pair_counts) const;

  /// Incremental left-to-right evaluator over a fixed start position.
  class Incremental {
   public:
    explicit Incremental(const MarkovChiSquare& context);

    /// Resets to an empty substring.
    void Reset();

    /// Extends the substring by one symbol; the first symbol after a
    /// Reset() contributes no transition.
    void Extend(uint8_t symbol);

    /// Number of transitions observed (length − 1, once non-empty).
    int64_t transitions() const { return transitions_; }
    double chi_square() const;

   private:
    const MarkovChiSquare* context_;
    std::vector<int64_t> pair_counts_;   // k*k.
    std::vector<int64_t> row_totals_;    // N_a.
    std::vector<double> row_weighted_;   // R_a = Σ_b N_ab²/T_ab.
    double total_ = 0.0;                 // Σ_a R_a/N_a over N_a > 0.
    int64_t transitions_ = 0;
    bool has_previous_ = false;
    uint8_t previous_ = 0;
  };

 private:
  MarkovChiSquare(int k, std::vector<double> inv_transitions);

  int k_;
  std::vector<double> inv_transitions_;  // 1/T_ab, row-major.
};

/// Exact MSS under the Markov statistic: the substring maximizing X²_M
/// among substrings with at least `min_transitions` transitions (>= 1).
/// O(n²) time, O(1) amortized per candidate.
Result<MssResult> FindMssMarkov(const seq::Sequence& sequence,
                                const seq::MarkovModel& model,
                                int64_t min_transitions = 1);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_MARKOV_SCAN_H_
