#include "core/top_t.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {
namespace {

struct MinByChiSquare {
  bool operator()(const Substring& a, const Substring& b) const {
    return a.chi_square > b.chi_square;
  }
};

}  // namespace

TopTCollector::TopTCollector(int64_t t) : t_(t) {
  SIGSUB_CHECK(t >= 1);
  heap_.reserve(static_cast<size_t>(std::min<int64_t>(t, 1 << 20)));
}

double TopTCollector::budget() const {
  if (static_cast<int64_t>(heap_.size()) < t_) {
    return -std::numeric_limits<double>::infinity();
  }
  return heap_.front().chi_square;
}

bool TopTCollector::Offer(const Substring& candidate) {
  if (static_cast<int64_t>(heap_.size()) < t_) {
    // Below capacity every candidate is (so far) among the best t. In
    // particular X² = 0 substrings are kept, so a perfectly balanced
    // sequence still yields t results instead of none.
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), MinByChiSquare());
    return true;
  }
  if (!(candidate.chi_square > heap_.front().chi_square)) return false;
  std::pop_heap(heap_.begin(), heap_.end(), MinByChiSquare());
  heap_.back() = candidate;
  std::push_heap(heap_.begin(), heap_.end(), MinByChiSquare());
  return true;
}

std::vector<Substring> TopTCollector::TakeSortedDescending() {
  std::vector<Substring> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [](const Substring& a, const Substring& b) {
    return a.chi_square > b.chi_square;
  });
  return out;
}

TopTResult FindTopT(const seq::PrefixCounts& counts,
                    const ChiSquareContext& context, int64_t t) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  SIGSUB_CHECK(t >= 1);
  const int64_t n = counts.sequence_size();
  TopTResult result;
  TopTCollector collector(t);
  SkipSolver solver(context);
  X2Kernel kernel(context);

  for (int64_t i = n - 1; i >= 0; --i) {
    ++result.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t end = i + 1;
    while (end <= n) {
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++result.stats.positions_examined;
      collector.Offer(Substring{i, end, x2});
      // Skip against the t-th best value (paper's X²_max_t), re-read after
      // the offer so insertions tighten the budget immediately.
      int64_t skip = solver.MaxSafeExtension(lo, hi, l, x2, collector.budget());
      if (skip > 0) {
        ++result.stats.skip_events;
        int64_t last_skipped = std::min(end + skip, n);
        if (last_skipped > end) {
          result.stats.positions_skipped += last_skipped - end;
        }
      }
      end += skip + 1;
    }
  }
  result.top = collector.TakeSortedDescending();
  return result;
}

Result<TopTResult> FindTopT(const seq::Sequence& sequence,
                            const seq::MultinomialModel& model, int64_t t) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (t < 1) {
    return Status::InvalidArgument(StrCat("t must be >= 1, got ", t));
  }
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindTopT(counts, context, t);
}

}  // namespace core
}  // namespace sigsub
