#ifndef SIGSUB_CORE_TOP_T_H_
#define SIGSUB_CORE_TOP_T_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Min-heap of the best t substrings seen so far, mirroring the heap of
/// Algorithm 2. While the heap is below capacity every candidate is
/// accepted regardless of score — on a perfectly balanced sequence
/// (all X² = 0) the collector still fills up to t entries rather than
/// returning nothing. Once full, a candidate must score strictly above
/// the t-th best to displace it. `budget()` is the paper's X²_max_t —
/// the value a new substring must beat, and the bound handed to the
/// chain-cover skip; it is -infinity while the heap is filling, which
/// disables skipping until t candidates have been collected (a skipped
/// substring could otherwise have been needed to fill the heap).
class TopTCollector {
 public:
  explicit TopTCollector(int64_t t);

  int64_t capacity() const { return t_; }
  int64_t size() const { return static_cast<int64_t>(heap_.size()); }
  double budget() const;

  /// Inserts `candidate` unless the heap is full and the candidate does
  /// not beat the budget; returns true if inserted.
  bool Offer(const Substring& candidate);

  /// Destructively extracts the collected substrings in descending X²
  /// order.
  std::vector<Substring> TakeSortedDescending();

 private:
  int64_t t_;
  std::vector<Substring> heap_;  // Min-heap on chi_square.
};

/// Problem 2 (Top-t substrings): the t substrings with the highest X²
/// values, in descending order. Paper Algorithm 2; O((k + log t)·n^{3/2})
/// with high probability.
Result<TopTResult> FindTopT(const seq::Sequence& sequence,
                            const seq::MultinomialModel& model, int64_t t);

/// Kernel variant (see FindMss).
TopTResult FindTopT(const seq::PrefixCounts& counts,
                    const ChiSquareContext& context, int64_t t);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_TOP_T_H_
