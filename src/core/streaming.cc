#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"
#include "core/x2_kernel.h"
#include "stats/chi_squared.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace core {
namespace {

/// Šidák correction: the per-scale significance level that makes the
/// family-wise level across `scales` independent tests equal `alpha`.
/// Computed as −expm1(log1p(−α)/m) so deep levels (α ~ 1e-12) keep full
/// relative precision.
double SidakPerScaleAlpha(double alpha, size_t scales) {
  return -std::expm1(std::log1p(-alpha) / static_cast<double>(scales));
}

/// The detector's kAuto is the scalar fixed-k path (single L1-resident
/// counter blocks; see the class comment in streaming.h).
X2Dispatch StreamingDispatch(X2Dispatch requested) {
  return requested == X2Dispatch::kAuto ? X2Dispatch::kScalar : requested;
}

}  // namespace

StreamingDetector::StreamingDetector(
    std::shared_ptr<const ChiSquareContext> context, Options options)
    : context_(std::move(context)),
      options_(options),
      kernel_(*context_, StreamingDispatch(options.x2_dispatch)) {
  for (int64_t scale = 1; scale < options_.max_window; scale *= 2) {
    scales_.push_back(scale);
  }
  scales_.push_back(options_.max_window);

  const int k = context_->alphabet_size();
  // One k-wide counter block per monitored scale — O(k·log W) memory —
  // plus a byte ring of the last W+1 symbols so expiring symbols can be
  // subtracted. The blocks live in one flat buffer so the chunked pass
  // streams them without pointer chasing.
  counts_.assign(scales_.size() * static_cast<size_t>(k), 0);
  in_alarm_.assign(scales_.size(), 0);
  recent_.assign(static_cast<size_t>(options_.max_window) + 1, 0);

  thresholds_.resize(scales_.size());
  if (options_.x2_threshold >= 0.0) {
    std::fill(thresholds_.begin(), thresholds_.end(), options_.x2_threshold);
  } else {
    // Paper Theorem 3: X² of a window converges to χ²(k−1); the alarm
    // level with family-wise false-alarm probability alpha per position
    // is the Šidák-corrected upper quantile. All scales share one dof, so
    // one quantile evaluation covers them.
    stats::ChiSquaredDistribution dist(std::max(1, k - 1));
    const double threshold =
        dist.CriticalValue(SidakPerScaleAlpha(options_.alpha, scales_.size()));
    std::fill(thresholds_.begin(), thresholds_.end(), threshold);
  }
  rearm_.resize(scales_.size());
  for (size_t si = 0; si < scales_.size(); ++si) {
    double level = options_.rearm_fraction * thresholds_[si];
    // 0 · inf (zero threshold, hysteresis disabled) must mean "rearm
    // level above everything", not NaN.
    if (std::isnan(level)) level = std::numeric_limits<double>::infinity();
    rearm_[si] = level;
  }
}

Result<StreamingDetector> StreamingDetector::Make(
    const seq::MultinomialModel& model, Options options) {
  return Make(std::make_shared<const ChiSquareContext>(model,
                                                       options.x2_dispatch),
              options);
}

Result<StreamingDetector> StreamingDetector::Make(
    std::shared_ptr<const ChiSquareContext> context, Options options) {
  if (context == nullptr) {
    return Status::InvalidArgument("context must not be null");
  }
  if (options.max_window < 1) {
    return Status::InvalidArgument(
        StrCat("max_window must be >= 1, got ", options.max_window));
  }
  if (options.x2_threshold < 0.0 &&
      !(options.alpha > 0.0 && options.alpha < 1.0)) {
    return Status::InvalidArgument(
        StrCat("alpha must be in (0, 1), got ", options.alpha,
               " (or set x2_threshold >= 0 for a raw X² alarm level)"));
  }
  if (std::isnan(options.rearm_fraction) || options.rearm_fraction < 0.0) {
    return Status::InvalidArgument(
        StrCat("rearm_fraction must be >= 0, got ", options.rearm_fraction));
  }
  return StreamingDetector(std::move(context), options);
}

std::optional<StreamingDetector::Alarm> StreamingDetector::Append(
    uint8_t symbol) {
  // Checked in every build mode: an out-of-range symbol would otherwise
  // be an out-of-bounds counter write in release builds. Untrusted
  // streams should use TryAppend, which reports instead of aborting.
  SIGSUB_CHECK_MSG(symbol < context_->alphabet_size(),
                   "symbol %d out of range for alphabet size %d",
                   static_cast<int>(symbol), context_->alphabet_size());
  const int k = context_->alphabet_size();
  const int64_t ring = options_.max_window + 1;
  recent_[static_cast<size_t>(position_ % ring)] = symbol;
  ++position_;

  std::optional<Alarm> strongest;
  for (size_t si = 0; si < scales_.size(); ++si) {
    const int64_t scale = scales_[si];
    int64_t* counts = counts_.data() + si * static_cast<size_t>(k);
    ++counts[symbol];
    if (position_ > scale) {
      // The symbol that just slid out of this window.
      --counts[recent_[static_cast<size_t>((position_ - 1 - scale) % ring)]];
    } else if (scale > position_) {
      continue;  // Window not yet full; counts keep accumulating.
    }
    const double x2 = kernel_.EvaluateCounts(counts, scale);
    if (in_alarm_[si] && x2 < rearm_[si]) in_alarm_[si] = 0;
    if (!in_alarm_[si] && x2 > thresholds_[si]) {
      in_alarm_[si] = 1;
      ++alarms_raised_;
      if (!strongest.has_value() || x2 > strongest->chi_square) {
        strongest = Alarm{position_, scale, x2, stats::ChiSquarePValue(x2, k)};
      }
    }
  }
  return strongest;
}

Result<std::optional<StreamingDetector::Alarm>> StreamingDetector::TryAppend(
    uint8_t symbol) {
  if (symbol >= context_->alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("symbol ", static_cast<int>(symbol),
               " out of range for alphabet size ", context_->alphabet_size()));
  }
  return Append(symbol);
}

std::vector<StreamingDetector::Alarm> StreamingDetector::AppendChunk(
    std::span<const uint8_t> symbols) {
  const int k = context_->alphabet_size();
  for (size_t i = 0; i < symbols.size(); ++i) {
    SIGSUB_CHECK_MSG(symbols[i] < k,
                     "symbol %d (chunk offset %lld) out of range for "
                     "alphabet size %d",
                     static_cast<int>(symbols[i]),
                     static_cast<long long>(i), k);
  }

  std::vector<Alarm> alarms;
  // Raw __restrict views for the scale passes: `symbols` and the ring are
  // byte arrays, and char-typed loads may legally alias the int64 counter
  // stores — without the annotation every counter store forces the symbol
  // loads to be re-issued.
  const double* __restrict inv_probs = context_->inv_probs().data();
  const uint8_t* __restrict chunk = symbols.data();
  const uint8_t* __restrict ring_data = recent_.data();
  const int64_t start = position_;  // Stream position before this chunk.
  const int64_t length = static_cast<int64_t>(symbols.size());
  const int64_t ring = options_.max_window + 1;

  // Scale-major: one pass over the chunk per scale, so the scale's
  // counter block, running sum, threshold, and hysteresis state stay hot
  // for the whole chunk. The expiring symbol at chunk offset i (global
  // position start+i+1) has global index start+i−scale: inside the chunk
  // itself once i >= scale (the common case for long chunks — a
  // contiguous read, no modulo), otherwise still in the pre-chunk ring,
  // which is untouched until the chunk has been fully processed.
  for (size_t si = 0; si < scales_.size(); ++si) {
    const int64_t scale = scales_[si];
    int64_t* __restrict counts =
        counts_.data() + si * static_cast<size_t>(k);
    const double threshold = thresholds_[si];
    const double rearm = rearm_[si];
    bool in_alarm = in_alarm_[si] != 0;

    // Seed the running weighted sum ws = Σ Y_c²/p_c from the counter
    // block through the fused kernel (ws = (X² + l)·l inverts the
    // kernel's normalization; drift therefore resets at every chunk
    // boundary), then slide it in O(1) per position instead of
    // re-reducing O(k) — the chunked pass's algorithmic win. Alarm tests
    // also happen in ws-space (X² > t ⇔ ws > (t + l)·l, monotone), so
    // the steady-state step does no floating-point normalization at all.
    const double dscale = static_cast<double>(scale);
    const double inv_scale = 1.0 / dscale;
    const double ws_threshold = (threshold + dscale) * dscale;
    const double ws_rearm = (rearm + dscale) * dscale;
    const int64_t seeded = std::min(start, scale);
    double ws_base = 0.0;
    if (seeded > 0) {
      const double dl = static_cast<double>(seeded);
      ws_base = (kernel_.EvaluateCounts(counts, seeded) + dl) * dl;
    }
    // Incoming and expiring deltas accumulate separately so the two
    // loop-carried chains run in parallel (a single ws accumulator costs
    // two *dependent* adds per position — twice the latency);
    // ws = ws_base + ws_add − ws_sub is formed off the critical path at
    // the alarm test.
    double ws_add = 0.0;
    double ws_sub = 0.0;

    // Y_incoming just rose by one: Δws = (2·Y_new − 1)/p.
    auto add = [&](uint8_t incoming) {
      ++counts[incoming];
      ws_add += static_cast<double>(2 * counts[incoming] - 1) *
                inv_probs[incoming];
    };
    // Y_expiring just fell by one: Δws = −(2·Y_new + 1)/p.
    auto expire = [&](uint8_t expiring) {
      --counts[expiring];
      ws_sub += static_cast<double>(2 * counts[expiring] + 1) *
                inv_probs[expiring];
    };
    auto check_alarm = [&](int64_t pos) {
      const double ws = ws_base + (ws_add - ws_sub);
      if (!in_alarm) {
        if (ws > ws_threshold) {
          in_alarm = true;
          const double x2 = ws * inv_scale - dscale;
          alarms.push_back(
              Alarm{pos, scale, x2, stats::ChiSquarePValue(x2, k)});
        }
      } else if (ws < ws_rearm) {
        in_alarm = false;
      }
    };

    // The per-position work is phase-split so the steady-state loop has
    // no position branches: (1) window filling (no expiry, no test),
    // (2) expiring symbols still in the pre-chunk ring, (3) expiring
    // symbols inside the chunk itself (contiguous, the long phase).
    int64_t i = 0;
    const int64_t fill_end =
        std::min<int64_t>(length, std::max<int64_t>(0, scale - start - 1));
    for (; i < fill_end; ++i) add(chunk[i]);
    if (i < length && start + i + 1 == scale) {
      add(chunk[i]);  // Window exactly full: test,
      check_alarm(start + i + 1);            // nothing expires yet.
      ++i;
    }
    const int64_t from_ring_end = std::min<int64_t>(length, scale);
    if (i < from_ring_end) {
      int64_t ring_index = (start + i - scale) % ring;
      for (; i < from_ring_end; ++i) {
        add(chunk[i]);
        expire(ring_data[ring_index]);
        if (++ring_index == ring) ring_index = 0;
        check_alarm(start + i + 1);
      }
    }
    for (; i < length; ++i) {
      add(chunk[i]);
      expire(chunk[i - scale]);
      check_alarm(start + i + 1);
    }
    in_alarm_[si] = in_alarm ? 1 : 0;
  }

  // Ring maintenance, amortized: only the last ring-many chunk symbols
  // can still be expiring symbols for future appends.
  for (int64_t i = std::max<int64_t>(0, length - ring); i < length; ++i) {
    recent_[static_cast<size_t>((start + i) % ring)] =
        symbols[static_cast<size_t>(i)];
  }
  position_ += length;
  alarms_raised_ += static_cast<int64_t>(alarms.size());

  // The per-scale passes emit alarms grouped by scale; report them in
  // stream order like repeated Append calls would.
  std::sort(alarms.begin(), alarms.end(), [](const Alarm& a, const Alarm& b) {
    return a.end != b.end ? a.end < b.end : a.length < b.length;
  });
  return alarms;
}

Result<std::vector<StreamingDetector::Alarm>>
StreamingDetector::TryAppendChunk(std::span<const uint8_t> symbols) {
  const int k = context_->alphabet_size();
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] >= k) {
      return Status::InvalidArgument(
          StrCat("symbol ", static_cast<int>(symbols[i]), " (chunk offset ",
                 i, ") out of range for alphabet size ", k));
    }
  }
  return AppendChunk(symbols);
}

StreamingDetector::State StreamingDetector::SaveState() const {
  State state;
  state.position = position_;
  state.alarms_raised = alarms_raised_;
  state.counts = counts_;
  state.in_alarm = in_alarm_;
  state.recent = recent_;
  return state;
}

Status StreamingDetector::RestoreState(const State& state) {
  const int k = context_->alphabet_size();
  if (state.position < 0 || state.alarms_raised < 0) {
    return Status::InvalidArgument(
        "detector state: negative position or alarm count");
  }
  if (state.counts.size() != counts_.size() ||
      state.in_alarm.size() != in_alarm_.size() ||
      state.recent.size() != recent_.size()) {
    return Status::InvalidArgument(StrCat(
        "detector state shape mismatch: counts ", state.counts.size(),
        "/", counts_.size(), ", in_alarm ", state.in_alarm.size(), "/",
        in_alarm_.size(), ", recent ", state.recent.size(), "/",
        recent_.size(),
        " — snapshot does not match this stream's options"));
  }
  for (uint8_t flag : state.in_alarm) {
    if (flag > 1) {
      return Status::InvalidArgument(
          "detector state: hysteresis flag outside {0, 1}");
    }
  }
  for (uint8_t symbol : state.recent) {
    if (symbol >= k) {
      return Status::InvalidArgument(
          StrCat("detector state: ring symbol ", static_cast<int>(symbol),
                 " out of range for alphabet size ", k));
    }
  }
  // Each scale's counter block must describe exactly the last
  // min(scale, position) symbols: non-negative counts summing to the
  // window's fill. A corrupt or fabricated snapshot fails here by name
  // instead of poisoning every later X² evaluation.
  for (size_t si = 0; si < scales_.size(); ++si) {
    int64_t sum = 0;
    for (int c = 0; c < k; ++c) {
      int64_t count = state.counts[si * static_cast<size_t>(k) +
                                   static_cast<size_t>(c)];
      if (count < 0) {
        return Status::InvalidArgument(
            StrCat("detector state: negative count at scale ",
                   scales_[si]));
      }
      sum += count;
    }
    const int64_t want = std::min(state.position, scales_[si]);
    if (sum != want) {
      return Status::InvalidArgument(
          StrCat("detector state: scale ", scales_[si], " counters sum to ",
                 sum, ", want ", want));
    }
  }
  position_ = state.position;
  alarms_raised_ = state.alarms_raised;
  counts_ = state.counts;
  in_alarm_ = state.in_alarm;
  recent_ = state.recent;
  return Status::OK();
}

std::vector<double> StreamingDetector::CurrentChiSquares() const {
  const int k = context_->alphabet_size();
  std::vector<double> out(scales_.size(), 0.0);
  for (size_t si = 0; si < scales_.size(); ++si) {
    const int64_t l = std::min(position_, scales_[si]);
    out[si] = kernel_.EvaluateCounts(
        counts_.data() + si * static_cast<size_t>(k), l);
  }
  return out;
}

}  // namespace core
}  // namespace sigsub
