#include "core/streaming.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace core {

StreamingDetector::StreamingDetector(const seq::MultinomialModel& model,
                                     Options options)
    : context_(model), options_(options) {
  for (int64_t scale = 1; scale < options_.max_window; scale *= 2) {
    scales_.push_back(scale);
  }
  scales_.push_back(options_.max_window);
  // One k-wide counter per monitored scale — O(k·log W) memory — plus a
  // byte ring of the last W+1 symbols so expiring symbols can be
  // subtracted. The former representation kept W+1 full k-wide
  // cumulative vectors (O(k·W) before a single symbol arrived) and
  // copied one per Append.
  window_counts_.assign(scales_.size(),
                        std::vector<int64_t>(model.alphabet_size(), 0));
  recent_.assign(static_cast<size_t>(options_.max_window) + 1, 0);
}

Result<StreamingDetector> StreamingDetector::Make(
    const seq::MultinomialModel& model, Options options) {
  if (options.max_window < 1) {
    return Status::InvalidArgument(
        StrCat("max_window must be >= 1, got ", options.max_window));
  }
  if (options.alpha0 < 0.0) {
    return Status::InvalidArgument(
        StrCat("alpha0 must be >= 0, got ", options.alpha0));
  }
  return StreamingDetector(model, options);
}

std::optional<StreamingDetector::Alarm> StreamingDetector::Append(
    uint8_t symbol) {
  // Checked in every build mode: an out-of-range symbol would otherwise
  // be an out-of-bounds counter write in release builds. Untrusted
  // streams should use TryAppend, which reports instead of aborting.
  SIGSUB_CHECK_MSG(symbol < context_.alphabet_size(),
                   "symbol %d out of range for alphabet size %d",
                   static_cast<int>(symbol), context_.alphabet_size());
  const int64_t ring = options_.max_window + 1;
  recent_[static_cast<size_t>(position_ % ring)] = symbol;
  ++position_;

  std::optional<Alarm> alarm;
  for (size_t si = 0; si < scales_.size(); ++si) {
    const int64_t scale = scales_[si];
    std::vector<int64_t>& counts = window_counts_[si];
    ++counts[symbol];
    if (position_ > scale) {
      // The symbol that just slid out of this window.
      --counts[recent_[static_cast<size_t>((position_ - 1 - scale) % ring)]];
    } else if (scale > position_) {
      continue;  // Window not yet full; counts keep accumulating.
    }
    double x2 = context_.Evaluate(counts, scale);
    if (x2 > options_.alpha0 &&
        (!alarm.has_value() || x2 > alarm->chi_square)) {
      alarm = Alarm{position_, scale, x2};
    }
  }
  return alarm;
}

Result<std::optional<StreamingDetector::Alarm>> StreamingDetector::TryAppend(
    uint8_t symbol) {
  if (symbol >= context_.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("symbol ", static_cast<int>(symbol),
               " out of range for alphabet size ", context_.alphabet_size()));
  }
  return Append(symbol);
}

}  // namespace core
}  // namespace sigsub
