#include "core/streaming.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace core {

StreamingDetector::StreamingDetector(const seq::MultinomialModel& model,
                                     Options options)
    : context_(model), options_(options), scratch_(model.alphabet_size()) {
  for (int64_t scale = 1; scale < options_.max_window; scale *= 2) {
    scales_.push_back(scale);
  }
  scales_.push_back(options_.max_window);
  cumulative_.assign(static_cast<size_t>(options_.max_window) + 1,
                     std::vector<int64_t>(model.alphabet_size(), 0));
}

Result<StreamingDetector> StreamingDetector::Make(
    const seq::MultinomialModel& model, Options options) {
  if (options.max_window < 1) {
    return Status::InvalidArgument(
        StrCat("max_window must be >= 1, got ", options.max_window));
  }
  if (options.alpha0 < 0.0) {
    return Status::InvalidArgument(
        StrCat("alpha0 must be >= 0, got ", options.alpha0));
  }
  return StreamingDetector(model, options);
}

std::optional<StreamingDetector::Alarm> StreamingDetector::Append(
    uint8_t symbol) {
  SIGSUB_DCHECK(symbol < context_.alphabet_size());
  const int64_t ring = options_.max_window + 1;
  const std::vector<int64_t>& previous =
      cumulative_[static_cast<size_t>(position_ % ring)];
  ++position_;
  std::vector<int64_t>& current =
      cumulative_[static_cast<size_t>(position_ % ring)];
  current = previous;
  ++current[symbol];

  std::optional<Alarm> alarm;
  for (int64_t scale : scales_) {
    if (scale > position_) break;
    const std::vector<int64_t>& window_start =
        cumulative_[static_cast<size_t>((position_ - scale) % ring)];
    for (size_t c = 0; c < scratch_.size(); ++c) {
      scratch_[c] = current[c] - window_start[c];
    }
    double x2 = context_.Evaluate(scratch_, scale);
    if (x2 > options_.alpha0 &&
        (!alarm.has_value() || x2 > alarm->chi_square)) {
      alarm = Alarm{position_, scale, x2};
    }
  }
  return alarm;
}

}  // namespace core
}  // namespace sigsub
