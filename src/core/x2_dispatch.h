#ifndef SIGSUB_CORE_X2_DISPATCH_H_
#define SIGSUB_CORE_X2_DISPATCH_H_

#include <cstdint>
#include <string_view>

namespace sigsub {
namespace core {

/// Which implementation of the fused X² range kernel a ChiSquareContext
/// resolves at build time (see x2_kernel.h for the kernel itself):
///
///   kAuto   — follow the process default (SetDefaultX2Dispatch), which
///             itself defaults to the fastest available path: AVX2 when the
///             binary and CPU support it and k >= 4, else the scalar path.
///   kScalar — the scalar fused path, bit-identical to the legacy
///             FillCounts + Evaluate pair. Pin this for reproducibility
///             audits that must match archived X² values bit for bit.
///   kSimd   — the SIMD path when compiled in and supported by the CPU
///             (silently falls back to scalar otherwise). X² values can
///             differ from scalar in the last bits (different summation
///             order); relative error is <= 1e-12.
enum class X2Dispatch {
  kAuto = 0,
  kScalar = 1,
  kSimd = 2,
};

/// Stable lowercase name: "auto", "scalar", "simd".
const char* X2DispatchName(X2Dispatch dispatch);

/// Inverse of X2DispatchName; returns false on unknown names.
bool ParseX2Dispatch(std::string_view name, X2Dispatch* out);

/// Process-wide default consulted when a context is built with kAuto.
/// Intended for entry points (the CLI) that want one knob to govern every
/// context they create; libraries should pass an explicit dispatch instead.
void SetDefaultX2Dispatch(X2Dispatch dispatch);
X2Dispatch DefaultX2Dispatch();

/// True when the SIMD kernel is compiled into this binary AND the CPU
/// supports it (AVX2 on x86-64).
bool SimdAvailable();

/// Fused X² range kernel over two position-major k-blocks of prefix
/// counts: returns sum_c ((hi[c] − lo[c])² · inv_probs[c]) / l − l.
/// Preconditions: l = end − start >= 1 (callers short-circuit l == 0) and
/// every count < 2^52 (the AVX2 path converts int64 counts to double with
/// the 2^52 bias trick; counts are bounded by the sequence length, so this
/// only excludes petabyte-scale sequences).
using X2RangeFn = double (*)(const int64_t* lo, const int64_t* hi,
                             const double* inv_probs, int k, double l);

namespace internal {

/// Resolves the kernel for alphabet size `k` under `dispatch`: fixed-k
/// specializations for k ∈ {2, 4, 8}, SIMD when requested/available, the
/// generic scalar loop otherwise. Sets *simd_active to whether the chosen
/// function is the SIMD path. Defined in x2_kernel.cc.
X2RangeFn ResolveX2RangeFn(int k, X2Dispatch dispatch, bool* simd_active);

}  // namespace internal

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_X2_DISPATCH_H_
