#include "core/suffix_scan.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/str_util.h"
#include "core/significance.h"
#include "core/x2_kernel.h"
#include "seq/prefix_counts.h"
#include "stats/chi_squared.h"

namespace sigsub {
namespace core {
namespace {

constexpr int32_t kEmpty = -1;

/// Tracks transient allocation high water through the SA-IS recursion so
/// SuffixScanStats::peak_index_bytes reports honest numbers for the
/// memory gate in bench/suffix_scan.cc.
class MemTracker {
 public:
  void Add(int64_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }
  void Sub(int64_t bytes) { current_ -= bytes; }
  int64_t current() const { return current_; }
  int64_t peak() const { return peak_; }

 private:
  int64_t current_ = 0;
  int64_t peak_ = 0;
};

/// Bucket boundaries per symbol: heads (first slot) or tails (one past
/// the last slot) of each symbol's bucket in the suffix array.
template <typename CharT>
void FillBuckets(const CharT* s, int64_t n, int64_t k,
                 std::vector<int64_t>* bkt, bool tails) {
  std::fill(bkt->begin(), bkt->end(), 0);
  for (int64_t i = 0; i < n; ++i) ++(*bkt)[s[i]];
  int64_t sum = 0;
  for (int64_t c = 0; c < k; ++c) {
    sum += (*bkt)[c];
    (*bkt)[c] = tails ? sum : sum - (*bkt)[c];
  }
}

template <typename CharT>
void InduceL(const CharT* s, const std::vector<uint8_t>& types, int64_t n,
             int64_t k, std::vector<int64_t>* bkt, int32_t* sa) {
  FillBuckets(s, n, k, bkt, /*tails=*/false);
  for (int64_t i = 0; i < n; ++i) {
    int64_t j = sa[i];
    if (j > 0 && !types[j - 1]) {
      sa[(*bkt)[s[j - 1]]++] = static_cast<int32_t>(j - 1);
    }
  }
}

template <typename CharT>
void InduceS(const CharT* s, const std::vector<uint8_t>& types, int64_t n,
             int64_t k, std::vector<int64_t>* bkt, int32_t* sa) {
  FillBuckets(s, n, k, bkt, /*tails=*/true);
  for (int64_t i = n - 1; i >= 0; --i) {
    int64_t j = sa[i];
    if (j > 0 && types[j - 1]) {
      sa[--(*bkt)[s[j - 1]]] = static_cast<int32_t>(j - 1);
    }
  }
}

/// SA-IS (Nong, Zhang & Chan, "Two Efficient Algorithms for Linear Time
/// Suffix Array Construction"): induced sorting of LMS substrings,
/// recursion on their names, then induction of the full array. Requires
/// s[n-1] to be a unique smallest sentinel; writes ranks into sa[0..n).
template <typename CharT>
void SaIs(const CharT* s, int32_t* sa, int64_t n, int64_t k,
          MemTracker* mem) {
  SIGSUB_DCHECK(n >= 1);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Type pass: types[i] == 1 iff suffix i is S-type.
  std::vector<uint8_t> types(static_cast<size_t>(n));
  mem->Add(n);
  types[n - 1] = 1;
  for (int64_t i = n - 2; i >= 0; --i) {
    types[i] =
        (s[i] < s[i + 1] || (s[i] == s[i + 1] && types[i + 1])) ? 1 : 0;
  }
  auto is_lms = [&](int64_t i) {
    return i > 0 && types[i] && !types[i - 1];
  };

  std::vector<int64_t> bkt(static_cast<size_t>(k));
  mem->Add(k * 8);

  // Stage 1: sort the LMS substrings by one induction round.
  std::fill(sa, sa + n, kEmpty);
  FillBuckets(s, n, k, &bkt, /*tails=*/true);
  for (int64_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bkt[s[i]]] = static_cast<int32_t>(i);
  }
  InduceL(s, types, n, k, &bkt, sa);
  InduceS(s, types, n, k, &bkt, sa);

  // Compact the sorted LMS positions into sa[0..n1).
  int64_t n1 = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (is_lms(sa[i])) sa[n1++] = sa[i];
  }

  // Name the LMS substrings (equal name iff equal substring) into the
  // upper half of sa, indexed by position/2 (LMS positions are >= 2
  // apart, and n1 <= n/2, so the slots never collide).
  std::fill(sa + n1, sa + n, kEmpty);
  int64_t names = 0;
  int64_t prev = -1;
  for (int64_t r = 0; r < n1; ++r) {
    int64_t pos = sa[r];
    bool differs = prev < 0;
    for (int64_t d = 0; !differs; ++d) {
      if (s[pos + d] != s[prev + d] || types[pos + d] != types[prev + d]) {
        differs = true;
        break;
      }
      if (d > 0 && (is_lms(pos + d) || is_lms(prev + d))) {
        differs = !(is_lms(pos + d) && is_lms(prev + d));
        break;
      }
    }
    if (differs) {
      ++names;
      prev = pos;
    }
    sa[n1 + pos / 2] = static_cast<int32_t>(names - 1);
  }
  for (int64_t i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] != kEmpty) sa[j--] = sa[i];
  }

  // The reduced string (one name per LMS substring, text order) ends with
  // the sentinel's name 0, itself a unique smallest sentinel — recurse
  // unless the names are already distinct.
  int32_t* s1 = sa + (n - n1);
  if (names < n1) {
    SaIs<int32_t>(s1, sa, n1, names, mem);
  } else {
    for (int64_t i = 0; i < n1; ++i) sa[s1[i]] = static_cast<int32_t>(i);
  }

  // Turn LMS ranks back into text positions (reusing the s1 slots).
  {
    int64_t j = 0;
    for (int64_t i = 1; i < n; ++i) {
      if (is_lms(i)) s1[j++] = static_cast<int32_t>(i);
    }
  }
  for (int64_t i = 0; i < n1; ++i) sa[i] = s1[sa[i]];

  // Stage 2: place the now fully sorted LMS suffixes at their bucket
  // tails and induce the rest.
  std::fill(sa + n1, sa + n, kEmpty);
  FillBuckets(s, n, k, &bkt, /*tails=*/true);
  for (int64_t i = n1 - 1; i >= 0; --i) {
    int64_t j = sa[i];
    sa[i] = kEmpty;
    sa[--bkt[s[j]]] = static_cast<int32_t>(j);
  }
  InduceL(s, types, n, k, &bkt, sa);
  InduceS(s, types, n, k, &bkt, sa);

  mem->Sub(n);
  mem->Sub(k * 8);
}

/// Copies the record into a sentinel-terminated working array (symbols
/// shifted by +1 so 0 is the unique smallest sentinel), runs SA-IS, and
/// drops the sentinel's rank-0 entry.
template <typename CharT, typename SymAt>
void BuildSuffixArray(SymAt sym_at, int64_t n, int64_t k,
                      std::vector<int32_t>* sa, MemTracker* mem) {
  std::vector<CharT> work(static_cast<size_t>(n) + 1);
  mem->Add((n + 1) * static_cast<int64_t>(sizeof(CharT)));
  for (int64_t i = 0; i < n; ++i) {
    work[i] = static_cast<CharT>(sym_at(i) + 1);
  }
  work[n] = 0;
  std::vector<int32_t> full(static_cast<size_t>(n) + 1);
  mem->Add((n + 1) * 4);
  SaIs<CharT>(work.data(), full.data(), n + 1, k + 1, mem);
  SIGSUB_DCHECK(full[0] == static_cast<int32_t>(n));
  sa->assign(full.begin() + 1, full.end());
  mem->Sub((n + 1) * static_cast<int64_t>(sizeof(CharT)));
  mem->Sub((n + 1) * 4);
}

}  // namespace

Result<SuffixScan> SuffixScan::Build(std::span<const uint8_t> symbols,
                                     int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 256) {
    return Status::InvalidArgument(
        StrCat("suffix scan alphabet size must be in [2, 256], got ",
               alphabet_size));
  }
  SuffixScan scan;
  scan.data_ = symbols.data();
  scan.n_ = static_cast<int64_t>(symbols.size());
  scan.k_ = alphabet_size;
  for (int b = 0; b < 256; ++b) {
    scan.decode_[b] = static_cast<uint8_t>(b);
  }
  SIGSUB_RETURN_IF_ERROR(scan.BuildIndex());
  return scan;
}

Result<SuffixScan> SuffixScan::BuildMapped(std::span<const uint8_t> bytes,
                                           std::span<const uint8_t, 256> decode,
                                           int alphabet_size) {
  if (alphabet_size < 2 || alphabet_size > 255) {
    return Status::InvalidArgument(
        StrCat("mapped suffix scan alphabet size must be in [2, 255], got ",
               alphabet_size));
  }
  SuffixScan scan;
  scan.data_ = bytes.data();
  scan.n_ = static_cast<int64_t>(bytes.size());
  scan.k_ = alphabet_size;
  std::copy(decode.begin(), decode.end(), scan.decode_.begin());
  SIGSUB_RETURN_IF_ERROR(scan.BuildIndex());
  return scan;
}

Status SuffixScan::BuildIndex() {
  constexpr int64_t kMaxRecord =
      static_cast<int64_t>(std::numeric_limits<int32_t>::max()) - 2;
  if (n_ > kMaxRecord) {
    return Status::InvalidArgument(
        StrCat("record of ", n_, " symbols exceeds the 32-bit suffix index ",
               "limit of ", kMaxRecord));
  }
  for (int64_t i = 0; i < n_; ++i) {
    if (Sym(i) >= k_) {
      return Status::InvalidArgument(
          StrCat("byte value ", static_cast<int>(data_[i]), " at position ",
                 i, " is outside the ", k_, "-symbol alphabet"));
    }
  }
  if (n_ == 0) return Status::OK();

  MemTracker mem;
  auto sym_at = [this](int64_t i) { return static_cast<int64_t>(Sym(i)); };
  if (k_ + 1 <= 256) {
    BuildSuffixArray<uint8_t>(sym_at, n_, k_, &sa_, &mem);
  } else {
    BuildSuffixArray<uint16_t>(sym_at, n_, k_, &sa_, &mem);
  }
  mem.Add(n_ * 4);  // sa_ itself.

  // Kasai LCP: lcp_[r] = lcp(suffix sa_[r-1], suffix sa_[r]), lcp_[0] = 0.
  lcp_.assign(static_cast<size_t>(n_), 0);
  mem.Add(n_ * 4);
  {
    std::vector<int32_t> rank(static_cast<size_t>(n_));
    mem.Add(n_ * 4);
    for (int64_t r = 0; r < n_; ++r) rank[sa_[r]] = static_cast<int32_t>(r);
    int64_t h = 0;
    for (int64_t i = 0; i < n_; ++i) {
      if (rank[i] == 0) {
        h = 0;
        continue;
      }
      int64_t j = sa_[rank[i] - 1];
      while (i + h < n_ && j + h < n_ && Sym(i + h) == Sym(j + h)) ++h;
      lcp_[rank[i]] = static_cast<int32_t>(h);
      if (h > 0) --h;
    }
    mem.Sub(n_ * 4);
  }

  index_bytes_ = n_ * 8;  // sa_ + lcp_.
  peak_index_bytes_ = mem.peak();
  return Status::OK();
}

namespace {

/// Scores the current prefix under the multinomial null with the fused X²
/// kernel — the same resolved dispatch every interval scanner uses, so
/// the value is bit-identical to scoring the substring's count vector out
/// of a PrefixCounts layout (the naive reference).
class MultinomialScorer {
 public:
  explicit MultinomialScorer(const ChiSquareContext& context)
      : kernel_(context),
        k_(context.alphabet_size()),
        counts_(static_cast<size_t>(context.alphabet_size()), 0) {}

  void Reset() { std::fill(counts_.begin(), counts_.end(), 0); }
  void Extend(uint8_t symbol) { ++counts_[symbol]; }
  double Score(int64_t length) const {
    return kernel_.EvaluateCounts(counts_.data(), length);
  }
  double PValue(double x2) const { return SubstringPValue(x2, k_); }

 private:
  X2Kernel kernel_;
  int k_;
  std::vector<int64_t> counts_;
};

/// Markov X²_M over the prefix's transition counts. Reset clears only the
/// touched cells so short classes do not pay k² per class.
class MarkovScorer {
 public:
  explicit MarkovScorer(const MarkovChiSquare& context)
      : context_(&context),
        k_(context.alphabet_size()),
        dist_(context.alphabet_size() * (context.alphabet_size() - 1)),
        pairs_(static_cast<size_t>(context.alphabet_size()) *
                   static_cast<size_t>(context.alphabet_size()),
               0) {}

  void Reset() {
    for (int64_t index : touched_) pairs_[static_cast<size_t>(index)] = 0;
    touched_.clear();
    has_previous_ = false;
  }
  void Extend(uint8_t symbol) {
    if (has_previous_) {
      int64_t index = static_cast<int64_t>(previous_) * k_ + symbol;
      if (pairs_[static_cast<size_t>(index)] == 0) touched_.push_back(index);
      ++pairs_[static_cast<size_t>(index)];
    }
    previous_ = symbol;
    has_previous_ = true;
  }
  double Score(int64_t /*length*/) const { return context_->Evaluate(pairs_); }
  double PValue(double x2) const { return dist_.Sf(x2); }

 private:
  const MarkovChiSquare* context_;
  int k_;
  stats::ChiSquaredDistribution dist_;
  std::vector<int64_t> pairs_;
  std::vector<int64_t> touched_;
  bool has_previous_ = false;
  uint8_t previous_ = 0;
};

Status ValidateOptions(const SuffixScanOptions& options) {
  if (options.top_n < 0) {
    return Status::InvalidArgument(
        StrCat("top_n must be >= 0, got ", options.top_n));
  }
  if (options.min_length < 1) {
    return Status::InvalidArgument(
        StrCat("min_length must be >= 1, got ", options.min_length));
  }
  if (options.max_length < 0 ||
      (options.max_length > 0 && options.max_length < options.min_length)) {
    return Status::InvalidArgument(
        StrCat("max_length must be 0 (unbounded) or >= min_length, got ",
               options.max_length));
  }
  if (options.min_count < 1) {
    return Status::InvalidArgument(
        StrCat("min_count must be >= 1, got ", options.min_count));
  }
  return Status::OK();
}

}  // namespace

template <typename Scorer>
Result<SuffixScanResult> SuffixScan::ScanImpl(
    Scorer&& scorer, const SuffixScanOptions& options) const {
  SIGSUB_RETURN_IF_ERROR(ValidateOptions(options));

  SuffixScanResult result;
  result.stats.peak_index_bytes = peak_index_bytes_;
  result.stats.index_bytes = index_bytes_;

  // A candidate remembers its SA interval instead of its positions: the
  // representative (minimum) start and the position list are resolved only
  // for the survivors, after top-N selection.
  struct Candidate {
    double x2 = 0.0;
    int64_t length = 0;
    int64_t sa_lo = 0;
    int64_t sa_hi = 0;  // Inclusive.
  };

  // Total order: X² descending, then length ascending, then substring
  // text ascending — independent of enumeration order, so the top-N cut
  // is deterministic. Distinct substrings never compare equal.
  auto better = [this](const Candidate& a, const Candidate& b) {
    if (a.x2 != b.x2) return a.x2 > b.x2;
    if (a.length != b.length) return a.length < b.length;
    int64_t sa = sa_[a.sa_lo];
    int64_t sb = sa_[b.sa_lo];
    for (int64_t d = 0; d < a.length; ++d) {
      uint8_t ca = Sym(sa + d);
      uint8_t cb = Sym(sb + d);
      if (ca != cb) return ca < cb;
    }
    return false;
  };

  // Min-heap under `better` (root = worst kept candidate) for the top-N
  // cut; unbounded collection when top_n == 0.
  std::vector<Candidate> kept;
  const int64_t cap = options.top_n;
  if (cap > 0) kept.reserve(static_cast<size_t>(std::min<int64_t>(cap, 1 << 20)) + 1);
  auto offer = [&](const Candidate& candidate) {
    ++result.match_count;
    if (cap == 0) {
      kept.push_back(candidate);
      return;
    }
    if (static_cast<int64_t>(kept.size()) < cap) {
      kept.push_back(candidate);
      std::push_heap(kept.begin(), kept.end(), better);
      return;
    }
    if (better(candidate, kept.front())) {
      std::pop_heap(kept.begin(), kept.end(), better);
      kept.back() = candidate;
      std::push_heap(kept.begin(), kept.end(), better);
    }
  };

  // Scores one class: the suffix-tree node with SA interval [lb, rb],
  // parent string depth `parent_depth` and string depth `depth`, whose
  // members are the path prefixes with lengths in (parent_depth, depth].
  auto process_class = [&](int64_t lb, int64_t rb, int64_t parent_depth,
                           int64_t depth) {
    ++result.stats.classes_enumerated;
    // Empty class: every prefix up to `depth` is shared with a neighboring
    // suffix, so this node contributes no members of its own (only leaves
    // whose whole suffix recurs elsewhere hit this).
    if (depth <= parent_depth) return;
    int64_t count = rb - lb + 1;
    if (count < options.min_count) return;
    int64_t lo_len = std::max(parent_depth + 1, options.min_length);
    int64_t hi_len = depth;
    if (options.maximal_only) {
      // Only the longest member is class-maximal; a truncation at
      // max_length would have a same-count right extension.
      if (options.max_length > 0 && depth > options.max_length) return;
      lo_len = depth;
    } else if (options.max_length > 0) {
      hi_len = std::min(hi_len, options.max_length);
    }
    if (lo_len > hi_len || hi_len < options.min_length) return;
    int64_t start = sa_[lb];
    scorer.Reset();
    for (int64_t len = 1; len <= hi_len; ++len) {
      scorer.Extend(Sym(start + len - 1));
      if (len < lo_len) continue;
      ++result.stats.candidates_scored;
      double x2 = scorer.Score(len);
      if (x2 < options.min_x2) continue;
      offer(Candidate{x2, len, lb, rb});
    }
  };

  // Leaf classes: the substrings unique to one suffix — lengths past the
  // longest prefix shared with any neighbor, i.e. (max adjacent LCP,
  // suffix length]. Count is always 1.
  if (options.min_count <= 1) {
    for (int64_t r = 0; r < n_; ++r) {
      int64_t left = lcp_[r];
      int64_t right = r + 1 < n_ ? lcp_[r + 1] : 0;
      process_class(r, r, std::max(left, right), n_ - sa_[r]);
    }
  }

  // Internal nodes via the classic LCP-interval stack sweep.
  {
    struct Node {
      int64_t depth;
      int64_t lb;
    };
    std::vector<Node> stack;
    stack.push_back(Node{0, 0});
    for (int64_t i = 1; i <= n_; ++i) {
      int64_t l = i < n_ ? lcp_[i] : 0;
      int64_t lb = i - 1;
      while (stack.back().depth > l) {
        Node node = stack.back();
        stack.pop_back();
        process_class(node.lb, i - 1, std::max(stack.back().depth, l),
                      node.depth);
        lb = node.lb;
      }
      if (stack.back().depth < l) stack.push_back(Node{l, lb});
    }
  }

  // Resolve survivors: sort into the total order, then fill the
  // representative (minimum) start, p-value and optional positions.
  std::sort(kept.begin(), kept.end(), better);
  result.classes.reserve(kept.size());
  if (options.collect_positions) result.positions.reserve(kept.size());
  for (const Candidate& candidate : kept) {
    int64_t rep = n_;
    for (int64_t r = candidate.sa_lo; r <= candidate.sa_hi; ++r) {
      rep = std::min<int64_t>(rep, sa_[r]);
    }
    SubstringClass entry;
    entry.substring =
        Substring{rep, rep + candidate.length, candidate.x2};
    entry.count = candidate.sa_hi - candidate.sa_lo + 1;
    entry.p_value = scorer.PValue(candidate.x2);
    result.classes.push_back(entry);
    if (options.collect_positions) {
      std::vector<int64_t> where;
      where.reserve(static_cast<size_t>(entry.count));
      for (int64_t r = candidate.sa_lo; r <= candidate.sa_hi; ++r) {
        where.push_back(sa_[r]);
      }
      std::sort(where.begin(), where.end());
      result.positions.push_back(std::move(where));
    }
  }
  return result;
}

Result<SuffixScanResult> SuffixScan::Scan(
    const ChiSquareContext& context, const SuffixScanOptions& options) const {
  if (context.alphabet_size() != k_) {
    return Status::InvalidArgument(
        StrCat("model alphabet size ", context.alphabet_size(),
               " != record alphabet size ", k_));
  }
  return ScanImpl(MultinomialScorer(context), options);
}

Result<SuffixScanResult> SuffixScan::ScanMarkov(
    const MarkovChiSquare& context, const SuffixScanOptions& options) const {
  if (context.alphabet_size() != k_) {
    return Status::InvalidArgument(
        StrCat("model alphabet size ", context.alphabet_size(),
               " != record alphabet size ", k_));
  }
  return ScanImpl(MarkovScorer(context), options);
}

namespace {

/// Shared brute-force skeleton: enumerate by position, dedupe by content
/// (the map key is the raw symbol string, so ordering matches the
/// suffix path's symbol-wise comparisons), aggregate counts/positions,
/// then apply the same maximality/filter/ordering contract.
struct NaiveInfo {
  int64_t count = 0;
  std::vector<int64_t> positions;
};

template <typename ScoreFn, typename PValueFn>
Result<SuffixScanResult> NaiveImpl(const seq::Sequence& sequence,
                                   const SuffixScanOptions& options,
                                   ScoreFn&& score, PValueFn&& p_value) {
  SIGSUB_RETURN_IF_ERROR(ValidateOptions(options));
  const int64_t n = sequence.size();
  const int64_t cap =
      options.max_length > 0 ? std::min(options.max_length, n) : n;

  // Counts for lengths up to cap+1: maximality of a length-cap candidate
  // inspects its one-symbol extensions.
  std::map<std::string, NaiveInfo> table;
  for (int64_t start = 0; start < n; ++start) {
    std::string key;
    key.reserve(static_cast<size_t>(std::min(cap + 1, n - start)));
    for (int64_t end = start + 1; end <= std::min(start + cap + 1, n);
         ++end) {
      key.push_back(static_cast<char>(sequence[end - 1]));
      NaiveInfo& info = table[key];
      ++info.count;
      info.positions.push_back(start);
    }
  }

  struct NaiveCandidate {
    double x2 = 0.0;
    const std::string* text = nullptr;
    const NaiveInfo* info = nullptr;
  };
  auto better = [](const NaiveCandidate& a, const NaiveCandidate& b) {
    if (a.x2 != b.x2) return a.x2 > b.x2;
    if (a.text->size() != b.text->size()) {
      return a.text->size() < b.text->size();
    }
    return *a.text < *b.text;
  };

  SuffixScanResult result;
  std::vector<NaiveCandidate> kept;
  for (const auto& [text, info] : table) {
    int64_t length = static_cast<int64_t>(text.size());
    if (length < options.min_length || length > cap) continue;
    if (info.count < options.min_count) continue;
    if (options.maximal_only) {
      // Class-maximal iff every one-symbol right extension occurs
      // strictly fewer times (equal count would mean same start set).
      bool maximal = true;
      std::string extended = text;
      extended.push_back('\0');
      for (int symbol = 0; symbol < sequence.alphabet_size(); ++symbol) {
        extended.back() = static_cast<char>(symbol);
        auto it = table.find(extended);
        if (it != table.end() && it->second.count == info.count) {
          maximal = false;
          break;
        }
      }
      if (!maximal) continue;
    }
    ++result.stats.candidates_scored;
    double x2 = score(info.positions.front(),
                      info.positions.front() + length);
    if (x2 < options.min_x2) continue;
    ++result.match_count;
    kept.push_back(NaiveCandidate{x2, &text, &info});
  }

  std::sort(kept.begin(), kept.end(), better);
  if (options.top_n > 0 &&
      static_cast<int64_t>(kept.size()) > options.top_n) {
    kept.resize(static_cast<size_t>(options.top_n));
  }
  for (const NaiveCandidate& candidate : kept) {
    int64_t length = static_cast<int64_t>(candidate.text->size());
    int64_t rep = candidate.info->positions.front();
    SubstringClass entry;
    entry.substring = Substring{rep, rep + length, candidate.x2};
    entry.count = candidate.info->count;
    entry.p_value = p_value(candidate.x2);
    result.classes.push_back(entry);
    if (options.collect_positions) {
      result.positions.push_back(candidate.info->positions);
    }
  }
  return result;
}

}  // namespace

Result<SuffixScanResult> NaiveAllSubstringsScan(
    const seq::Sequence& sequence, const ChiSquareContext& context,
    const SuffixScanOptions& options) {
  if (context.alphabet_size() != sequence.alphabet_size()) {
    return Status::InvalidArgument("model/record alphabet size mismatch");
  }
  // The naive per-position layout the suffix path avoids: a full
  // PrefixCounts, scored through the same fused kernel.
  seq::PrefixCounts counts(sequence);
  X2Kernel kernel(context);
  int k = context.alphabet_size();
  return NaiveImpl(
      sequence, options,
      [&](int64_t start, int64_t end) {
        return kernel.EvaluateRange(counts, start, end);
      },
      [&](double x2) { return SubstringPValue(x2, k); });
}

Result<SuffixScanResult> NaiveAllSubstringsScanMarkov(
    const seq::Sequence& sequence, const MarkovChiSquare& context,
    const SuffixScanOptions& options) {
  if (context.alphabet_size() != sequence.alphabet_size()) {
    return Status::InvalidArgument("model/record alphabet size mismatch");
  }
  int k = context.alphabet_size();
  stats::ChiSquaredDistribution dist(k * (k - 1));
  std::vector<int64_t> pairs(static_cast<size_t>(k) * static_cast<size_t>(k));
  return NaiveImpl(
      sequence, options,
      [&](int64_t start, int64_t end) {
        std::fill(pairs.begin(), pairs.end(), 0);
        for (int64_t i = start + 1; i < end; ++i) {
          ++pairs[static_cast<size_t>(sequence[i - 1]) *
                      static_cast<size_t>(k) +
                  sequence[i]];
        }
        return context.Evaluate(pairs);
      },
      [&](double x2) { return dist.Sf(x2); });
}

}  // namespace core
}  // namespace sigsub
