#ifndef SIGSUB_CORE_MSS_2D_H_
#define SIGSUB_CORE_MSS_2D_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/grid.h"
#include "seq/model.h"

namespace sigsub {
namespace core {

/// The most significant axis-aligned subrectangle of a grid (the paper's
/// Section 8 two-dimensional extension). X² of a rectangle is the ordinary
/// multinomial statistic of its cell-count vector.
struct Rectangle {
  int64_t row0 = 0;
  int64_t row1 = 0;  // Exclusive.
  int64_t col0 = 0;
  int64_t col1 = 0;  // Exclusive.
  double chi_square = 0.0;

  int64_t area() const { return (row1 - row0) * (col1 - col0); }
};

struct Mss2dResult {
  Rectangle best;
  ScanStats stats;  // positions_examined counts evaluated rectangles.
};

/// Exact 2-D MSS with chain-cover column skipping. For each row band
/// [r0, r1) the columns are scanned left-to-right like the 1-D algorithm;
/// extending the rectangle by one column appends h = r1 − r0 characters,
/// so a safe character-extension of m characters (Theorem 1) licenses
/// skipping ⌊m / h⌋ columns. Complexity O(R²·C^{3/2}·k) w.h.p. on null
/// grids, O(R²·C²·k) worst case — versus Θ(R²·C²) rectangles for the
/// trivial enumeration.
Result<Mss2dResult> FindMss2d(const seq::Grid& grid,
                              const seq::MultinomialModel& model);

/// Kernel variant over prebuilt prefix sums.
Mss2dResult FindMss2d(const seq::GridPrefixCounts& counts,
                      const ChiSquareContext& context);

/// Exact O(R²·C²) baseline for tests.
Result<Mss2dResult> NaiveFindMss2d(const seq::Grid& grid,
                                   const seq::MultinomialModel& model);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_MSS_2D_H_
