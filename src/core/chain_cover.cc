#include "core/chain_cover.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace sigsub {
namespace core {
namespace {

/// Evaluates the per-character cover quadratic
///   q(x) = (1 − p_c)x² + (2Y_c − 2lp_c − p_c·B)x + (X²_l − B)·l·p_c
/// in long double, used to verify integer skip candidates exactly enough
/// that floating-point error can only cost skip length, never correctness.
long double CoverQuadraticAt(int64_t y_c, double p_c, int64_t l, double x2_l,
                             double budget, int64_t x) {
  long double a = 1.0L - static_cast<long double>(p_c);
  long double b = 2.0L * static_cast<long double>(y_c) -
                  2.0L * static_cast<long double>(l) * p_c -
                  static_cast<long double>(p_c) * budget;
  long double c = (static_cast<long double>(x2_l) - budget) *
                  static_cast<long double>(l) * p_c;
  long double lx = static_cast<long double>(x);
  return (a * lx + b) * lx + c;
}

}  // namespace

double CoverChiSquare(double x2_l, int64_t l, int64_t y_c, double p_c,
                      double x) {
  SIGSUB_DCHECK(l >= 1);
  SIGSUB_DCHECK(x >= 0.0);
  double dl = static_cast<double>(l);
  double y = static_cast<double>(y_c);
  return dl * (x2_l + dl) / (dl + x) + (2.0 * x * y + x * x) / ((dl + x) * p_c) -
         (dl + x);
}

double SkipSolver::CharacterRoot(int64_t y_c, double p_c, int64_t l,
                                 double x2_l, double budget) const {
  double a = 1.0 - p_c;
  double b = 2.0 * static_cast<double>(y_c) -
             2.0 * static_cast<double>(l) * p_c - p_c * budget;
  double c = (x2_l - budget) * static_cast<double>(l) * p_c;
  if (c > 0.0) return 0.0;  // X²_l already above budget: no safe extension.
  double disc = b * b - 4.0 * a * c;
  double sq = std::sqrt(disc);
  // Positive root of an upward parabola with q(0) = c <= 0. Use the
  // cancellation-free branch.
  if (b <= 0.0) return (-b + sq) / (2.0 * a);
  return (-2.0 * c) / (b + sq);
}

namespace {

/// Shared core of the MaxSafeExtension overloads. `count_at(c)` yields
/// Y_c however the caller stores it (materialized span, two prefix
/// blocks, or a 2-D rectangle gather); the skip logic is identical, so
/// all overloads return identical results for identical counts.
template <typename CountAt>
int64_t MaxSafeExtensionImpl(const SkipSolver& solver,
                             std::span<const double> probs,
                             const CountAt& count_at, int64_t l, double x2_l,
                             double budget) {
  SIGSUB_DCHECK(l >= 1);
  if (x2_l > budget) return 0;

  double min_root = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < probs.size(); ++c) {
    double root = solver.CharacterRoot(count_at(c), probs[c], l, x2_l,
                                       budget);
    if (root < min_root) min_root = root;
  }
  if (!(min_root > 0.0)) return 0;
  // Guard against pathological overflow of the cast below.
  if (min_root > 9.0e18) min_root = 9.0e18;
  int64_t m = static_cast<int64_t>(std::floor(min_root));
  if (m <= 0) return 0;

  // Verify the integer candidate against every character's quadratic in
  // extended precision; floating-point error in the root can otherwise
  // overshoot by one position. Each decrement is at most a rounding step,
  // so this loop runs O(1) times in practice.
  for (size_t c = 0; c < probs.size() && m > 0;) {
    if (CoverQuadraticAt(count_at(c), probs[c], l, x2_l, budget, m) > 0.0L) {
      --m;
      c = 0;  // Re-verify all characters at the smaller candidate.
      continue;
    }
    ++c;
  }
  return m;
}

}  // namespace

int64_t SkipSolver::MaxSafeExtension(std::span<const int64_t> counts,
                                     int64_t l, double x2_l,
                                     double budget) const {
  std::span<const double> probs = context_->probs();
  SIGSUB_DCHECK(counts.size() == probs.size());
  return MaxSafeExtensionImpl(
      *this, probs, [&](size_t c) { return counts[c]; }, l, x2_l, budget);
}

int64_t SkipSolver::MaxSafeExtension(const int64_t* start_block,
                                     const int64_t* end_block, int64_t l,
                                     double x2_l, double budget) const {
  return MaxSafeExtensionImpl(
      *this, context_->probs(),
      [&](size_t c) { return end_block[c] - start_block[c]; }, l, x2_l,
      budget);
}


int64_t PaperSingleCharacterSkip(const ChiSquareContext& context,
                                 std::span<const int64_t> counts, int64_t l,
                                 double x2_l, double budget) {
  std::span<const double> probs = context.probs();
  SIGSUB_DCHECK(counts.size() == probs.size());
  // Paper line 9: t = argmax (2Y_m + x)/p_m. With x unknown at selection
  // time we follow the common reading x ~ 0, i.e. argmax Y_m/p_m (the
  // Lemma 2 character).
  size_t t = 0;
  double best_score = -1.0;
  for (size_t c = 0; c < probs.size(); ++c) {
    double score = static_cast<double>(counts[c]) / probs[c];
    if (score > best_score) {
      best_score = score;
      t = c;
    }
  }
  SkipSolver solver(context);
  double root = solver.CharacterRoot(counts[t], probs[t], l, x2_l, budget);
  // Paper line 13-14: x = ceil(root), increment l by x => x − 1 unchecked
  // positions are skipped.
  int64_t x = static_cast<int64_t>(std::ceil(root));
  return x > 0 ? x - 1 : 0;
}

}  // namespace core
}  // namespace sigsub
