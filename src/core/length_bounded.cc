#include "core/length_bounded.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {
namespace {

Status ValidateInput(const seq::Sequence& sequence,
                     const seq::MultinomialModel& model, int64_t min_length,
                     int64_t max_length) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (min_length < 1 || min_length > sequence.size()) {
    return Status::InvalidArgument(
        StrCat("min_length must be in [1, ", sequence.size(), "], got ",
               min_length));
  }
  if (max_length < min_length) {
    return Status::InvalidArgument(
        StrCat("max_length (", max_length, ") < min_length (", min_length,
               ")"));
  }
  return Status::OK();
}

}  // namespace

MssResult FindMssLengthBounded(const seq::PrefixCounts& counts,
                               const ChiSquareContext& context,
                               int64_t min_length, int64_t max_length) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  SIGSUB_CHECK(min_length >= 1 && max_length >= min_length);
  const int64_t n = counts.sequence_size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  if (n < min_length) return result;

  SkipSolver solver(context);
  X2Kernel kernel(context);
  double best = 0.0;
  bool found = false;
  for (int64_t i = n - min_length; i >= 0; --i) {
    ++result.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t row_end = std::min(n, i + max_length);
    int64_t end = i + min_length;
    while (end <= row_end) {
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++result.stats.positions_examined;
      if (x2 > best || !found) {
        best = x2;
        found = true;
        result.best = Substring{i, end, x2};
      }
      int64_t skip = solver.MaxSafeExtension(lo, hi, l, x2, best);
      if (skip > 0) {
        ++result.stats.skip_events;
        int64_t last_skipped = std::min(end + skip, row_end);
        if (last_skipped > end) {
          result.stats.positions_skipped += last_skipped - end;
        }
      }
      end += skip + 1;
    }
  }
  return result;
}

Result<MssResult> FindMssLengthBounded(const seq::Sequence& sequence,
                                       const seq::MultinomialModel& model,
                                       int64_t min_length,
                                       int64_t max_length) {
  SIGSUB_RETURN_IF_ERROR(
      ValidateInput(sequence, model, min_length, max_length));
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMssLengthBounded(counts, context, min_length, max_length);
}

Result<MssResult> NaiveFindMssLengthBounded(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    int64_t min_length, int64_t max_length) {
  SIGSUB_RETURN_IF_ERROR(
      ValidateInput(sequence, model, min_length, max_length));
  ChiSquareContext context(model);
  ChiSquareContext::Incremental inc(context);
  const int64_t n = sequence.size();
  MssResult result;
  result.best = Substring{0, 0, 0.0};
  bool found = false;
  for (int64_t i = 0; i + min_length <= n; ++i) {
    ++result.stats.start_positions;
    inc.Reset();
    int64_t row_end = std::min(n, i + max_length);
    for (int64_t end = i + 1; end <= row_end; ++end) {
      inc.Extend(sequence[end - 1]);
      if (end - i < min_length) continue;
      ++result.stats.positions_examined;
      double x2 = inc.chi_square();
      if (x2 > result.best.chi_square || !found) {
        found = true;
        result.best = Substring{i, end, x2};
      }
    }
  }
  return result;
}

}  // namespace core
}  // namespace sigsub
