#include "core/significance.h"

#include <vector>

#include "common/str_util.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace core {

double SubstringPValue(double chi_square, int alphabet_size) {
  return stats::ChiSquarePValue(chi_square, alphabet_size);
}

Result<ScoredSubstring> ScoreSubstring(const seq::Sequence& sequence,
                                       const seq::MultinomialModel& model,
                                       int64_t start, int64_t end) {
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  if (start < 0 || start >= end || end > sequence.size()) {
    return Status::OutOfRange(
        StrCat("substring [", start, ", ", end, ") out of range for length ",
               sequence.size()));
  }
  std::vector<int64_t> counts = sequence.CountsInRange(start, end);
  ScoredSubstring out;
  out.substring.start = start;
  out.substring.end = end;
  out.substring.chi_square = stats::PearsonChiSquare(counts, model.probs());
  out.p_value =
      SubstringPValue(out.substring.chi_square, model.alphabet_size());
  out.g2 = stats::LikelihoodRatioG2(counts, model.probs());
  return out;
}

Result<ScoredSubstring> ScoreResult(const seq::Sequence& sequence,
                                    const seq::MultinomialModel& model,
                                    const MssResult& result) {
  return ScoreSubstring(sequence, model, result.best.start, result.best.end);
}

}  // namespace core
}  // namespace sigsub
