#ifndef SIGSUB_CORE_THRESHOLD_H_
#define SIGSUB_CORE_THRESHOLD_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// Options for the threshold scan. The number of qualifying substrings can
/// be Θ(n²); `max_matches` caps how many are materialized (the exact count
/// and the best match are always reported).
struct ThresholdOptions {
  int64_t max_matches = INT64_MAX;
};

/// Problem 3 (significance above a threshold): every substring with
/// X² > alpha0. Paper Algorithm 3; the skip budget is the constant alpha0,
/// giving O(k·n·sqrt(n/alpha0)) once alpha0 exceeds typical substring
/// scores, degrading gracefully to O(k·n²) as alpha0 → 0.
Result<ThresholdResult> FindAboveThreshold(const seq::Sequence& sequence,
                                           const seq::MultinomialModel& model,
                                           double alpha0,
                                           ThresholdOptions options = {});

/// Kernel variant (see FindMss).
ThresholdResult FindAboveThreshold(const seq::PrefixCounts& counts,
                                   const ChiSquareContext& context,
                                   double alpha0, ThresholdOptions options = {});

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_THRESHOLD_H_
