#include "core/mss.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/str_util.h"
#include "core/chain_cover.h"
#include "core/x2_kernel.h"

namespace sigsub {
namespace core {
namespace {

Status ValidateInput(const seq::Sequence& sequence,
                     const seq::MultinomialModel& model) {
  if (sequence.empty()) {
    return Status::InvalidArgument("sequence is empty; it has no substrings");
  }
  if (sequence.alphabet_size() != model.alphabet_size()) {
    return Status::InvalidArgument(
        StrCat("sequence alphabet size (", sequence.alphabet_size(),
               ") != model alphabet size (", model.alphabet_size(), ")"));
  }
  return Status::OK();
}

}  // namespace

MssResult FindMssInRange(const seq::PrefixCounts& counts,
                         const ChiSquareContext& context, int64_t range_start,
                         int64_t range_end, int64_t min_length) {
  SIGSUB_CHECK(context.alphabet_size() == counts.alphabet_size());
  SIGSUB_CHECK(range_start >= 0 && range_end <= counts.sequence_size());
  SIGSUB_CHECK(min_length >= 1);

  MssResult result;
  result.best = Substring{range_start, range_start, 0.0};
  if (range_end - range_start < min_length) return result;

  SkipSolver solver(context);
  X2Kernel kernel(context);
  double best = 0.0;
  bool found = false;

  // Paper Algorithm 1: outer loop over start positions (the paper goes
  // i = n..1; direction does not affect correctness or the analysis), inner
  // loop over ending positions with chain-cover skips. The start block is
  // pinned per row; each candidate is one fused pass over two blocks.
  for (int64_t i = range_end - min_length; i >= range_start; --i) {
    ++result.stats.start_positions;
    const int64_t* lo = counts.BlockAt(i);
    int64_t end = i + min_length;
    while (end <= range_end) {
      const int64_t* hi = counts.BlockAt(end);
      int64_t l = end - i;
      double x2 = kernel.EvaluateBlocks(lo, hi, l);
      ++result.stats.positions_examined;
      if (x2 > best || !found) {
        best = x2;
        found = true;
        result.best = Substring{i, end, x2};
      }
      int64_t skip = solver.MaxSafeExtension(lo, hi, l, x2, best);
      if (skip > 0) {
        ++result.stats.skip_events;
        int64_t last_skipped = std::min(end + skip, range_end);
        if (last_skipped > end) {
          result.stats.positions_skipped += last_skipped - end;
        }
      }
      end += skip + 1;
    }
  }
  return result;
}

MssResult FindMss(const seq::PrefixCounts& counts,
                  const ChiSquareContext& context) {
  return FindMssInRange(counts, context, 0, counts.sequence_size(),
                        /*min_length=*/1);
}

Result<MssResult> FindMss(const seq::Sequence& sequence,
                          const seq::MultinomialModel& model) {
  SIGSUB_RETURN_IF_ERROR(ValidateInput(sequence, model));
  seq::PrefixCounts counts(sequence);
  ChiSquareContext context(model);
  return FindMss(counts, context);
}

}  // namespace core
}  // namespace sigsub
