#ifndef SIGSUB_CORE_LENGTH_BOUNDED_H_
#define SIGSUB_CORE_LENGTH_BOUNDED_H_

#include <cstdint>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/scan_types.h"
#include "seq/model.h"
#include "seq/prefix_counts.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// MSS among substrings with min_length <= length <= max_length — the
/// windowed setting of the related work the paper discusses in Section 2
/// (episode mining constrains patterns to a window of size w), folded into
/// the skip-scan framework. Generalizes both FindMss (1, n) and
/// FindMssMinLength (Γ₀+1, n). The chain-cover skip applies unchanged; the
/// cap only shortens each scan row.
Result<MssResult> FindMssLengthBounded(const seq::Sequence& sequence,
                                       const seq::MultinomialModel& model,
                                       int64_t min_length,
                                       int64_t max_length);

/// Kernel variant.
MssResult FindMssLengthBounded(const seq::PrefixCounts& counts,
                               const ChiSquareContext& context,
                               int64_t min_length, int64_t max_length);

/// Exact O(n·w) baseline for tests (w = max_length).
Result<MssResult> NaiveFindMssLengthBounded(
    const seq::Sequence& sequence, const seq::MultinomialModel& model,
    int64_t min_length, int64_t max_length);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_LENGTH_BOUNDED_H_
