#ifndef SIGSUB_CORE_SUFFIX_SCAN_H_
#define SIGSUB_CORE_SUFFIX_SCAN_H_

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/result.h"
#include "core/chi_square.h"
#include "core/markov_scan.h"
#include "core/scan_types.h"
#include "seq/sequence.h"

namespace sigsub {
namespace core {

/// All-substrings mining over one record (ROADMAP item 2, after
/// Belazzougui & Cunial "Space-efficient detection of unusual words"):
/// instead of asking "which interval is most significant?" this subsystem
/// reports *the significant distinct substrings themselves*, each with its
/// occurrence count, X², and p-value.
///
/// The index is a suffix array (SA-IS, O(n)) plus an LCP array (Kasai,
/// O(n)). A left-to-right sweep over the LCP array with an interval stack
/// enumerates the suffix-tree nodes; each node is one *right-extension
/// equivalence class*: the set of distinct substrings sharing the same
/// start-position set, which are exactly the path strings with lengths in
/// (parent_depth, depth]. The class's occurrence count is the SA-interval
/// width, its positions are the SA entries of the interval, and its
/// members are scored against the null model with the same fused X²
/// kernel the interval scanners use (X2Kernel::EvaluateCounts) — no
/// per-position PrefixCounts scratch is ever materialized, which is what
/// keeps peak memory at a handful of bytes per symbol (SA + LCP + the
/// record) instead of the 8·k bytes per position of the interval-scan
/// layout.
///
/// Maximality ("maximal-only" reporting contract): a distinct substring w
/// is reported iff it is the longest member of its class — equivalently,
/// iff every one-symbol right extension wa occurs strictly fewer times
/// than w. Nested substrings that occur in exactly the same places as a
/// longer reported one are suppressed; they add no information (same
/// positions, same count) and would otherwise flood the output. With
/// `maximal_only = false` every distinct substring is enumerated (one
/// entry per class member), which is quadratic in the worst case — cap it
/// with `max_length`.
struct SuffixScanOptions {
  /// Keep the `top_n` highest-X² substrings (0 = keep every match; only
  /// sensible together with a threshold or on small records).
  int64_t top_n = 10;

  /// Report only substrings with length in [min_length, max_length];
  /// max_length 0 means unbounded. In maximal-only mode a class whose
  /// longest member exceeds max_length is skipped entirely (its truncation
  /// is not class-maximal), so maximality semantics stay exact.
  int64_t min_length = 1;
  int64_t max_length = 0;

  /// Report only substrings occurring at least this often.
  int64_t min_count = 1;

  /// See the class comment. Default on: report one substring per class.
  bool maximal_only = true;

  /// Collect the sorted occurrence start positions of each reported
  /// substring (SuffixScanResult::positions, parallel to `classes`).
  bool collect_positions = false;

  /// X² threshold: candidates scoring below are neither reported nor
  /// counted in match_count. Default accepts everything.
  double min_x2 = -std::numeric_limits<double>::infinity();
};

/// One reported distinct substring: a representative occurrence (the
/// smallest-index one the sweep saw), its class occurrence count, and the
/// asymptotic p-value of its X² (χ²(k−1) multinomial, χ²(k(k−1)) Markov).
struct SubstringClass {
  Substring substring;
  int64_t count = 0;
  double p_value = 1.0;
};

/// Sweep instrumentation and memory accounting.
struct SuffixScanStats {
  int64_t classes_enumerated = 0;  // Suffix-tree nodes visited.
  int64_t candidates_scored = 0;   // Substrings evaluated against filters.
  int64_t peak_index_bytes = 0;    // High-water bytes while building SA+LCP.
  int64_t index_bytes = 0;         // Steady-state bytes held by the index.
};

struct SuffixScanResult {
  /// Descending X²; ties broken by length ascending, then substring text
  /// ascending (symbol order) — a total order over distinct substrings
  /// that is independent of enumeration order, so the top-N cut is
  /// deterministic and comparable across the suffix and naive paths.
  std::vector<SubstringClass> classes;

  /// Total candidates passing all filters (>= classes.size(); the excess
  /// was cut by top_n).
  int64_t match_count = 0;

  /// When SuffixScanOptions::collect_positions: positions[i] holds the
  /// ascending occurrence start positions of classes[i].
  std::vector<std::vector<int64_t>> positions;

  SuffixScanStats stats;
};

/// The suffix index over one record. Build() borrows the symbol data — the
/// caller keeps it alive (and unchanged) for the lifetime of the scan;
/// this is what lets a memory-mapped record be indexed without a decoded
/// in-RAM copy (BuildMapped applies a byte→symbol table on access).
class SuffixScan {
 public:
  /// Builds the index over decoded symbols (each < alphabet_size).
  /// Records are limited to 2^31 − 2 symbols (the index is 32-bit).
  static Result<SuffixScan> Build(std::span<const uint8_t> symbols,
                                  int alphabet_size);

  /// As Build, over raw (e.g. memory-mapped) bytes: `decode` maps each
  /// byte to its symbol id, 0xFF marking bytes outside the alphabet
  /// (rejected). Only alphabets with k <= 255 are mappable.
  static Result<SuffixScan> BuildMapped(std::span<const uint8_t> bytes,
                                        std::span<const uint8_t, 256> decode,
                                        int alphabet_size);

  int64_t size() const { return n_; }
  int alphabet_size() const { return k_; }

  /// Steady-state bytes held by the index (SA + LCP arrays).
  int64_t index_bytes() const { return index_bytes_; }

  /// High-water bytes transiently allocated while building (SA-IS
  /// recursion workspace + the rank array of the LCP pass).
  int64_t peak_index_bytes() const { return peak_index_bytes_; }

  /// The underlying arrays, exposed for validation: suffix_array()[r] is
  /// the start of the rank-r suffix; lcp_array()[r] the longest common
  /// prefix with the rank-(r−1) suffix (lcp_array()[0] == 0).
  std::span<const int32_t> suffix_array() const { return sa_; }
  std::span<const int32_t> lcp_array() const { return lcp_; }

  /// Scores under the multinomial null of `context` with the fused X²
  /// kernel (alphabet sizes must match).
  Result<SuffixScanResult> Scan(const ChiSquareContext& context,
                                const SuffixScanOptions& options) const;

  /// Scores under a first-order Markov null: X²_M of each candidate's
  /// transition counts (core/markov_scan.h). Length-1 substrings carry no
  /// transition and score 0.
  Result<SuffixScanResult> ScanMarkov(const MarkovChiSquare& context,
                                      const SuffixScanOptions& options) const;

 private:
  SuffixScan() = default;

  Status BuildIndex();

  uint8_t Sym(int64_t i) const { return decode_[data_[i]]; }

  template <typename Scorer>
  Result<SuffixScanResult> ScanImpl(Scorer&& scorer,
                                    const SuffixScanOptions& options) const;

  const uint8_t* data_ = nullptr;
  int64_t n_ = 0;
  int k_ = 0;
  std::array<uint8_t, 256> decode_{};
  std::vector<int32_t> sa_;   // sa_[r] = start of rank-r suffix.
  std::vector<int32_t> lcp_;  // lcp_[r] = lcp(suffix sa_[r-1], sa_[r]).
  int64_t index_bytes_ = 0;
  int64_t peak_index_bytes_ = 0;
};

/// Brute-force reference: enumerates every substring by position, dedupes
/// by content, counts occurrences by map aggregation, applies the same
/// filters/ordering as SuffixScan::Scan, and scores each reported
/// substring over a PrefixCounts built for the record — i.e. exactly the
/// per-position layout the suffix path avoids. O(n²·L) time and O(n·k)
/// memory; exists to gate the suffix path (tests and bench/suffix_scan.cc
/// check bit-identical X² and identical class sets).
Result<SuffixScanResult> NaiveAllSubstringsScan(
    const seq::Sequence& sequence, const ChiSquareContext& context,
    const SuffixScanOptions& options);

/// Markov-null brute-force reference (see NaiveAllSubstringsScan).
Result<SuffixScanResult> NaiveAllSubstringsScanMarkov(
    const seq::Sequence& sequence, const MarkovChiSquare& context,
    const SuffixScanOptions& options);

}  // namespace core
}  // namespace sigsub

#endif  // SIGSUB_CORE_SUFFIX_SCAN_H_
