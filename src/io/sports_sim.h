#ifndef SIGSUB_IO_SPORTS_SIM_H_
#define SIGSUB_IO_SPORTS_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/date_axis.h"
#include "seq/sequence.h"

namespace sigsub {
namespace io {

/// A planted era: `num_games` games starting at game index `start_game`
/// during which team A's win probability is `win_prob` instead of the
/// base rate.
struct PlantedEra {
  int64_t start_game = 0;
  int64_t num_games = 0;
  double win_prob = 0.5;
  std::string label;
};

/// Configuration of the synthetic rivalry series (stand-in for the
/// Yankees–Red Sox dataset of paper Section 7.5.1; see DESIGN.md §2.2).
struct RivalryConfig {
  int start_year = 1901;
  int64_t num_games = 2086;   // ~the paper's "over two thousand games".
  int games_per_year = 21;
  double base_win_prob = 0.5427;  // Paper: Yankees won 54.27%.
  std::vector<PlantedEra> eras;
  uint64_t seed = 19011904;
};

/// The generated series: outcomes[i] == 1 iff team A won game i.
class RivalrySeries {
 public:
  /// Generates from a config; fails if eras overlap or exceed the schedule.
  static Result<RivalrySeries> Generate(const RivalryConfig& config);

  /// The default dataset: era layout mirroring the paper's Table 3
  /// (a long 1924-1933 Yankees era, the 1911-1913 Red Sox glory period,
  /// etc.).
  static RivalrySeries Default();

  const seq::Sequence& outcomes() const { return outcomes_; }
  const DateAxis& dates() const { return dates_; }
  const RivalryConfig& config() const { return config_; }

  /// Wins for team A in games [start, end).
  int64_t WinsInRange(int64_t start, int64_t end) const;

  /// Empirical win probability over the whole series (the null-model p̂
  /// used when scoring, as the paper estimates it from the data).
  double EmpiricalWinRate() const;

 private:
  RivalrySeries(RivalryConfig config, seq::Sequence outcomes, DateAxis dates)
      : config_(std::move(config)),
        outcomes_(std::move(outcomes)),
        dates_(std::move(dates)) {}

  RivalryConfig config_;
  seq::Sequence outcomes_;
  DateAxis dates_;
};

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_SPORTS_SIM_H_
