#ifndef SIGSUB_IO_MMAP_CORPUS_H_
#define SIGSUB_IO_MMAP_CORPUS_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"

namespace sigsub {
namespace io {

/// A read-only memory-mapped file. The mapping is the record: callers mine
/// the bytes in place (decode tables translate byte -> symbol on access),
/// so a multi-gigabyte corpus costs page-cache residency, not a decoded
/// in-RAM copy. Move-only; the mapping lives until destruction.
///
/// An empty file maps to an empty span (no mmap is made — POSIX rejects
/// zero-length mappings).
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }
  int64_t size() const { return static_cast<int64_t>(size_); }
  bool empty() const { return size_ == 0; }
  const std::string& path() const { return path_; }

  /// Hints the kernel that the mapping will be read front to back
  /// (madvise(MADV_SEQUENTIAL)); best-effort, errors ignored.
  void AdviseSequential() const;

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

/// Byte -> symbol translation table for mining mapped bytes in place:
/// decode[b] is the symbol id of byte b, or kInvalidByte for bytes outside
/// the alphabet. (Symbol ids are < 255 — seq::Alphabet caps k at 255 — so
/// the sentinel never collides.)
inline constexpr uint8_t kInvalidByte = 0xFF;

/// Builds the decode table of an alphabet given as its character string
/// (seq::Alphabet::characters() order: decode[chars[s]] = s).
std::array<uint8_t, 256> MakeDecodeTable(std::string_view alphabet_chars);

/// Scans `bytes` and reports the distinct byte values as a string sorted
/// in `char` order — the same inference rule engine::Corpus uses for text
/// corpora (including the pad-to-two-symbols rule for unary input), so a
/// mapped record and the same bytes loaded through FromStrings infer the
/// same alphabet. Streams in chunks; touches each page once.
std::string InferAlphabetBytes(std::span<const uint8_t> bytes);

/// Returns the offset of the first byte of `bytes` whose decode entry is
/// kInvalidByte, or -1 when every byte is in the alphabet. Streams in
/// chunks.
int64_t FindInvalidByte(std::span<const uint8_t> bytes,
                        const std::array<uint8_t, 256>& decode);

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_MMAP_CORPUS_H_
