#ifndef SIGSUB_IO_STRING_CODEC_H_
#define SIGSUB_IO_STRING_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "seq/sequence.h"

namespace sigsub {
namespace io {

/// Encoders that turn application data into the binary strings the paper
/// analyzes (wins/losses, up/down days), plus small formatting helpers for
/// the table benches.

/// Binary sequence from a boolean series (true -> symbol 1).
seq::Sequence BinaryFromBools(const std::vector<bool>& values);

/// Binary sequence from the signs of consecutive differences: symbol 1
/// where series[i+1] > series[i], else 0. Output has size() - 1 elements;
/// requires at least 2 values. Ties (equal values) count as "down", the
/// usual convention for daily closes.
Result<seq::Sequence> UpDownFromLevels(const std::vector<double>& levels);

/// "54.27%" with the given number of decimals.
std::string FormatPercent(double fraction, int decimals = 2);

/// "+68.10%" / "-41.27%" (signed), for change columns.
std::string FormatSignedPercent(double fraction, int decimals = 2);

/// Parses a binary string of '0'/'1' characters.
Result<seq::Sequence> ParseBinaryString(const std::string& text);

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_STRING_CODEC_H_
