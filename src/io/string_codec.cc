#include "io/string_codec.h"

#include "common/str_util.h"
#include "seq/alphabet.h"

namespace sigsub {
namespace io {

seq::Sequence BinaryFromBools(const std::vector<bool>& values) {
  seq::Sequence out(2);
  out.Reserve(static_cast<int64_t>(values.size()));
  for (bool v : values) out.Append(v ? 1 : 0);
  return out;
}

Result<seq::Sequence> UpDownFromLevels(const std::vector<double>& levels) {
  if (levels.size() < 2) {
    return Status::InvalidArgument(
        StrCat("need at least 2 levels to compute moves, got ",
               levels.size()));
  }
  seq::Sequence out(2);
  out.Reserve(static_cast<int64_t>(levels.size()) - 1);
  for (size_t i = 1; i < levels.size(); ++i) {
    out.Append(levels[i] > levels[i - 1] ? 1 : 0);
  }
  return out;
}

std::string FormatPercent(double fraction, int decimals) {
  return StrFormat("%.*f%%", decimals, fraction * 100.0);
}

std::string FormatSignedPercent(double fraction, int decimals) {
  return StrFormat("%+.*f%%", decimals, fraction * 100.0);
}

Result<seq::Sequence> ParseBinaryString(const std::string& text) {
  return seq::Sequence::FromString(seq::Alphabet::Binary(), text);
}

}  // namespace io
}  // namespace sigsub
