#include "io/market_sim.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/str_util.h"
#include "seq/rng.h"

namespace sigsub {
namespace io {
namespace {

Status ValidateRegimes(const MarketConfig& config) {
  std::vector<MarketRegime> regimes = config.regimes;
  std::sort(regimes.begin(), regimes.end(),
            [](const MarketRegime& a, const MarketRegime& b) {
              return a.start_day < b.start_day;
            });
  int64_t prev_end = 0;
  for (const MarketRegime& regime : regimes) {
    if (regime.start_day < 0 || regime.num_days <= 0) {
      return Status::InvalidArgument(
          StrCat("regime '", regime.label, "' has invalid bounds [",
                 regime.start_day, ", +", regime.num_days, ")"));
    }
    if (regime.start_day < prev_end) {
      return Status::InvalidArgument(
          StrCat("regime '", regime.label, "' overlaps the previous regime"));
    }
    if (regime.start_day + regime.num_days > config.num_days) {
      return Status::InvalidArgument(
          StrCat("regime '", regime.label, "' extends past the series (",
                 config.num_days, " days)"));
    }
    if (!(regime.up_prob > 0.0 && regime.up_prob < 1.0)) {
      return Status::InvalidArgument(
          StrCat("regime '", regime.label, "' up_prob must be in (0,1), got ",
                 regime.up_prob));
    }
    prev_end = regime.start_day + regime.num_days;
  }
  return Status::OK();
}

}  // namespace

Result<MarketSeries> MarketSeries::Generate(const MarketConfig& config) {
  if (config.num_days <= 0) {
    return Status::InvalidArgument(
        StrCat("num_days must be positive, got ", config.num_days));
  }
  if (!(config.base_up_prob > 0.0 && config.base_up_prob < 1.0)) {
    return Status::InvalidArgument(
        StrCat("base_up_prob must be in (0,1), got ", config.base_up_prob));
  }
  SIGSUB_RETURN_IF_ERROR(ValidateRegimes(config));

  std::vector<double> up_prob(static_cast<size_t>(config.num_days),
                              config.base_up_prob);
  for (const MarketRegime& regime : config.regimes) {
    for (int64_t d = regime.start_day; d < regime.start_day + regime.num_days;
         ++d) {
      up_prob[static_cast<size_t>(d)] = regime.up_prob;
    }
  }
  seq::Rng rng(config.seed);
  seq::Sequence updown(2);
  updown.Reserve(config.num_days);
  for (int64_t d = 0; d < config.num_days; ++d) {
    updown.Append(rng.NextBernoulli(up_prob[static_cast<size_t>(d)]) ? 1 : 0);
  }
  DateAxis dates = DateAxis::TradingDays(config.start_date, config.num_days);
  return MarketSeries(config, std::move(updown), std::move(dates));
}

namespace {

/// Builds a config whose regimes are specified by calendar dates; indices
/// are resolved against the trading-day axis.
MarketSeries BuildNamedSeries(
    MarketConfig config,
    const std::vector<std::tuple<Date, Date, double, std::string>>& spans) {
  DateAxis axis = DateAxis::TradingDays(config.start_date, config.num_days);
  for (const auto& [from, to, up_prob, label] : spans) {
    int64_t start = axis.LowerBound(from);
    int64_t end = axis.LowerBound(to);
    SIGSUB_CHECK(end > start);
    config.regimes.push_back(MarketRegime{start, end - start, up_prob, label});
  }
  auto result = MarketSeries::Generate(config);
  SIGSUB_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace

MarketSeries MarketSeries::DowJones() {
  MarketConfig config;
  config.name = "Dow Jones";
  config.start_date = Date{1928, 10, 1};
  config.num_days = 20906;  // Paper: 20906 days since 1928.
  config.base_up_prob = 0.52;
  config.seed = 19281001;
  return BuildNamedSeries(
      config,
      {
          {{1929, 9, 19}, {1929, 11, 14}, 0.25, "1929 crash"},
          {{1931, 2, 27}, {1932, 5, 4}, 0.38, "1931-32 depression slide"},
          {{1954, 2, 24}, {1955, 12, 6}, 0.64, "1954-55 bull run"},
          {{1958, 6, 25}, {1959, 8, 4}, 0.655, "1958-59 bull run"},
      });
}

MarketSeries MarketSeries::SP500() {
  MarketConfig config;
  config.name = "S&P 500";
  config.start_date = Date{1950, 1, 3};
  config.num_days = 15600;  // Paper: 15600 days since 1950.
  config.base_up_prob = 0.53;
  config.seed = 19500103;
  return BuildNamedSeries(
      config,
      {
          {{1953, 9, 15}, {1955, 9, 20}, 0.63, "1953-55 bull run"},
          {{1973, 10, 26}, {1974, 11, 21}, 0.36, "1973-74 bear market"},
          {{1994, 12, 9}, {1995, 5, 17}, 0.73, "1994-95 rally"},
          {{2000, 9, 5}, {2003, 3, 12}, 0.475, "2000-03 dot-com bust"},
      });
}

MarketSeries MarketSeries::Ibm() {
  MarketConfig config;
  config.name = "IBM";
  config.start_date = Date{1962, 1, 2};
  config.num_days = 12517;  // Paper: 12517 days since 1962.
  config.base_up_prob = 0.515;
  config.seed = 19620102;
  return BuildNamedSeries(
      config,
      {
          {{1962, 10, 26}, {1968, 1, 26}, 0.557, "1962-68 growth era"},
          {{1970, 8, 13}, {1970, 10, 6}, 0.78, "1970 rally"},
          {{1973, 2, 22}, {1975, 8, 13}, 0.45, "1973-75 slide"},
          {{2005, 3, 31}, {2005, 4, 20}, 0.10, "2005 drop"},
      });
}

int64_t MarketSeries::UpDaysInRange(int64_t start, int64_t end) const {
  SIGSUB_CHECK(start >= 0 && start <= end && end <= updown_.size());
  int64_t ups = 0;
  for (int64_t i = start; i < end; ++i) ups += updown_[i];
  return ups;
}

double MarketSeries::EmpiricalUpRate() const {
  SIGSUB_CHECK(updown_.size() > 0);
  return static_cast<double>(UpDaysInRange(0, updown_.size())) /
         static_cast<double>(updown_.size());
}

double MarketSeries::PriceChangeInRange(int64_t start, int64_t end) const {
  int64_t ups = UpDaysInRange(start, end);
  int64_t downs = (end - start) - ups;
  double m = config_.daily_move;
  return std::exp(static_cast<double>(ups) * std::log1p(m) +
                  static_cast<double>(downs) * std::log1p(-m)) -
         1.0;
}

}  // namespace io
}  // namespace sigsub
