#include "io/sports_sim.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"
#include "seq/rng.h"

namespace sigsub {
namespace io {
namespace {

Status ValidateEras(const RivalryConfig& config) {
  std::vector<PlantedEra> eras = config.eras;
  std::sort(eras.begin(), eras.end(),
            [](const PlantedEra& a, const PlantedEra& b) {
              return a.start_game < b.start_game;
            });
  int64_t prev_end = 0;
  for (const PlantedEra& era : eras) {
    if (era.start_game < 0 || era.num_games <= 0) {
      return Status::InvalidArgument(
          StrCat("era '", era.label, "' has invalid bounds [", era.start_game,
                 ", +", era.num_games, ")"));
    }
    if (era.start_game < prev_end) {
      return Status::InvalidArgument(
          StrCat("era '", era.label, "' overlaps the previous era"));
    }
    if (era.start_game + era.num_games > config.num_games) {
      return Status::InvalidArgument(
          StrCat("era '", era.label, "' extends past the schedule (",
                 config.num_games, " games)"));
    }
    if (!(era.win_prob > 0.0 && era.win_prob < 1.0)) {
      return Status::InvalidArgument(
          StrCat("era '", era.label, "' win_prob must be in (0,1), got ",
                 era.win_prob));
    }
    prev_end = era.start_game + era.num_games;
  }
  return Status::OK();
}

}  // namespace

Result<RivalrySeries> RivalrySeries::Generate(const RivalryConfig& config) {
  if (config.num_games <= 0) {
    return Status::InvalidArgument(
        StrCat("num_games must be positive, got ", config.num_games));
  }
  if (!(config.base_win_prob > 0.0 && config.base_win_prob < 1.0)) {
    return Status::InvalidArgument(
        StrCat("base_win_prob must be in (0,1), got ", config.base_win_prob));
  }
  SIGSUB_RETURN_IF_ERROR(ValidateEras(config));

  // Per-game win probability: base rate, overridden inside planted eras.
  std::vector<double> win_prob(static_cast<size_t>(config.num_games),
                               config.base_win_prob);
  for (const PlantedEra& era : config.eras) {
    for (int64_t g = era.start_game; g < era.start_game + era.num_games; ++g) {
      win_prob[static_cast<size_t>(g)] = era.win_prob;
    }
  }
  seq::Rng rng(config.seed);
  seq::Sequence outcomes(2);
  outcomes.Reserve(config.num_games);
  for (int64_t g = 0; g < config.num_games; ++g) {
    outcomes.Append(rng.NextBernoulli(win_prob[static_cast<size_t>(g)]) ? 1
                                                                        : 0);
  }
  DateAxis dates = DateAxis::SportsSchedule(config.start_year,
                                            config.num_games,
                                            config.games_per_year);
  return RivalrySeries(config, std::move(outcomes), std::move(dates));
}

RivalrySeries RivalrySeries::Default() {
  RivalryConfig config;
  // 21 games/season from 1901: game index ~ (year - 1901) * 21.
  auto game_of_year = [&](int year) -> int64_t {
    return static_cast<int64_t>(year - config.start_year) *
           config.games_per_year;
  };
  // Era layout mirrors the paper's Table 3 (see DESIGN.md §2.2): the
  // 1924-1933 Yankees dynasty, the 1911-1913 Red Sox glory years, plus the
  // three shorter patches the paper reports.
  config.eras = {
      {game_of_year(1902) + 2, 27, 0.148, "1902-1903 Red Sox edge"},
      {game_of_year(1911) + 9, 39, 0.128, "1911-1913 Red Sox glory"},
      {game_of_year(1924) + 6, 204, 0.760, "1924-1933 Yankees dynasty"},
      {game_of_year(1960) + 6, 42, 0.800, "1960-1962 Yankees run"},
      {game_of_year(1972) + 1, 35, 0.200, "1972-1974 Red Sox run"},
  };
  auto result = Generate(config);
  SIGSUB_CHECK(result.ok());
  return std::move(result).value();
}

int64_t RivalrySeries::WinsInRange(int64_t start, int64_t end) const {
  SIGSUB_CHECK(start >= 0 && start <= end && end <= outcomes_.size());
  int64_t wins = 0;
  for (int64_t i = start; i < end; ++i) wins += outcomes_[i];
  return wins;
}

double RivalrySeries::EmpiricalWinRate() const {
  SIGSUB_CHECK(outcomes_.size() > 0);
  return static_cast<double>(WinsInRange(0, outcomes_.size())) /
         static_cast<double>(outcomes_.size());
}

}  // namespace io
}  // namespace sigsub
