#include "io/table_writer.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace sigsub {
namespace io {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SIGSUB_CHECK(!headers_.empty());
}

void TableWriter::AddRow(std::vector<std::string> cells) {
  SIGSUB_CHECK_MSG(cells.size() == headers_.size(),
                   "row has %zu cells, table has %zu columns", cells.size(),
                   headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) oss << "  ";
      oss << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) oss << ' ';
    }
    oss << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string TableWriter::RenderCsv() const {
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) oss << ',';
      oss << CsvEscape(row[c]);
    }
    oss << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

}  // namespace io
}  // namespace sigsub
