#ifndef SIGSUB_IO_TABLE_WRITER_H_
#define SIGSUB_IO_TABLE_WRITER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace sigsub {
namespace io {

/// Column-aligned plain-text table used by the benchmark harness to print
/// paper-style tables, with a CSV rendering for machine consumption.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers
  /// (checked).
  void AddRow(std::vector<std::string> cells);

  size_t row_count() const { return rows_.size(); }

  /// Monospace-aligned rendering with a header underline.
  std::string Render() const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string RenderCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_TABLE_WRITER_H_
