#ifndef SIGSUB_IO_DATE_AXIS_H_
#define SIGSUB_IO_DATE_AXIS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sigsub {
namespace io {

/// A Gregorian calendar date.
struct Date {
  int year = 1900;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  /// "dd-mm-yyyy", the format of the paper's Tables 3-6.
  std::string ToString() const;

  bool operator==(const Date&) const = default;
};

/// True for Gregorian leap years.
bool IsLeapYear(int year);

/// Days in the given month of the given year.
int DaysInMonth(int year, int month);

/// The date `days` days after `d` (days >= 0).
Date AddDays(Date d, int64_t days);

/// Day of week, 0 = Monday .. 6 = Sunday (proleptic Gregorian).
int DayOfWeek(const Date& d);

/// Maps sequence positions to calendar dates, so application benchmarks can
/// report periods the way the paper's tables do. Synthetic stand-in for the
/// real datasets' timestamps (DESIGN.md §2.2).
class DateAxis {
 public:
  /// A sports schedule: `games_per_year` games per season, evenly spaced
  /// from mid-April to early October starting in `start_year`.
  static DateAxis SportsSchedule(int start_year, int64_t num_games,
                                 int games_per_year);

  /// Consecutive trading days (weekdays; holidays ignored) starting at
  /// `start`.
  static DateAxis TradingDays(Date start, int64_t num_days);

  int64_t size() const { return static_cast<int64_t>(dates_.size()); }
  const Date& date(int64_t index) const { return dates_[index]; }

  /// Index of the first date >= `d` (or size() if none).
  int64_t LowerBound(const Date& d) const;

 private:
  explicit DateAxis(std::vector<Date> dates) : dates_(std::move(dates)) {}

  std::vector<Date> dates_;
};

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_DATE_AXIS_H_
