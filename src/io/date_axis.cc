#include "io/date_axis.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace sigsub {
namespace io {

std::string Date::ToString() const {
  return StrFormat("%02d-%02d-%04d", day, month, year);
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  SIGSUB_CHECK(month >= 1 && month <= 12);
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

Date AddDays(Date d, int64_t days) {
  SIGSUB_CHECK(days >= 0);
  while (days > 0) {
    int remaining_in_month = DaysInMonth(d.year, d.month) - d.day;
    if (days <= remaining_in_month) {
      d.day += static_cast<int>(days);
      return d;
    }
    days -= remaining_in_month + 1;
    d.day = 1;
    if (++d.month > 12) {
      d.month = 1;
      ++d.year;
    }
  }
  return d;
}

int DayOfWeek(const Date& d) {
  // Sakamoto's algorithm, shifted so 0 = Monday.
  static const int kOffsets[] = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  int y = d.year;
  if (d.month < 3) y -= 1;
  int dow_sun0 =
      (y + y / 4 - y / 100 + y / 400 + kOffsets[d.month - 1] + d.day) % 7;
  return (dow_sun0 + 6) % 7;
}

DateAxis DateAxis::SportsSchedule(int start_year, int64_t num_games,
                                  int games_per_year) {
  SIGSUB_CHECK(num_games >= 0);
  SIGSUB_CHECK(games_per_year >= 1);
  std::vector<Date> dates;
  dates.reserve(static_cast<size_t>(num_games));
  // Season runs April 15 to roughly October 1: ~170 days.
  const int season_days = 170;
  int year = start_year;
  int64_t produced = 0;
  while (produced < num_games) {
    for (int g = 0; g < games_per_year && produced < num_games; ++g) {
      int64_t offset = static_cast<int64_t>(g) * season_days /
                       std::max(1, games_per_year - 1);
      dates.push_back(AddDays(Date{year, 4, 15}, offset));
      ++produced;
    }
    ++year;
  }
  return DateAxis(std::move(dates));
}

DateAxis DateAxis::TradingDays(Date start, int64_t num_days) {
  SIGSUB_CHECK(num_days >= 0);
  std::vector<Date> dates;
  dates.reserve(static_cast<size_t>(num_days));
  Date d = start;
  while (static_cast<int64_t>(dates.size()) < num_days) {
    if (DayOfWeek(d) < 5) dates.push_back(d);  // Monday..Friday.
    d = AddDays(d, 1);
  }
  return DateAxis(std::move(dates));
}

int64_t DateAxis::LowerBound(const Date& d) const {
  auto before = [](const Date& a, const Date& b) {
    if (a.year != b.year) return a.year < b.year;
    if (a.month != b.month) return a.month < b.month;
    return a.day < b.day;
  };
  auto it = std::lower_bound(dates_.begin(), dates_.end(), d, before);
  return it - dates_.begin();
}

}  // namespace io
}  // namespace sigsub
