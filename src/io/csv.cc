#include "io/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace sigsub {
namespace io {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(StrCat("cannot open '", path, "' for reading"));
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

Result<std::vector<double>> ReadCsvNumericColumn(const std::string& path,
                                                 int column,
                                                 bool has_header) {
  if (column < 0) {
    return Status::InvalidArgument(
        StrCat("column index must be >= 0, got ", column));
  }
  SIGSUB_ASSIGN_OR_RETURN(auto rows, ReadCsvFile(path));
  std::vector<double> values;
  values.reserve(rows.size());
  for (size_t i = has_header ? 1 : 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (static_cast<size_t>(column) >= row.size()) {
      return Status::InvalidArgument(
          StrCat("row ", i, " of '", path, "' has ", row.size(),
                 " cells; need column ", column));
    }
    const std::string& cell = row[column];
    char* end = nullptr;
    double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          StrCat("row ", i, " column ", column, " of '", path,
                 "' is not numeric: \"", cell, "\""));
    }
    values.push_back(value);
  }
  return values;
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError(StrCat("cannot open '", path, "' for writing"));
  }
  out << contents;
  if (!out) {
    return Status::IOError(StrCat("failed writing '", path, "'"));
  }
  return Status::OK();
}

}  // namespace io
}  // namespace sigsub
