#ifndef SIGSUB_IO_CSV_H_
#define SIGSUB_IO_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace sigsub {
namespace io {

/// Minimal CSV ingestion for user-supplied series (e.g. real daily closes
/// downloaded by the user, replacing the bundled simulators). Quoted cells
/// with embedded separators/quotes are supported; rows may vary in width.

/// Parses one CSV line into cells (RFC-4180-ish: double quotes escape).
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Reads a whole CSV file into rows of cells.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Extracts a numeric column (0-based). Skips the header row when
/// `has_header`; fails on rows that are too short or non-numeric cells.
Result<std::vector<double>> ReadCsvNumericColumn(const std::string& path,
                                                 int column, bool has_header);

/// Writes text to a file, replacing its contents.
Status WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_CSV_H_
