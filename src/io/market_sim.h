#ifndef SIGSUB_IO_MARKET_SIM_H_
#define SIGSUB_IO_MARKET_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/date_axis.h"
#include "seq/sequence.h"

namespace sigsub {
namespace io {

/// A planted market regime: `num_days` trading days starting at day index
/// `start_day` with daily up-probability `up_prob`.
struct MarketRegime {
  int64_t start_day = 0;
  int64_t num_days = 0;
  double up_prob = 0.5;
  std::string label;
};

/// Configuration of a synthetic daily up/down return series (stand-in for
/// the Dow Jones / S&P 500 / IBM series of paper Section 7.5.2; see
/// DESIGN.md §2.2).
struct MarketConfig {
  std::string name;
  Date start_date{1928, 10, 1};
  int64_t num_days = 20906;
  double base_up_prob = 0.52;  // Equities drift slightly upward.
  double daily_move = 0.01;    // |return| per day for price reconstruction.
  std::vector<MarketRegime> regimes;
  uint64_t seed = 1928;
};

/// The generated series: updown[i] == 1 iff the price rose on day i.
class MarketSeries {
 public:
  static Result<MarketSeries> Generate(const MarketConfig& config);

  /// Synthetic stand-ins shaped like the paper's three securities
  /// (lengths and regime flavors match Table 5's reported episodes).
  static MarketSeries DowJones();
  static MarketSeries SP500();
  static MarketSeries Ibm();

  const std::string& name() const { return config_.name; }
  const seq::Sequence& updown() const { return updown_; }
  const DateAxis& dates() const { return dates_; }
  const MarketConfig& config() const { return config_; }

  /// Up-days in [start, end).
  int64_t UpDaysInRange(int64_t start, int64_t end) const;

  /// Empirical up-day ratio over the whole series (the paper's null-model
  /// probability, "ratio of days on which price went up").
  double EmpiricalUpRate() const;

  /// Price change over [start, end) under the constant-move price model:
  /// (1+m)^u (1-m)^d − 1, reported like Table 5's "Change" column.
  double PriceChangeInRange(int64_t start, int64_t end) const;

 private:
  MarketSeries(MarketConfig config, seq::Sequence updown, DateAxis dates)
      : config_(std::move(config)),
        updown_(std::move(updown)),
        dates_(std::move(dates)) {}

  MarketConfig config_;
  seq::Sequence updown_;
  DateAxis dates_;
};

}  // namespace io
}  // namespace sigsub

#endif  // SIGSUB_IO_MARKET_SIM_H_
