#include "io/mmap_corpus.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/str_util.h"

namespace sigsub {
namespace io {
namespace {

// Streaming passes walk the map in chunks: the working set stays one chunk
// of page cache, whatever the file size.
constexpr size_t kChunkBytes = size_t{1} << 20;

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(StrCat("cannot open '", path, "'"));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(StrCat("cannot stat '", path, "'"));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(
        StrCat("'", path, "' is not a regular file"));
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      return Status::IOError(StrCat("cannot mmap '", path, "' (",
                                    static_cast<int64_t>(file.size_),
                                    " bytes)"));
    }
    file.data_ = data;
  }
  // The mapping holds its own reference to the file; the descriptor is not
  // needed past this point.
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedFile::AdviseSequential() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

std::array<uint8_t, 256> MakeDecodeTable(std::string_view alphabet_chars) {
  std::array<uint8_t, 256> decode;
  decode.fill(kInvalidByte);
  for (size_t s = 0; s < alphabet_chars.size(); ++s) {
    decode[static_cast<uint8_t>(alphabet_chars[s])] =
        static_cast<uint8_t>(s);
  }
  return decode;
}

std::string InferAlphabetBytes(std::span<const uint8_t> bytes) {
  std::array<bool, 256> present{};
  for (size_t offset = 0; offset < bytes.size(); offset += kChunkBytes) {
    size_t end = std::min(bytes.size(), offset + kChunkBytes);
    for (size_t i = offset; i < end; ++i) present[bytes[i]] = true;
  }
  // Distinct bytes sorted in `char` order, to match the std::set<char>
  // inference of engine::Corpus::InferAlphabetChars byte for byte.
  std::string chars;
  for (int v = 0; v < 256; ++v) {
    if (present[v]) chars.push_back(static_cast<char>(v));
  }
  std::sort(chars.begin(), chars.end());
  if (chars.size() == 1) chars += chars[0] == '0' ? '1' : '0';
  return chars;
}

int64_t FindInvalidByte(std::span<const uint8_t> bytes,
                        const std::array<uint8_t, 256>& decode) {
  for (size_t offset = 0; offset < bytes.size(); offset += kChunkBytes) {
    size_t end = std::min(bytes.size(), offset + kChunkBytes);
    for (size_t i = offset; i < end; ++i) {
      if (decode[bytes[i]] == kInvalidByte) return static_cast<int64_t>(i);
    }
  }
  return -1;
}

}  // namespace io
}  // namespace sigsub
