#ifndef SIGSUB_CLI_CLI_H_
#define SIGSUB_CLI_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sigsub {
namespace cli {

/// Parsed command line for the `sigsub_cli` tool.
///
///   sigsub_cli <command> [--flag=value ...]
///
/// Commands: mss | topt | threshold | minlen | score.
/// Flags:
///   --string=TEXT        input string literal (exclusive with --input)
///   --input=PATH         read the input string from a file
///   --alphabet=CHARS     symbol set (default: distinct input characters)
///   --probs=p1,p2,...    null-model probabilities (default: uniform)
///   --t=N                top-t size (topt; default 10)
///   --disjoint           non-overlapping top-t (topt)
///   --alpha0=X           threshold (threshold)
///   --pvalue=P           derive alpha0 from a per-substring p-value
///   --min-length=N       length floor (minlen; default 1)
///   --start=I --end=J    substring to score (score)
///   --threads=N          parallel MSS scan (mss; default 1)
struct CliOptions {
  std::string command;
  std::string input_path;
  std::string input_text;
  bool has_input_text = false;
  std::string alphabet;
  std::vector<double> probs;
  int64_t t = 10;
  bool disjoint = false;
  double alpha0 = -1.0;
  double pvalue = -1.0;
  int64_t min_length = 1;
  int64_t start = -1;
  int64_t end = -1;
  int threads = 1;
};

/// Usage text for --help / errors.
std::string UsageText();

/// Parses argv-style arguments (excluding the program name).
Result<CliOptions> ParseArgs(const std::vector<std::string>& args);

/// Executes a parsed command and returns the printable report.
Result<std::string> Run(const CliOptions& options);

}  // namespace cli
}  // namespace sigsub

#endif  // SIGSUB_CLI_CLI_H_
