#ifndef SIGSUB_CLI_CLI_H_
#define SIGSUB_CLI_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/x2_dispatch.h"

namespace sigsub {
namespace cli {

/// Parsed command line for the `sigsub_cli` tool.
///
///   sigsub_cli <command> [--flag=value ...]
///
/// Commands: mss | topt | threshold | minlen | score | substrings | batch |
/// query | stream | serve | client. Flags are validated against the
/// selected command: supplying a flag that the command does not consume is
/// an InvalidArgument error, not a silent acceptance.
///
/// Common flags:
///   --string=TEXT        input string literal (exclusive with --input)
///   --input=PATH         read input from a file (batch/query: the
///                        corpus; stream: the symbol stream, `-` reads
///                        stdin)
///   --alphabet=CHARS     symbol set (default: distinct input characters)
///   --probs=p1,p2,...    null-model probabilities (default: uniform;
///                        query: models live inside each query string)
///   --x2-dispatch=MODE   auto|scalar|simd — fused X² kernel selection.
///                        `scalar` pins the bit-reproducible path for
///                        audits; `simd` requests the vector path (falls
///                        back to scalar when unavailable — the report
///                        then carries an explicit warning). Run()
///                        applies the mode process-wide for the
///                        invocation and, when the flag was passed
///                        explicitly, reports the effective dispatch.
/// Per-command flags:
///   --t=N                top-t size (topt, batch; default 10)
///   --disjoint           non-overlapping top-t (topt)
///   --alpha0=X           threshold (threshold, batch)
///   --pvalue=P           derive alpha0 from a per-substring p-value
///   --min-length=N       length floor (minlen, topt --disjoint, batch)
///   --start=I --end=J    substring to score (score)
///   --threads=N          worker threads (mss, batch; default 1)
/// Substrings-only flags (all-substrings mining over one record):
///   --top=N              keep the N highest-X² substrings (default 10;
///                        0 reports every match)
///   --max-length=N       length ceiling (default 0 = unbounded)
///   --min-count=N        occurrence floor (default 2)
///   --all                enumerate every distinct substring, not just
///                        class-maximal ones; requires --max-length
///   --positions          list each substring's occurrence positions
///                        (direct suffix-scan call, bypasses the cache)
///   --mmap               memory-map --input read-only and mine it in
///                        place as a single record (no decoded in-RAM
///                        copy; excludes --string)
/// Batch-only flags:
///   --job=KIND           mss|topt|disjoint|threshold|minlen (default mss)
///   --alpha-p=P          threshold jobs: per-substring p-value cutoff,
///                        converted engine-side via the χ²(k−1) critical
///                        value. Takes precedence over --alpha0/--pvalue
///                        when several are set (a significance level wins
///                        over a raw X² cutoff).
/// Batch/query corpus flags:
///   --format=FMT         lines|csv corpus layout (default lines)
///   --column=N           CSV column holding the records (default 0)
///   --csv-header         skip the first CSV row
///   --cache=N            result-cache capacity in entries (default 4096)
///   --shard-min=N        split an MSS job across the worker pool when
///                        its record has at least N symbols (default
///                        2^20; 0 disables in-record sharding)
/// Query-only flags:
///   --query=SPEC         one serialized api::QuerySpec (repeatable;
///                        compact `kind:key=val,...` or JSON — see
///                        api/serde.h for the grammar)
///   --queries-file=PATH  one query per line ('#' comments and blank
///                        lines skipped)
/// Stream-only flags:
///   --alpha=A            per-position family-wise false-alarm rate,
///                        converted to per-scale X² thresholds via the
///                        χ²(k−1) quantile with a Šidák correction
///                        (default 1e-6)
///   --max-window=W       longest monitored suffix window (default 4096)
///   --chunk=N            symbols per AppendChunk call (default 8192)
/// Serve-only flags (sigsubd daemon over the --input corpus):
///   --port=N             listen port (default 0 = ephemeral; the bound
///                        port is printed on the listening banner)
///   --host=ADDR          bind address (default 127.0.0.1)
///   --max-clients=N      connection cap (default 64)
///   --max-queue=N        admission-queue depth; overflow sheds EBUSY
///   --max-inflight=N     per-connection in-flight cap (EQUOTA)
///   --idle-timeout-ms=N  idle-connection harvest (0 disables)
///   --max-runtime-ms=N   self-drain after N ms (0 = run until SIGTERM)
///   --state-dir=PATH     crash-safe state directory: replay on startup,
///                        journal every acknowledged stream op, snapshot
///                        periodically and on drain (empty = volatile)
///   --fsync=MODE         always|none — journal fsync policy. `always`
///                        survives power loss; `none` only process
///                        crashes (default always)
///   --snapshot-interval-ms=N  milliseconds between periodic snapshots;
///                        0 leaves only the snapshot-on-drain (default
///                        30000)
/// Client-only flags:
///   --send=CMD           one protocol line (repeatable, sent in order)
///   --timeout-ms=N       per-reply read timeout (default 5000)
///   --linger-ms=N        keep reading pushed ALARM lines this long after
///                        the last reply (default 0)
///   --retries=N          extra connect attempts after the first, with
///                        jittered exponential backoff (default 0)
///   --backoff-ms=N       base backoff before the first retry; doubles
///                        per attempt (default 100)
struct CliOptions {
  std::string command;
  std::string input_path;
  std::string input_text;
  bool has_input_text = false;
  std::string alphabet;
  std::vector<double> probs;
  int64_t t = 10;
  bool disjoint = false;
  double alpha0 = -1.0;
  double pvalue = -1.0;
  int64_t min_length = 1;
  int64_t start = -1;
  int64_t end = -1;
  int threads = 1;
  core::X2Dispatch x2_dispatch = core::X2Dispatch::kAuto;
  // True when --x2-dispatch was passed explicitly: Run() then reports the
  // effective dispatch (and warns when a SIMD request fell back).
  bool x2_dispatch_explicit = false;
  // Substrings command.
  int64_t top = 10;
  int64_t max_length = 0;
  int64_t min_count = 2;
  bool all_substrings = false;
  bool positions = false;
  bool mmap = false;
  // Batch command.
  std::string job = "mss";
  double alpha_p = -1.0;
  std::string format = "lines";
  int64_t column = 0;
  bool csv_header = false;
  int64_t cache = 4096;
  int64_t shard_min = 1 << 20;
  // Query command.
  std::vector<std::string> queries;
  std::string queries_file;
  // Stream command.
  double alpha = 1e-6;
  int64_t max_window = 4096;
  int64_t chunk = 8192;
  // Batch command: append the shared engine::EngineStats line.
  bool verbose = false;
  // Serve command.
  int64_t port = 0;
  std::string host = "127.0.0.1";
  int64_t max_clients = 64;
  int64_t max_queue = 256;
  int64_t max_inflight = 32;
  int64_t idle_timeout_ms = 60000;
  int64_t max_runtime_ms = 0;
  std::string state_dir;
  std::string fsync = "always";
  int64_t snapshot_interval_ms = 30000;
  // Client command.
  std::vector<std::string> sends;
  int64_t timeout_ms = 5000;
  int64_t linger_ms = 0;
  int64_t retries = 0;
  int64_t backoff_ms = 100;
};

/// Usage text for --help / errors.
std::string UsageText();

/// Parses argv-style arguments (excluding the program name).
Result<CliOptions> ParseArgs(const std::vector<std::string>& args);

/// Executes a parsed command and returns the printable report.
Result<std::string> Run(const CliOptions& options);

}  // namespace cli
}  // namespace sigsub

#endif  // SIGSUB_CLI_CLI_H_
