#include "cli/cli.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/str_util.h"
#include "core/min_length.h"
#include "core/mss.h"
#include "core/parallel.h"
#include "core/significance.h"
#include "core/threshold.h"
#include "core/top_disjoint.h"
#include "core/top_t.h"
#include "io/table_writer.h"
#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "stats/count_statistics.h"

namespace sigsub {
namespace cli {
namespace {

const char* const kCommands[] = {"mss", "topt", "threshold", "minlen",
                                 "score"};

Result<double> ParseDouble(const std::string& text, const std::string& flag) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("flag ", flag, " expects a number, got \"", text, "\""));
  }
  return value;
}

Result<int64_t> ParseInt(const std::string& text, const std::string& flag) {
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrCat("flag ", flag, " expects an integer, got \"", text, "\""));
  }
  return static_cast<int64_t>(value);
}

Result<std::vector<double>> ParseProbs(const std::string& text) {
  std::vector<double> probs;
  for (const std::string& part : StrSplit(text, ',')) {
    SIGSUB_ASSIGN_OR_RETURN(double p, ParseDouble(part, "--probs"));
    probs.push_back(p);
  }
  return probs;
}

Result<std::string> LoadInput(const CliOptions& options) {
  if (options.has_input_text) return options.input_text;
  std::ifstream in(options.input_path);
  if (!in) {
    return Status::IOError(
        StrCat("cannot open '", options.input_path, "'"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // Trim trailing newlines/whitespace, which files routinely carry.
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' || text.back() == ' ' ||
          text.back() == '\t')) {
    text.pop_back();
  }
  return text;
}

std::string RenderSubstring(const core::Substring& sub, int k,
                            const std::string& text) {
  io::TableWriter table({"start", "end", "length", "X2", "p-value"});
  table.AddRow({std::to_string(sub.start), std::to_string(sub.end),
                std::to_string(sub.length()),
                StrFormat("%.4f", sub.chi_square),
                StrFormat("%.4g", core::SubstringPValue(sub.chi_square, k))});
  std::string out = table.Render();
  if (sub.length() > 0 && sub.length() <= 64) {
    out += StrCat("text: \"",
                  text.substr(static_cast<size_t>(sub.start),
                              static_cast<size_t>(sub.length())),
                  "\"\n");
  }
  return out;
}

}  // namespace

std::string UsageText() {
  return
      "usage: sigsub_cli <command> [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  mss        most significant substring (Problem 1)\n"
      "  topt       top-t substrings (Problem 2); --t, --disjoint\n"
      "  threshold  substrings above a threshold (Problem 3); --alpha0 or "
      "--pvalue\n"
      "  minlen     MSS above a length floor (Problem 4); --min-length\n"
      "  score      score one substring; --start, --end\n"
      "\n"
      "input:\n"
      "  --string=TEXT | --input=PATH   the string to mine (required)\n"
      "  --alphabet=CHARS               default: distinct input characters\n"
      "  --probs=p1,p2,...              default: uniform\n"
      "  --threads=N                    parallel scan for mss\n";
}

Result<CliOptions> ParseArgs(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Status::InvalidArgument(StrCat("missing command\n", UsageText()));
  }
  CliOptions options;
  options.command = args[0];
  bool known = false;
  for (const char* command : kCommands) {
    if (options.command == command) known = true;
  }
  if (!known) {
    return Status::InvalidArgument(
        StrCat("unknown command \"", options.command, "\"\n", UsageText()));
  }
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument(
          StrCat("expected --flag=value, got \"", arg, "\""));
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    std::string name = body.substr(0, eq);
    std::string value =
        eq == std::string::npos ? std::string() : body.substr(eq + 1);
    if (name == "string") {
      options.input_text = value;
      options.has_input_text = true;
    } else if (name == "input") {
      options.input_path = value;
    } else if (name == "alphabet") {
      options.alphabet = value;
    } else if (name == "probs") {
      SIGSUB_ASSIGN_OR_RETURN(options.probs, ParseProbs(value));
    } else if (name == "t") {
      SIGSUB_ASSIGN_OR_RETURN(options.t, ParseInt(value, "--t"));
    } else if (name == "disjoint") {
      options.disjoint = true;
    } else if (name == "alpha0") {
      SIGSUB_ASSIGN_OR_RETURN(options.alpha0, ParseDouble(value, "--alpha0"));
    } else if (name == "pvalue") {
      SIGSUB_ASSIGN_OR_RETURN(options.pvalue, ParseDouble(value, "--pvalue"));
    } else if (name == "min-length") {
      SIGSUB_ASSIGN_OR_RETURN(options.min_length,
                              ParseInt(value, "--min-length"));
    } else if (name == "start") {
      SIGSUB_ASSIGN_OR_RETURN(options.start, ParseInt(value, "--start"));
    } else if (name == "end") {
      SIGSUB_ASSIGN_OR_RETURN(options.end, ParseInt(value, "--end"));
    } else if (name == "threads") {
      SIGSUB_ASSIGN_OR_RETURN(int64_t threads,
                              ParseInt(value, "--threads"));
      options.threads = static_cast<int>(threads);
    } else {
      return Status::InvalidArgument(
          StrCat("unknown flag --", name, "\n", UsageText()));
    }
  }
  if (!options.has_input_text && options.input_path.empty()) {
    return Status::InvalidArgument("one of --string or --input is required");
  }
  if (options.has_input_text && !options.input_path.empty()) {
    return Status::InvalidArgument("--string and --input are exclusive");
  }
  return options;
}

Result<std::string> Run(const CliOptions& options) {
  SIGSUB_ASSIGN_OR_RETURN(std::string text, LoadInput(options));
  if (text.empty()) {
    return Status::InvalidArgument("input string is empty");
  }

  // Alphabet: explicit or the sorted distinct characters of the input.
  std::string alphabet_chars = options.alphabet;
  if (alphabet_chars.empty()) {
    std::set<char> distinct(text.begin(), text.end());
    alphabet_chars.assign(distinct.begin(), distinct.end());
    if (alphabet_chars.size() < 2) {
      alphabet_chars += alphabet_chars[0] == '0' ? '1' : '0';
    }
  }
  SIGSUB_ASSIGN_OR_RETURN(seq::Alphabet alphabet,
                          seq::Alphabet::FromCharacters(alphabet_chars));
  SIGSUB_ASSIGN_OR_RETURN(seq::Sequence sequence,
                          seq::Sequence::FromString(alphabet, text));

  std::vector<double> probs = options.probs;
  if (probs.empty()) {
    probs.assign(alphabet.size(), 1.0 / alphabet.size());
  }
  SIGSUB_ASSIGN_OR_RETURN(seq::MultinomialModel model,
                          seq::MultinomialModel::Make(std::move(probs)));

  const int k = model.alphabet_size();
  std::ostringstream out;
  out << "n = " << sequence.size() << ", k = " << k << "\n";

  if (options.command == "mss") {
    SIGSUB_ASSIGN_OR_RETURN(
        core::MssResult result,
        core::FindMssParallel(sequence, model, options.threads));
    out << RenderSubstring(result.best, k, text);
    out << "examined " << result.stats.positions_examined << " of "
        << core::TrivialScanPositions(sequence.size())
        << " candidate positions\n";
  } else if (options.command == "topt") {
    if (options.t < 1) {
      return Status::InvalidArgument(StrCat("--t must be >= 1, got ",
                                            options.t));
    }
    io::TableWriter table({"rank", "start", "end", "X2", "p-value"});
    if (options.disjoint) {
      core::TopDisjointOptions disjoint;
      disjoint.t = options.t;
      disjoint.min_length = options.min_length;
      SIGSUB_ASSIGN_OR_RETURN(std::vector<core::Substring> subs,
                              core::FindTopDisjoint(sequence, model,
                                                    disjoint));
      for (size_t i = 0; i < subs.size(); ++i) {
        table.AddRow({std::to_string(i + 1), std::to_string(subs[i].start),
                      std::to_string(subs[i].end),
                      StrFormat("%.4f", subs[i].chi_square),
                      StrFormat("%.4g", core::SubstringPValue(
                                            subs[i].chi_square, k))});
      }
    } else {
      SIGSUB_ASSIGN_OR_RETURN(core::TopTResult result,
                              core::FindTopT(sequence, model, options.t));
      for (size_t i = 0; i < result.top.size(); ++i) {
        const core::Substring& sub = result.top[i];
        table.AddRow({std::to_string(i + 1), std::to_string(sub.start),
                      std::to_string(sub.end),
                      StrFormat("%.4f", sub.chi_square),
                      StrFormat("%.4g",
                                core::SubstringPValue(sub.chi_square, k))});
      }
    }
    out << table.Render();
  } else if (options.command == "threshold") {
    double alpha0 = options.alpha0;
    if (options.pvalue > 0.0) {
      alpha0 = stats::ChiSquareThresholdForPValue(options.pvalue, k);
      out << "alpha0 = " << StrFormat("%.4f", alpha0) << " (p-value "
          << StrFormat("%.3g", options.pvalue) << ")\n";
    }
    if (alpha0 < 0.0) {
      return Status::InvalidArgument(
          "threshold needs --alpha0 or --pvalue");
    }
    core::ThresholdOptions threshold;
    threshold.max_matches = 1000;
    SIGSUB_ASSIGN_OR_RETURN(
        core::ThresholdResult result,
        core::FindAboveThreshold(sequence, model, alpha0, threshold));
    out << result.match_count << " substrings above " << alpha0;
    if (result.match_count >
        static_cast<int64_t>(result.matches.size())) {
      out << " (showing " << result.matches.size() << ")";
    }
    out << "\n";
    io::TableWriter table({"start", "end", "X2"});
    for (const core::Substring& sub : result.matches) {
      table.AddRow({std::to_string(sub.start), std::to_string(sub.end),
                    StrFormat("%.4f", sub.chi_square)});
    }
    if (table.row_count() > 0) out << table.Render();
  } else if (options.command == "minlen") {
    SIGSUB_ASSIGN_OR_RETURN(
        core::MssResult result,
        core::FindMssMinLength(sequence, model, options.min_length));
    out << RenderSubstring(result.best, k, text);
  } else if (options.command == "score") {
    if (options.start < 0 || options.end < 0) {
      return Status::InvalidArgument("score needs --start and --end");
    }
    SIGSUB_ASSIGN_OR_RETURN(
        core::ScoredSubstring scored,
        core::ScoreSubstring(sequence, model, options.start, options.end));
    out << RenderSubstring(scored.substring, k, text);
    out << "G2 = " << StrFormat("%.4f", scored.g2) << "\n";
  }
  return out.str();
}

}  // namespace cli
}  // namespace sigsub
